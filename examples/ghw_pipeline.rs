//! The full generalized-hypertree-width pipeline on a circuit instance:
//! bounds → genetic upper bounds (GA-ghw, SAIGA-ghw) → exact search
//! (BB-ghw, A\*-ghw) → Theorem-2 round trip through the leaf normal form.
//!
//! Run with `cargo run --release --example ghw_pipeline`.

use ghd::bounds::{ghw_lower_bound, ghw_upper_bound};
use ghd::core::bucket::ghd_from_ordering;
use ghd::core::lnf::{leaf_normal_form, ordering_from_lnf, verify_lnf};
use ghd::core::{CoverMethod, EliminationOrdering};
use ghd::ga::{ga_ghw, saiga_ghw, GaConfig, SaigaConfig};
use ghd::hypergraph::generators::hypergraphs;
use ghd::search::{astar_ghw, bb_ghw, BbGhwConfig, SearchLimits};
use std::time::Duration;

fn main() {
    // a 20-cell ripple-carry adder circuit (DaimlerChrysler family)
    let h = hypergraphs::adder(20);
    println!(
        "adder_20: {} signals, {} constraints, rank {}",
        h.num_vertices(),
        h.num_edges(),
        h.rank()
    );

    // 1. cheap bounds: min-fill + greedy cover above, tw-ksc below (Fig 8.1)
    let lb = ghw_lower_bound::<ghd_prng::rngs::StdRng>(&h, None);
    let (ub, _) = ghw_upper_bound::<ghd_prng::rngs::StdRng>(&h, None);
    println!("heuristic bounds: {lb} ≤ ghw ≤ {ub}");

    // 2. genetic upper bounds
    let ga = ga_ghw(
        &h,
        &GaConfig {
            population: 60,
            generations: 40,
            seed: 1,
            ..GaConfig::default()
        },
    );
    println!("GA-ghw upper bound: {}", ga.best_width);
    let saiga = saiga_ghw(&h, &SaigaConfig::small(1));
    println!(
        "SAIGA-ghw upper bound: {} (self-adapted rates: {})",
        saiga.result.best_width,
        saiga
            .final_parameters
            .iter()
            .map(|(pc, pm)| format!("({pc:.2},{pm:.2})"))
            .collect::<Vec<_>>()
            .join(" ")
    );

    // 3. exact search (both should settle the width quickly here)
    let budget = SearchLimits::with_time(Duration::from_secs(20));
    let bb = bb_ghw(
        &h,
        &BbGhwConfig {
            limits: budget.clone(),
            ..BbGhwConfig::default()
        },
    );
    let astar = astar_ghw(&h, budget.clone());
    println!(
        "BB-ghw: width {} (exact: {}), A*-ghw: width {} (exact: {})",
        bb.upper_bound, bb.exact, astar.upper_bound, astar.exact
    );

    // 4. Theorem 2 round trip: take the best GHD found, normalise it to
    // leaf normal form (Fig 3.1), extract the depth ordering (§3.3) and
    // rebuild — the width may only shrink or stay equal.
    let witness = bb.ordering.clone().expect("search produces a witness");
    let sigma = EliminationOrdering::new(witness).expect("permutation");
    let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
    ghd.verify(&h).expect("valid GHD");
    let lnf = leaf_normal_form(&h, ghd.tree());
    assert!(verify_lnf(&h, &lnf), "leaf normal form conditions hold");
    let sigma2 = ordering_from_lnf(&h, &lnf);
    let rebuilt = ghd_from_ordering(&h, &sigma2, CoverMethod::Exact);
    rebuilt.verify(&h).expect("valid GHD");
    println!(
        "Theorem 2 round trip: width {} → leaf normal form → width {}",
        ghd.width(),
        rebuilt.width()
    );
    assert!(rebuilt.width() <= ghd.width());
}
