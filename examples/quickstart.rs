//! Quickstart: build a hypergraph, decompose it, validate the result and
//! inspect the widths — the thesis' Example 5 end to end.
//!
//! Run with `cargo run --example quickstart`.

use ghd::core::bucket::{bucket_elimination, ghd_from_ordering};
use ghd::core::{CoverMethod, EliminationOrdering};
use ghd::hypergraph::Hypergraph;
use ghd::search::{astar_ghw, astar_tw, SearchLimits};

fn main() {
    // Example 5 of the thesis: constraints C1 = {x1,x2,x3},
    // C2 = {x1,x5,x6}, C3 = {x3,x4,x5} (0-indexed here).
    let h = Hypergraph::from_edges(6, [vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]]);
    println!("hypergraph: {} vertices, {} hyperedges", h.num_vertices(), h.num_edges());

    // Fig 2.11's elimination ordering σ = (x6, x5, x4, x3, x2, x1):
    // vertices are eliminated from the back, so x1 goes first.
    let sigma = EliminationOrdering::new(vec![5, 4, 3, 2, 1, 0]).expect("a permutation");

    // Bucket elimination (Fig 2.10) gives a tree decomposition…
    let td = bucket_elimination(&h, &sigma);
    td.verify(&h).expect("valid tree decomposition");
    println!("tree decomposition width (this σ):        {}", td.width());

    // …and covering each bag with hyperedges gives a generalized hypertree
    // decomposition (§2.5.2). Exact set covers realise Theorem 3.
    let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
    ghd.verify(&h).expect("valid GHD");
    println!("generalized hypertree width (this σ):     {}", ghd.width());
    for p in ghd.tree().nodes() {
        let bag: Vec<String> = ghd.tree().bag(p).iter().map(|v| format!("x{}", v + 1)).collect();
        let lam: Vec<String> = ghd.lambda(p).iter().map(|&e| format!("C{}", e + 1)).collect();
        println!("  node {p}: χ = {{{}}}, λ = {{{}}}", bag.join(","), lam.join(","));
    }

    // The exact optima, by A* search (Chapters 5 and 9):
    let tw = astar_tw(&h.primal_graph(), SearchLimits::unlimited());
    let ghw = astar_ghw(&h, SearchLimits::unlimited());
    println!("exact treewidth:                          {}", tw.upper_bound);
    println!("exact generalized hypertree width:        {}", ghw.upper_bound);
    assert!(tw.exact && ghw.exact);
}
