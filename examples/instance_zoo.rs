//! A tour of the benchmark instance generators: sizes, heuristic bounds and
//! file-format round trips for every family the evaluation uses.
//!
//! Run with `cargo run --release --example instance_zoo`.

use ghd::bounds::{ghw_lower_bound, ghw_upper_bound, tw_lower_bound, tw_upper_bound};
use ghd::hypergraph::generators::{graphs, hypergraphs};
use ghd::hypergraph::io;

fn main() {
    println!("{:<22} {:>5} {:>6} {:>6} {:>6}   family", "graph", "V", "E", "tw-lb", "tw-ub");
    let graph_zoo = [
        ("grid6", graphs::grid(6), "exact construction"),
        ("queen6_6", graphs::queen(6), "exact construction"),
        ("myciel5", graphs::mycielski(5), "exact construction"),
        ("complete(12)", graphs::complete(12), "exact construction"),
        ("gnm(60, 240)", graphs::gnm_random(60, 240, 7), "seeded Erdős–Rényi"),
        (
            "geometric(64, ~200)",
            graphs::random_geometric_with_edges(64, 200, 7),
            "seeded geometric (miles-like)",
        ),
    ];
    for (name, g, family) in graph_zoo {
        let lb = tw_lower_bound::<ghd_prng::rngs::StdRng>(&g, None);
        let (ub, _) = tw_upper_bound::<ghd_prng::rngs::StdRng>(&g, None);
        println!(
            "{:<22} {:>5} {:>6} {:>6} {:>6}   {}",
            name,
            g.num_vertices(),
            g.num_edges(),
            lb,
            ub,
            family
        );
        // every graph round-trips through DIMACS
        assert_eq!(io::parse_dimacs(&io::write_dimacs(&g)).unwrap(), g);
    }

    println!();
    println!("{:<22} {:>5} {:>6} {:>7} {:>7}   family", "hypergraph", "V", "H", "ghw-lb", "ghw-ub");
    let hyper_zoo = [
        ("adder_20", hypergraphs::adder(20), "ripple-carry adder circuit"),
        ("bridge_10", hypergraphs::bridge(10), "chained bridge circuit"),
        ("clique_12", hypergraphs::clique(12), "K_n as binary edges"),
        ("grid2d_12", hypergraphs::grid2d(12), "checkerboard grid"),
        ("grid3d_4", hypergraphs::grid3d(4), "3-d checkerboard grid"),
        ("circuit(80, 90)", hypergraphs::random_circuit(80, 90, 7), "seeded gate DAG (ISCAS-like)"),
        ("random(40, 25, ≤5)", hypergraphs::random_hypergraph(40, 25, 5, 7), "uniform random"),
        ("acyclic_chain(8,4,2)", hypergraphs::acyclic_chain(8, 4, 2), "join-tree caterpillar (ghw 1)"),
    ];
    for (name, h, family) in hyper_zoo {
        let lb = ghw_lower_bound::<ghd_prng::rngs::StdRng>(&h, None);
        let (ub, _) = ghw_upper_bound::<ghd_prng::rngs::StdRng>(&h, None);
        println!(
            "{:<22} {:>5} {:>6} {:>7} {:>7}   {}",
            name,
            h.num_vertices(),
            h.num_edges(),
            lb,
            ub,
            family
        );
        assert!(lb <= ub);
        // every hypergraph round-trips through the library format
        let parsed = io::parse_hypergraph(&io::write_hypergraph(&h)).unwrap();
        assert_eq!(parsed.num_edges(), h.num_edges());
    }
}
