//! Solving a CSP from its decompositions: the thesis' Example 1 (3-coloring
//! the map of Australia) solved three ways — brute force, via a tree
//! decomposition (Join Tree Clustering, §2.4) and via a generalized
//! hypertree decomposition.
//!
//! Run with `cargo run --example map_coloring`.

use ghd::bounds::min_fill_ordering;
use ghd::core::bucket::{ghd_from_ordering, vertex_elimination};
use ghd::core::CoverMethod;
use ghd::csp::{examples, solve_with_ghd, solve_with_tree_decomposition};

const REGIONS: [&str; 7] = ["WA", "NT", "Q", "SA", "NSW", "V", "TAS"];
const COLORS: [&str; 3] = ["red", "green", "blue"];

fn main() {
    let csp = examples::australia();
    let h = csp.constraint_hypergraph();
    println!(
        "Australia CSP: {} variables, {} constraints; constraint hypergraph has {} vertices / {} edges",
        csp.num_variables(),
        csp.constraints().len(),
        h.num_vertices(),
        h.num_edges()
    );

    // A good elimination ordering of the constraint hypergraph's primal
    // graph (min-fill, §4.4.2)…
    let primal = h.primal_graph();
    let sigma = min_fill_ordering::<ghd_prng::rngs::StdRng>(&primal, None);

    // …induces a tree decomposition to solve from:
    let td = vertex_elimination(&primal, &sigma);
    println!("tree decomposition width: {}", td.width());
    let sol = solve_with_tree_decomposition(&csp, &td)
        .expect("valid decomposition")
        .expect("Australia is 3-colorable");
    println!("\ncoloring via tree decomposition:");
    for (v, &c) in sol.iter().enumerate() {
        println!("  {:<4} = {}", REGIONS[v], COLORS[c as usize]);
    }
    assert!(csp.is_solution(&sol));

    // …or a generalized hypertree decomposition (usually lower width):
    let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
    println!("\ngeneralized hypertree decomposition width: {}", ghd.width());
    let sol2 = solve_with_ghd(&csp, &ghd)
        .expect("valid decomposition")
        .expect("Australia is 3-colorable");
    assert!(csp.is_solution(&sol2));
    println!("GHD-based solver agrees: solution valid.");

    // sanity: decomposition-based solving matches brute force
    let brute = csp.solve_brute_force().expect("satisfiable");
    assert!(csp.is_solution(&brute));
    println!("\nall three solvers found valid 3-colorings.");
}
