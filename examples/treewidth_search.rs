//! Exact vs heuristic treewidth on classic DIMACS families: the A\*
//! algorithm of Chapter 5, the branch-and-bound baseline of §4.4 and the
//! genetic algorithm of Chapter 6, side by side.
//!
//! Run with `cargo run --release --example treewidth_search`.

use ghd::bounds::{tw_lower_bound, tw_upper_bound};
use ghd::ga::{ga_tw, GaConfig};
use ghd::hypergraph::generators::graphs;
use ghd::hypergraph::Graph;
use ghd::search::{astar_tw, bb_tw, BbConfig, SearchLimits};
use std::time::Duration;

fn main() {
    let instances: Vec<(&str, Graph)> = vec![
        ("grid4 (tw 4)", graphs::grid(4)),
        ("grid5 (tw 5)", graphs::grid(5)),
        ("queen5_5 (tw 18)", graphs::queen(5)),
        ("myciel4 (tw 10)", graphs::mycielski(4)),
    ];
    let budget = SearchLimits::with_time(Duration::from_secs(10));

    println!(
        "{:<18} {:>4} {:>4} | {:>6} {:>6} | {:>6} {:>8} | {:>6}",
        "instance", "lb", "ub", "A*-tw", "exact?", "BB-tw", "exact?", "GA-tw"
    );
    for (name, g) in instances {
        let lb = tw_lower_bound::<ghd_prng::rngs::StdRng>(&g, None);
        let (ub, _) = tw_upper_bound::<ghd_prng::rngs::StdRng>(&g, None);

        let a = astar_tw(&g, budget.clone());
        let b = bb_tw(
            &g,
            &BbConfig {
                limits: budget.clone(),
                ..BbConfig::default()
            },
        );
        let ga = ga_tw(
            &g,
            &GaConfig {
                population: 100,
                generations: 100,
                seed: 1,
                ..GaConfig::default()
            },
        );
        println!(
            "{:<18} {:>4} {:>4} | {:>6} {:>6} | {:>6} {:>8} | {:>6}",
            name, lb, ub, a.upper_bound, a.exact, b.upper_bound, b.exact, ga.best_width
        );
        // the exact searches must agree whenever both finish
        if a.exact && b.exact {
            assert_eq!(a.upper_bound, b.upper_bound);
        }
        // the GA can never beat a proven exact width
        if a.exact {
            assert!(ga.best_width >= a.upper_bound);
        }
    }
    println!("\nA ‘true’ in the exact? columns means the width is proven optimal.");
}
