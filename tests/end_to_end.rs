//! Integration tests spanning all crates: CSP → constraint hypergraph →
//! heuristic/exact decomposition → decomposition-based solving, checked
//! against brute force.

use ghd::bounds::min_fill_ordering;
use ghd::core::bucket::{ghd_from_ordering, vertex_elimination};
use ghd::core::{CoverMethod, EliminationOrdering};
use ghd::csp::{examples, solve_with_ghd, solve_with_tree_decomposition, Csp, Relation};
use ghd::ga::{ga_ghw, ga_tw, GaConfig};
use ghd::search::{astar_ghw, astar_tw, bb_ghw, bb_tw, BbConfig, BbGhwConfig, SearchLimits};
use ghd_prng::rngs::StdRng;
use ghd_prng::seq::index::sample;
use ghd_prng::RngExt;

/// A reproducible random CSP over `n` ternary-domain variables.
fn random_csp(n: usize, constraints: usize, seed: u64) -> Csp {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut csp = Csp::with_uniform_domain(n, vec![0, 1, 2]);
    for _ in 0..constraints {
        let arity = rng.random_range(2..=3usize.min(n));
        let scope: Vec<usize> = sample(&mut rng, n, arity).into_iter().collect();
        let total = 3u32.pow(arity as u32);
        let tuples: Vec<Vec<u32>> = (0..total)
            .filter(|_| rng.random_bool(0.65))
            .map(|mut m| {
                let mut t = vec![0u32; arity];
                for slot in t.iter_mut() {
                    *slot = m % 3;
                    m /= 3;
                }
                t
            })
            .collect();
        csp.add_constraint(Relation::new(scope, tuples));
    }
    csp
}

/// The headline pipeline of the thesis: GA-ghw finds a good ordering, the
/// ordering becomes a complete GHD, and the GHD solves the CSP. Verified
/// against brute force on many random instances.
#[test]
fn ga_ordering_to_ghd_to_solution() {
    for seed in 0..12u64 {
        let csp = random_csp(8, 6, seed);
        let h = csp.constraint_hypergraph();
        let ga = ga_ghw(&h, &GaConfig::small(seed));
        let sigma = EliminationOrdering::new(ga.best_ordering.clone()).expect("permutation");
        let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
        ghd.verify(&h).unwrap();
        assert!(ghd.width() <= ga.best_width, "exact covers only improve");

        let via_ghd = solve_with_ghd(&csp, &ghd).expect("valid decomposition");
        let brute = csp.solve_brute_force();
        assert_eq!(via_ghd.is_some(), brute.is_some(), "seed {seed}");
        if let Some(s) = via_ghd {
            assert!(csp.is_solution(&s), "seed {seed}");
        }
    }
}

/// Tree-decomposition solving with the min-fill ordering, against brute
/// force, including unsatisfiable instances.
#[test]
fn min_fill_td_solving_matches_brute_force() {
    for seed in 100..112u64 {
        let csp = random_csp(7, 7, seed);
        let h = csp.constraint_hypergraph();
        let sigma = min_fill_ordering::<StdRng>(&h.primal_graph(), None);
        let td = vertex_elimination(&h.primal_graph(), &sigma);
        let via_td = solve_with_tree_decomposition(&csp, &td).expect("valid decomposition");
        let brute = csp.solve_brute_force();
        assert_eq!(via_td.is_some(), brute.is_some(), "seed {seed}");
        if let Some(s) = via_td {
            assert!(csp.is_solution(&s), "seed {seed}");
        }
    }
}

/// All four exact searches agree pairwise (tw on the primal graph, ghw on
/// the hypergraph) and the GA results are valid upper bounds of both.
#[test]
fn all_algorithms_are_mutually_consistent() {
    for seed in 0..6u64 {
        let h = ghd::hypergraph::generators::hypergraphs::random_hypergraph(10, 7, 3, seed);
        let g = h.primal_graph();

        let tw_a = astar_tw(&g, SearchLimits::unlimited());
        let tw_b = bb_tw(&g, &BbConfig::default());
        assert!(tw_a.exact && tw_b.exact);
        assert_eq!(tw_a.upper_bound, tw_b.upper_bound, "tw seed {seed}");

        let ghw_a = astar_ghw(&h, SearchLimits::unlimited());
        let ghw_b = bb_ghw(&h, &BbGhwConfig::default());
        assert!(ghw_a.exact && ghw_b.exact);
        assert_eq!(ghw_a.upper_bound, ghw_b.upper_bound, "ghw seed {seed}");

        // ghw ≤ tw (the thesis: ghw(H) ≤ hw(H) ≤ tw(H)); ghw counts edges
        // covering a bag of tw+1 vertices, so also ghw ≤ tw + 1 trivially —
        // assert the meaningful direction:
        assert!(
            ghw_a.upper_bound <= tw_a.upper_bound + 1,
            "seed {seed}: ghw {} vs tw {}",
            ghw_a.upper_bound,
            tw_a.upper_bound
        );

        let ga_t = ga_tw(&g, &GaConfig::small(seed));
        assert!(ga_t.best_width >= tw_a.upper_bound);
        let ga_g = ga_ghw(&h, &GaConfig::small(seed));
        assert!(ga_g.best_width >= ghw_a.upper_bound);
    }
}

/// The thesis' worked examples hold end to end.
#[test]
fn thesis_worked_examples() {
    // Example 5: tw = 2, ghw = 2 (Figs 2.6, 2.7); satisfiable.
    let csp = examples::example5();
    let h = csp.constraint_hypergraph();
    let tw = astar_tw(&h.primal_graph(), SearchLimits::unlimited());
    assert_eq!(tw.width(), Some(2));
    let ghw = astar_ghw(&h, SearchLimits::unlimited());
    assert_eq!(ghw.width(), Some(2));

    // SAT example (Ex. 2) is acyclic: ghw = 1.
    let sat = examples::sat_formula();
    let ghw_sat = astar_ghw(&sat.constraint_hypergraph(), SearchLimits::unlimited());
    assert_eq!(ghw_sat.width(), Some(1));
    assert!(ghd::csp::is_acyclic(&sat));

    // Australia (Ex. 1): the mainland graph eliminates WA, V, NSW, Q, NT
    // with clique neighbourhoods, so the treewidth is 2.
    let aus = examples::australia();
    let tw_aus = astar_tw(&aus.constraint_hypergraph().primal_graph(), SearchLimits::unlimited());
    assert_eq!(tw_aus.width(), Some(2));
}

/// Round-trip through the benchmark file formats.
#[test]
fn io_round_trips_preserve_decomposition_widths() {
    use ghd::hypergraph::io;
    let h = ghd::hypergraph::generators::hypergraphs::adder(6);
    let text = io::write_hypergraph(&h);
    let h2 = io::parse_hypergraph(&text).expect("own output parses");
    let r1 = bb_ghw(&h, &BbGhwConfig::default());
    let r2 = bb_ghw(&h2, &BbGhwConfig::default());
    assert_eq!(r1.upper_bound, r2.upper_bound);

    let g = ghd::hypergraph::generators::graphs::queen(4);
    let text = io::write_dimacs(&g);
    let g2 = io::parse_dimacs(&text).expect("own output parses");
    let t1 = astar_tw(&g, SearchLimits::unlimited());
    let t2 = astar_tw(&g2, SearchLimits::unlimited());
    assert_eq!(t1.upper_bound, t2.upper_bound);
}
