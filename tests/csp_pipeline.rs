//! Differential tests of the GHD-based CSP pipeline (columnar relations,
//! Yannakakis reduction, parallel node-relation construction) against
//! exhaustive brute force.
//!
//! The offline build has no `proptest`; cases are drawn by an in-tree
//! seeded generator — a failure prints the seed, which reproduces it.
//!
//! Checked invariants, for every random CSP and every configuration
//! `threads ∈ {1, 2, 4}` × `yannakakis ∈ {on, off}`:
//!
//! * `enumerate_solutions_with_ghd_opts` returns **exactly** the
//!   brute-force solution set (every variable is constrained by
//!   construction, so defaults never mask a difference),
//! * `count_solutions_with_ghd_opts` equals the brute-force count,
//! * results are bit-identical across all thread counts.

use ghd::bounds::upper::min_fill_ordering;
use ghd::core::bucket::ghd_from_ordering;
use ghd::core::{CoverMethod, EliminationOrdering};
use ghd::csp::{
    count_solutions_with_ghd_opts, enumerate_solutions_with_ghd_opts, Csp, Relation, SolveOptions,
    Value,
};
use ghd::hypergraph::generators::hypergraphs;
use ghd_prng::rngs::StdRng;
use ghd_prng::RngExt;
use std::collections::BTreeSet;

/// A random CSP in which **every** variable occurs in some constraint:
/// `n ∈ 4..=8` variables, domain size 2–3, 3–6 constraints of arity 1–3
/// with random tuple subsets; stragglers get a full unary constraint.
fn arb_csp(rng: &mut StdRng) -> Csp {
    let n = rng.random_range(4..=8usize);
    let dsize = rng.random_range(2..=3u32);
    let domain: Vec<Value> = (0..dsize).collect();
    let mut csp = Csp::with_uniform_domain(n, domain.clone());
    let m = rng.random_range(3..=6usize);
    let mut covered = BTreeSet::new();
    for _ in 0..m {
        let arity = rng.random_range(1..=3usize).min(n);
        let mut scope = BTreeSet::new();
        while scope.len() < arity {
            scope.insert(rng.random_range(0..n));
        }
        let scope: Vec<usize> = scope.into_iter().collect();
        covered.extend(scope.iter().copied());
        let total = (dsize as u64).pow(arity as u32);
        let tuples: Vec<Vec<Value>> = (0..total)
            .filter(|_| rng.random_bool(0.6))
            .map(|mut code| {
                let mut t = vec![0; arity];
                for slot in t.iter_mut() {
                    *slot = (code % dsize as u64) as Value;
                    code /= dsize as u64;
                }
                t
            })
            .collect();
        csp.add_constraint(Relation::new(scope, tuples));
    }
    for v in 0..n {
        if !covered.contains(&v) {
            csp.add_constraint(Relation::new(
                vec![v],
                domain.iter().map(|&val| vec![val]).collect(),
            ));
        }
    }
    csp
}

/// A random **acyclic** CSP: constraint scopes follow an
/// [`hypergraphs::acyclic_chain`] (join-tree-shaped hypergraph), relations
/// are random tuple subsets. Every vertex of the chain is covered.
fn arb_acyclic_csp(rng: &mut StdRng) -> Csp {
    let m = rng.random_range(2..=4usize);
    let arity = rng.random_range(2..=3usize);
    let overlap = rng.random_range(1..arity);
    let h = hypergraphs::acyclic_chain(m, arity, overlap);
    let dsize = rng.random_range(2..=3u32);
    let domain: Vec<Value> = (0..dsize).collect();
    let mut csp = Csp::with_uniform_domain(h.num_vertices(), domain);
    for e in 0..h.num_edges() {
        let scope: Vec<usize> = h.edge(e).iter().collect();
        let total = (dsize as u64).pow(scope.len() as u32);
        let tuples: Vec<Vec<Value>> = (0..total)
            .filter(|_| rng.random_bool(0.7))
            .map(|mut code| {
                let mut t = vec![0; scope.len()];
                for slot in t.iter_mut() {
                    *slot = (code % dsize as u64) as Value;
                    code /= dsize as u64;
                }
                t
            })
            .collect();
        csp.add_constraint(Relation::new(scope, tuples));
    }
    csp
}

/// All solutions by exhaustive search (domains are tiny by construction).
fn brute_force_set(csp: &Csp) -> Vec<Vec<Value>> {
    let n = csp.num_variables();
    let mut out = Vec::new();
    let mut idx = vec![0usize; n];
    loop {
        let cand: Vec<Value> = (0..n).map(|v| csp.domain(v)[idx[v]]).collect();
        if csp.is_solution(&cand) {
            out.push(cand);
        }
        // odometer
        let mut k = n;
        loop {
            if k == 0 {
                return out;
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < csp.domain(k).len() {
                break;
            }
            idx[k] = 0;
        }
    }
}

fn configurations() -> Vec<SolveOptions> {
    let mut cfgs = Vec::new();
    for threads in [1usize, 2, 4] {
        for yannakakis in [true, false] {
            cfgs.push(SolveOptions {
                threads,
                yannakakis,
                ..SolveOptions::default()
            });
        }
    }
    cfgs
}

fn check_pipeline(csp: &Csp, tag: &str) {
    let brute = {
        let mut s = brute_force_set(csp);
        s.sort_unstable();
        s
    };
    let h = csp.constraint_hypergraph();
    let decompositions = [
        ghd_from_ordering(
            &h,
            &min_fill_ordering::<StdRng>(&h.primal_graph(), None),
            CoverMethod::Greedy,
        ),
        ghd_from_ordering(
            &h,
            &EliminationOrdering::identity(h.num_vertices()),
            CoverMethod::Exact,
        ),
    ];
    for (di, ghd) in decompositions.iter().enumerate() {
        for opts in configurations() {
            let count = count_solutions_with_ghd_opts(csp, ghd, &opts)
                .unwrap_or_else(|e| panic!("{tag} d{di} {opts:?}: {e:?}"));
            assert_eq!(count, brute.len() as u64, "{tag} d{di} {opts:?}: count");
            let mut sols = enumerate_solutions_with_ghd_opts(csp, ghd, usize::MAX, &opts)
                .unwrap_or_else(|e| panic!("{tag} d{di} {opts:?}: {e:?}"));
            sols.sort_unstable();
            assert_eq!(sols, brute, "{tag} d{di} {opts:?}: solution set");
        }
    }
}

/// Random (generally cyclic) CSPs: the pipeline reproduces the exact
/// brute-force solution set under every thread count and reduction toggle.
#[test]
fn pipeline_matches_brute_force_on_random_csps() {
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let csp = arb_csp(&mut rng);
        check_pipeline(&csp, &format!("cyclic seed {seed}"));
    }
}

/// Acyclic CSPs (chain-shaped constraint hypergraphs): same exactness.
#[test]
fn pipeline_matches_brute_force_on_acyclic_csps() {
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(0xAC << 8 | seed);
        let csp = arb_acyclic_csp(&mut rng);
        check_pipeline(&csp, &format!("acyclic seed {seed}"));
    }
}

/// Thread fan-out is bit-identical: the sequential result is the reference
/// and `threads ∈ {2, 4}` must reproduce it *without* sorting.
#[test]
fn thread_count_never_changes_results() {
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(0xBEEF ^ seed);
        let csp = arb_csp(&mut rng);
        let h = csp.constraint_hypergraph();
        let ghd = ghd_from_ordering(
            &h,
            &min_fill_ordering::<StdRng>(&h.primal_graph(), None),
            CoverMethod::Greedy,
        );
        let base = SolveOptions::default();
        let reference =
            enumerate_solutions_with_ghd_opts(&csp, &ghd, usize::MAX, &base).unwrap();
        for threads in [2usize, 4] {
            let opts = SolveOptions {
                threads,
                ..SolveOptions::default()
            };
            let got = enumerate_solutions_with_ghd_opts(&csp, &ghd, usize::MAX, &opts).unwrap();
            assert_eq!(got, reference, "seed {seed} threads {threads}: order/content");
        }
    }
}
