//! Ground-truth cross-validation: on instances small enough to enumerate
//! *every* elimination ordering, the exact searches must match the
//! brute-force optimum over the whole search space (sound by Theorem 3 for
//! ghw and the classical result for tw).

use ghd::core::bucket::ghd_from_ordering;
use ghd::core::eval::TwEvaluator;
use ghd::core::{CoverMethod, EliminationOrdering};
use ghd::hypergraph::generators::{graphs, hypergraphs};
use ghd::hypergraph::{Graph, Hypergraph};
use ghd::search::{astar_ghw, astar_tw, bb_ghw, bb_tw, BbConfig, BbGhwConfig, SearchLimits};

/// Iterates all permutations of `0..n` (Heap's algorithm).
fn for_each_permutation(n: usize, mut f: impl FnMut(&[usize])) {
    let mut a: Vec<usize> = (0..n).collect();
    let mut c = vec![0usize; n];
    f(&a);
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                a.swap(0, i);
            } else {
                a.swap(c[i], i);
            }
            f(&a);
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
}

fn brute_force_tw(g: &Graph) -> usize {
    let n = g.num_vertices();
    let mut eval = TwEvaluator::new(g);
    let mut best = usize::MAX;
    for_each_permutation(n, |perm| {
        let sigma = EliminationOrdering::new(perm.to_vec()).expect("permutation");
        best = best.min(eval.width(&sigma));
    });
    best
}

fn brute_force_ghw(h: &Hypergraph) -> usize {
    let n = h.num_vertices();
    let mut best = usize::MAX;
    for_each_permutation(n, |perm| {
        let sigma = EliminationOrdering::new(perm.to_vec()).expect("permutation");
        let ghd = ghd_from_ordering(h, &sigma, CoverMethod::Exact);
        best = best.min(ghd.width());
    });
    best
}

#[test]
fn treewidth_searches_match_exhaustive_optimum() {
    let mut cases: Vec<Graph> = vec![
        graphs::cycle(6),
        graphs::complete(5),
        graphs::grid(2),
        graphs::path(6),
    ];
    for seed in 0..6u64 {
        cases.push(graphs::gnm_random(7, 12, seed));
    }
    for (i, g) in cases.iter().enumerate() {
        let brute = brute_force_tw(g);
        let a = astar_tw(g, SearchLimits::unlimited());
        let b = bb_tw(g, &BbConfig::default());
        assert!(a.exact && b.exact, "case {i}");
        assert_eq!(a.upper_bound, brute, "A* case {i}");
        assert_eq!(b.upper_bound, brute, "BB case {i}");
    }
}

#[test]
fn ghw_searches_match_exhaustive_optimum() {
    let mut cases: Vec<Hypergraph> = vec![
        hypergraphs::clique(5),
        hypergraphs::acyclic_chain(3, 3, 1),
        Hypergraph::from_edges(6, [vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]]),
    ];
    for seed in 0..6u64 {
        cases.push(hypergraphs::random_hypergraph(7, 5, 3, seed));
    }
    for (i, h) in cases.iter().enumerate() {
        let brute = brute_force_ghw(h);
        let a = astar_ghw(h, SearchLimits::unlimited());
        let b = bb_ghw(h, &BbGhwConfig::default());
        assert!(a.exact && b.exact, "case {i}");
        assert_eq!(a.upper_bound, brute, "A* case {i}");
        assert_eq!(b.upper_bound, brute, "BB case {i}");
    }
}

/// Every pruning/reduction configuration of the branch and bound still
/// matches the exhaustive optimum — the rules are loss-free.
#[test]
fn pruning_rules_are_lossless_against_ground_truth() {
    for seed in 0..4u64 {
        let g = graphs::gnm_random(7, 11, 100 + seed);
        let brute = brute_force_tw(&g);
        for (red, pr2) in [(true, true), (true, false), (false, true), (false, false)] {
            let r = bb_tw(
                &g,
                &BbConfig {
                    use_reductions: red,
                    use_pr2: pr2,
                    ..BbConfig::default()
                },
            );
            assert_eq!(r.upper_bound, brute, "seed {seed} red={red} pr2={pr2}");
        }
        let h = hypergraphs::random_hypergraph(7, 5, 3, 200 + seed);
        let brute_h = brute_force_ghw(&h);
        for (red, pr2) in [(true, true), (true, false), (false, true), (false, false)] {
            let r = bb_ghw(
                &h,
                &BbGhwConfig {
                    use_reductions: red,
                    use_pr2: pr2,
                    ..BbGhwConfig::default()
                },
            );
            assert_eq!(r.upper_bound, brute_h, "seed {seed} red={red} pr2={pr2}");
        }
    }
}
