//! Known exact widths across the generator families — the ground-truth
//! anchor points of the evaluation chapters, as fast tests.

use ghd::hypergraph::generators::{graphs, hypergraphs};
use ghd::search::{astar_ghw, astar_tw, SearchLimits};

fn tw(g: &ghd::hypergraph::Graph) -> usize {
    let r = astar_tw(g, SearchLimits::unlimited());
    assert!(r.exact);
    r.upper_bound
}

fn ghw(h: &ghd::hypergraph::Hypergraph) -> usize {
    let r = astar_ghw(h, SearchLimits::unlimited());
    assert!(r.exact);
    r.upper_bound
}

#[test]
fn treewidth_of_grids_is_n() {
    for n in 2..=5 {
        assert_eq!(tw(&graphs::grid(n)), n, "grid{n}");
    }
}

#[test]
fn treewidth_of_small_dimacs_families() {
    assert_eq!(tw(&graphs::mycielski(3)), 5); // Table 5.1
    assert_eq!(tw(&graphs::mycielski(4)), 10); // Table 5.1
    assert_eq!(tw(&graphs::queen(4)), 11);
    assert_eq!(tw(&graphs::queen(5)), 18); // Table 5.1
}

#[test]
fn treewidth_of_structured_families() {
    assert_eq!(tw(&graphs::complete(9)), 8);
    assert_eq!(tw(&graphs::cycle(15)), 2);
    assert_eq!(tw(&graphs::path(15)), 1);
    // K_{3,3}-ish: queen(3) is K9 minus nothing? queen(3): every pair of
    // squares on a 3×3 board shares a line or diagonal except knight-moves.
    assert_eq!(tw(&graphs::grid3d(2)), 3); // the cube graph Q3 has tw 3
}

#[test]
fn ghw_of_clique_hypergraphs_is_ceil_half() {
    for n in 3..=7 {
        assert_eq!(ghw(&hypergraphs::clique(n)), n.div_ceil(2), "clique_{n}");
    }
}

#[test]
fn ghw_of_circuit_families_is_two() {
    // ripple-carry adders have constant ghw 2 (Tables 7.1/8.x)
    for n in [2, 4, 8] {
        assert_eq!(ghw(&hypergraphs::adder(n)), 2, "adder_{n}");
    }
}

#[test]
fn ghw_of_acyclic_families_is_one() {
    for (m, arity, overlap) in [(3, 3, 1), (4, 4, 2), (6, 2, 1)] {
        assert_eq!(ghw(&hypergraphs::acyclic_chain(m, arity, overlap)), 1);
    }
}

#[test]
fn small_checkerboard_grids() {
    // grid2d_4: 8 variables, 8 four-ish-ary edges; small constant width
    let h = hypergraphs::grid2d(4);
    let w = ghw(&h);
    assert!((1..=3).contains(&w), "grid2d_4 ghw = {w}");
    let b = hypergraphs::bridge(3);
    let w = ghw(&b);
    assert!((1..=3).contains(&w), "bridge_3 ghw = {w}");
}
