//! Interleaving-robustness tests for the work-stealing runtime: seeded
//! random delays injected at every task's containment boundary perturb the
//! steal schedule (who steals what, and when the shared incumbent tightens),
//! yet widths *and orderings* must equal the sequential search exactly —
//! the witness-reconstruction pass makes the reported ordering
//! schedule-independent, so any divergence here is a real determinism bug.
//!
//! Installation of a `FaultPlan` holds a process-wide scope lock, so these
//! tests serialise against each other instead of observing each other's
//! injected delays.

use ghd::hypergraph::generators::{graphs, hypergraphs};
use ghd::par::fault::{self, FaultPlan};
use ghd::search::{
    bb_ghw, bb_ghw_parallel, bb_tw, bb_tw_parallel, BbConfig, BbGhwConfig, StealConfig,
};

/// 32 delay seeds crossed with threads {2, 4, 8} and three steal-depth
/// cutoffs, cycling so every combination class is hit without running the
/// full 32×3×3 product on every instance.
const SEEDS: u64 = 32;
const THREADS: [usize; 3] = [2, 4, 8];
const DEPTHS: [usize; 3] = [1, 3, 5];

#[test]
fn bb_ghw_ordering_is_schedule_independent_under_injected_delays() {
    for h in [
        hypergraphs::random_hypergraph(10, 7, 3, 1),
        hypergraphs::random_circuit(16, 18, 7),
    ] {
        let seq = {
            let _clean = fault::install(FaultPlan::new());
            bb_ghw(&h, &BbGhwConfig::default())
        };
        assert!(seq.exact);
        for seed in 0..SEEDS {
            let threads = THREADS[(seed as usize) % THREADS.len()];
            let cfg = BbGhwConfig {
                steal: StealConfig {
                    depth: DEPTHS[(seed as usize / THREADS.len()) % DEPTHS.len()],
                },
                ..BbGhwConfig::default()
            };
            let _scope = fault::install(FaultPlan::new().delay(seed, 120));
            let par = bb_ghw_parallel(&h, &cfg, threads);
            assert!(par.faults.is_empty(), "seed {seed}: a delay is not a fault");
            assert!(par.exact, "seed {seed} threads {threads}");
            assert_eq!(par.upper_bound, seq.upper_bound, "seed {seed} threads {threads}");
            assert_eq!(par.ordering, seq.ordering, "seed {seed} threads {threads}");
        }
    }
}

#[test]
fn bb_tw_ordering_is_schedule_independent_under_injected_delays() {
    for g in [graphs::gnm_random(13, 32, 3), graphs::grid(4)] {
        let seq = {
            let _clean = fault::install(FaultPlan::new());
            bb_tw(&g, &BbConfig::default())
        };
        assert!(seq.exact);
        for seed in 0..SEEDS {
            let threads = THREADS[(seed as usize) % THREADS.len()];
            let cfg = BbConfig {
                steal: StealConfig {
                    depth: DEPTHS[(seed as usize / THREADS.len()) % DEPTHS.len()],
                },
                ..BbConfig::default()
            };
            let _scope = fault::install(FaultPlan::new().delay(seed, 120));
            let par = bb_tw_parallel(&g, &cfg, threads);
            assert!(par.faults.is_empty(), "seed {seed}: a delay is not a fault");
            assert!(par.exact, "seed {seed} threads {threads}");
            assert_eq!(par.upper_bound, seq.upper_bound, "seed {seed} threads {threads}");
            assert_eq!(par.ordering, seq.ordering, "seed {seed} threads {threads}");
        }
    }
}

/// Delays combined with a mid-run kill: the retried task runs on a
/// perturbed schedule too, and the result must stay exact and
/// ordering-identical.
#[test]
fn delays_plus_a_killed_task_still_converge_to_the_sequential_result() {
    let h = hypergraphs::grid2d(5);
    let seq = {
        let _clean = fault::install(FaultPlan::new());
        bb_ghw(&h, &BbGhwConfig::default())
    };
    for seed in 0..8u64 {
        let threads = THREADS[(seed as usize) % THREADS.len()];
        let scope = fault::install(FaultPlan::new().delay(seed, 120).kill_task(1));
        let par = bb_ghw_parallel(&h, &BbGhwConfig::default(), threads);
        assert_eq!(scope.fired(), 1, "seed {seed}: kill did not fire");
        drop(scope);
        assert_eq!(par.faults.len(), 1, "seed {seed}");
        assert!(par.exact, "seed {seed}: retry lost exactness");
        assert_eq!(par.upper_bound, seq.upper_bound, "seed {seed}");
        assert_eq!(par.ordering, seq.ordering, "seed {seed}");
    }
}
