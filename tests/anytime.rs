//! Anytime-soundness tests: interrupted searches must report bounds that
//! bracket the true optimum, for every algorithm and every budget — plus
//! determinism of the parallel root-split searches and the cover cache's
//! behavioural transparency.

use ghd::core::bucket::ghd_from_ordering;
use ghd::core::eval::TwEvaluator;
use ghd::core::{CoverMethod, EliminationOrdering};
use ghd::hypergraph::generators::{graphs, hypergraphs};
use ghd::hypergraph::Hypergraph;
use ghd::search::{
    astar_ghw, astar_tw, bb_ghw, bb_ghw_parallel, bb_tw, bb_tw_parallel, BbConfig, BbGhwConfig,
    SearchLimits,
};
use std::time::{Duration, Instant};

#[test]
fn truncated_tw_searches_bracket_the_optimum() {
    for seed in 0..5u64 {
        let g = graphs::gnm_random(16, 45, seed);
        let truth = astar_tw(&g, SearchLimits::unlimited());
        assert!(truth.exact);
        for budget in [1u64, 5, 25, 100] {
            let a = astar_tw(&g, SearchLimits::with_nodes(budget));
            assert!(
                a.lower_bound <= truth.upper_bound && a.upper_bound >= truth.upper_bound,
                "A* seed {seed} budget {budget}: [{}, {}] vs {}",
                a.lower_bound,
                a.upper_bound,
                truth.upper_bound
            );
            if a.exact {
                assert_eq!(a.upper_bound, truth.upper_bound);
            }
            let b = bb_tw(
                &g,
                &BbConfig {
                    limits: SearchLimits::with_nodes(budget),
                    ..BbConfig::default()
                },
            );
            assert!(
                b.lower_bound <= truth.upper_bound && b.upper_bound >= truth.upper_bound,
                "BB seed {seed} budget {budget}"
            );
            if b.exact {
                assert_eq!(b.upper_bound, truth.upper_bound);
            }
        }
    }
}

#[test]
fn truncated_ghw_searches_bracket_the_optimum() {
    for seed in 0..4u64 {
        let h = hypergraphs::random_hypergraph(11, 8, 3, seed);
        let truth = bb_ghw(&h, &BbGhwConfig::default());
        assert!(truth.exact);
        for budget in [1u64, 10, 50] {
            let a = astar_ghw(&h, SearchLimits::with_nodes(budget));
            assert!(
                a.lower_bound <= truth.upper_bound && a.upper_bound >= truth.upper_bound,
                "A*-ghw seed {seed} budget {budget}: [{}, {}] vs {}",
                a.lower_bound,
                a.upper_bound,
                truth.upper_bound
            );
            if a.exact {
                assert_eq!(a.upper_bound, truth.upper_bound);
            }
            let b = bb_ghw(
                &h,
                &BbGhwConfig {
                    limits: SearchLimits::with_nodes(budget),
                    ..BbGhwConfig::default()
                },
            );
            assert!(
                b.lower_bound <= truth.upper_bound && b.upper_bound >= truth.upper_bound,
                "BB-ghw seed {seed} budget {budget}"
            );
            if b.exact {
                assert_eq!(b.upper_bound, truth.upper_bound);
            }
        }
    }
}

/// Larger budgets never worsen the bracket (monotone anytime behaviour of
/// the branch and bound upper bound).
#[test]
fn bb_upper_bounds_improve_monotonically_with_budget() {
    let g = graphs::queen(5);
    let mut last_ub = usize::MAX;
    for budget in [10u64, 100, 1_000, 10_000] {
        let r = bb_tw(
            &g,
            &BbConfig {
                limits: SearchLimits::with_nodes(budget),
                ..BbConfig::default()
            },
        );
        assert!(r.upper_bound <= last_ub, "budget {budget}");
        last_ub = r.upper_bound;
    }
    assert!(last_ub >= 18); // never below the true treewidth
}

/// The parallel root-split searches are deterministic and width-identical
/// to the sequential searches for fixed seeds, for every thread count, and
/// the returned orderings actually realise the reported widths.
#[test]
fn parallel_searches_match_sequential_and_orderings_realize_widths() {
    for seed in [3u64, 11, 42] {
        let h = hypergraphs::random_hypergraph(12, 9, 3, seed);
        let seq = bb_ghw(&h, &BbGhwConfig::default());
        assert!(seq.exact, "seed {seed}");
        for threads in [1usize, 2, 4] {
            let par = bb_ghw_parallel(&h, &BbGhwConfig::default(), threads);
            assert!(par.exact, "seed {seed} threads {threads}");
            assert_eq!(par.upper_bound, seq.upper_bound, "seed {seed} threads {threads}");
            let sigma = EliminationOrdering::new(
                par.ordering.clone().expect("exact search returns an ordering"),
            )
            .expect("search orderings are permutations");
            let realized = ghd_from_ordering(&h, &sigma, CoverMethod::Exact).width();
            assert_eq!(realized, par.upper_bound, "seed {seed} threads {threads}");
        }

        let g = graphs::gnm_random(14, 40, seed);
        let seq = bb_tw(&g, &BbConfig::default());
        assert!(seq.exact, "seed {seed}");
        for threads in [1usize, 2, 4] {
            let par = bb_tw_parallel(&g, &BbConfig::default(), threads);
            assert!(par.exact, "seed {seed} threads {threads}");
            assert_eq!(par.upper_bound, seq.upper_bound, "seed {seed} threads {threads}");
            let sigma = EliminationOrdering::new(
                par.ordering.clone().expect("exact search returns an ordering"),
            )
            .expect("search orderings are permutations");
            let realized = TwEvaluator::new(&g).width(&sigma);
            assert_eq!(realized, par.upper_bound, "seed {seed} threads {threads}");
        }
    }
}

/// One wall-clock deadline is shared by every worker of the parallel
/// root-split searches: a run with `time_limit = T` finishes in O(T) wall
/// time for **any** thread count — never `threads × T`. The fixed grace
/// term covers the uninterruptible root work (heuristic bounds, root
/// covers), which runs before the first deadline check.
#[test]
fn parallel_time_budget_is_shared_not_multiplied() {
    let h = hypergraphs::grid2d(8);
    let budget = Duration::from_millis(600);
    let grace = Duration::from_secs(3);
    for threads in [1usize, 2, 4] {
        let cfg = BbGhwConfig {
            limits: SearchLimits::with_time(budget),
            ..BbGhwConfig::default()
        };
        let started = Instant::now();
        let r = bb_ghw_parallel(&h, &cfg, threads);
        let wall = started.elapsed();
        assert!(
            wall <= budget.mul_f64(1.2) + grace,
            "threads {threads}: wall {wall:?} blew the {budget:?} budget"
        );
        assert!(r.lower_bound <= r.upper_bound, "threads {threads}");
    }
}

/// `max_nodes = N` is one **global** pool of node credits: the merged
/// expansion count of all workers never exceeds N, for any thread count
/// (the pre-fix behaviour handed every root-split worker its own budget,
/// inflating the real limit by the number of root children).
#[test]
fn parallel_node_budget_is_global() {
    let g = graphs::queen(6);
    let h = hypergraphs::grid2d(6);
    for cap in [100u64, 400] {
        for threads in [1usize, 2, 4] {
            let r = bb_tw_parallel(
                &g,
                &BbConfig {
                    limits: SearchLimits::with_nodes(cap),
                    ..BbConfig::default()
                },
                threads,
            );
            assert!(
                r.nodes_expanded <= cap,
                "tw cap {cap} threads {threads}: expanded {}",
                r.nodes_expanded
            );
            assert!(r.lower_bound <= r.upper_bound, "tw cap {cap} threads {threads}");

            let r = bb_ghw_parallel(
                &h,
                &BbGhwConfig {
                    limits: SearchLimits::with_nodes(cap),
                    ..BbGhwConfig::default()
                },
                threads,
            );
            assert!(
                r.nodes_expanded <= cap,
                "ghw cap {cap} threads {threads}: expanded {}",
                r.nodes_expanded
            );
            assert!(r.lower_bound <= r.upper_bound, "ghw cap {cap} threads {threads}");
        }
    }
}

/// Telemetry is behaviourally free across the whole search suite: the
/// sequential searches are **bit-identical** with stats on and off (same
/// bounds, same ordering, same node count) under capped and uncapped
/// budgets, and the stats object appears exactly when requested.
#[test]
fn telemetry_is_behaviourally_free_across_the_search_suite() {
    let g = graphs::gnm_random(14, 40, 7);
    let h = hypergraphs::random_hypergraph(11, 8, 3, 5);
    for cap in [Some(1u64), Some(25), Some(500), None] {
        let off = match cap {
            Some(n) => SearchLimits::with_nodes(n),
            None => SearchLimits::unlimited(),
        };
        let on = off.clone().stats(true);
        let runs: [(&str, ghd::search::SearchResult, ghd::search::SearchResult); 4] = [
            ("astar_tw", astar_tw(&g, off.clone()), astar_tw(&g, on.clone())),
            (
                "bb_tw",
                bb_tw(&g, &BbConfig { limits: off.clone(), ..BbConfig::default() }),
                bb_tw(&g, &BbConfig { limits: on.clone(), ..BbConfig::default() }),
            ),
            ("astar_ghw", astar_ghw(&h, off.clone()), astar_ghw(&h, on.clone())),
            (
                "bb_ghw",
                bb_ghw(&h, &BbGhwConfig { limits: off, ..BbGhwConfig::default() }),
                bb_ghw(&h, &BbGhwConfig { limits: on, ..BbGhwConfig::default() }),
            ),
        ];
        for (name, a, b) in &runs {
            let tag = format!("{name} cap {cap:?}");
            assert_eq!(a.upper_bound, b.upper_bound, "{tag}: ub");
            assert_eq!(a.lower_bound, b.lower_bound, "{tag}: lb");
            assert_eq!(a.exact, b.exact, "{tag}: exact");
            assert_eq!(a.ordering, b.ordering, "{tag}: ordering");
            assert_eq!(a.nodes_expanded, b.nodes_expanded, "{tag}: nodes");
            assert!(a.stats.is_none(), "{tag}: stats off must carry no stats");
            let st = b.stats.as_ref().unwrap_or_else(|| panic!("{tag}: stats on"));
            assert!(!st.incumbents.is_empty(), "{tag}: incumbent trace");
            assert!(
                st.incumbents.windows(2).all(|w| w[0].elapsed <= w[1].elapsed),
                "{tag}: incumbents sorted"
            );
            assert!(
                st.incumbents.iter().all(|s| s.lower_bound <= s.upper_bound),
                "{tag}: incumbent lb <= ub"
            );
        }
    }

    // parallel searches: widths identical, stats merged from all workers
    let off = SearchLimits::unlimited();
    let a = bb_ghw_parallel(&h, &BbGhwConfig { limits: off.clone(), ..BbGhwConfig::default() }, 3);
    let b = bb_ghw_parallel(
        &h,
        &BbGhwConfig { limits: off.stats(true), ..BbGhwConfig::default() },
        3,
    );
    assert_eq!(a.upper_bound, b.upper_bound, "parallel: ub");
    assert_eq!(a.exact, b.exact, "parallel: exact");
    assert!(a.stats.is_none() && b.stats.is_some(), "parallel: stats gating");
    assert!(!b.stats.unwrap().incumbents.is_empty(), "parallel: incumbents");
}

/// The set-cover transposition cache is behaviourally invisible: identical
/// widths with the cache on and off, and solving the same instance twice
/// through one shared cache produces hits (Fig 2.11's hypergraph, ghw 2,
/// and a clique).
#[test]
fn cover_cache_is_transparent_and_effective() {
    use ghd::bounds::ghw_upper_bound_cached;
    use ghd::core::setcover::CoverCache;

    let fig_2_11 = Hypergraph::from_edges(6, [vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]]);
    let clique = hypergraphs::clique(8);
    for (name, h, expect) in [("fig_2_11", &fig_2_11, Some(2)), ("clique_8", &clique, Some(4))] {
        // cache on/off: identical results
        let on = bb_ghw(h, &BbGhwConfig::default());
        let off = bb_ghw(
            h,
            &BbGhwConfig {
                use_cover_cache: false,
                ..BbGhwConfig::default()
            },
        );
        assert_eq!(on.upper_bound, off.upper_bound, "{name}");
        assert_eq!(on.exact, off.exact, "{name}");
        assert_eq!(on.ordering, off.ordering, "{name}");
        if let Some(w) = expect {
            assert!(on.exact, "{name}");
            assert_eq!(on.upper_bound, w, "{name}");
        }
        assert!(off.cover_cache.is_none(), "{name}");

        // solving twice through one shared cache: the second pass hits
        let mut cache = CoverCache::new();
        let (w1, _) = ghw_upper_bound_cached(h, &mut cache);
        let after_first = cache.stats();
        let (w2, _) = ghw_upper_bound_cached(h, &mut cache);
        let after_second = cache.stats();
        assert_eq!(w1, w2, "{name}");
        assert!(after_first.misses > 0, "{name}");
        assert!(
            after_second.hits > after_first.hits,
            "{name}: second solve should replay cached covers"
        );
        assert_eq!(
            after_second.misses, after_first.misses,
            "{name}: second solve should add no misses"
        );
    }
}

/// The A\* searches are fully deterministic run-to-run: repeated invocations
/// produce the same widths, orderings and node counts, and — with telemetry
/// on — the same open/seen peak gauges *and peak byte gauges*. The byte
/// gauges come from the bucket queue and the state interner, whose layouts
/// are functions of the (deterministic) expansion sequence alone.
#[test]
fn astar_runs_are_reproducible_including_peak_bytes() {
    let g = graphs::gnm_random(15, 42, 11);
    let h = hypergraphs::random_hypergraph(12, 8, 3, 9);
    for cap in [Some(40u64), None] {
        let limits = match cap {
            Some(n) => SearchLimits::with_nodes(n).stats(true),
            None => SearchLimits::unlimited().stats(true),
        };
        let (a1, a2) = (astar_tw(&g, limits.clone()), astar_tw(&g, limits.clone()));
        let (b1, b2) = (astar_ghw(&h, limits.clone()), astar_ghw(&h, limits));
        for (name, x, y) in [("astar_tw", &a1, &a2), ("astar_ghw", &b1, &b2)] {
            let tag = format!("{name} cap {cap:?}");
            assert_eq!(x.upper_bound, y.upper_bound, "{tag}: ub");
            assert_eq!(x.lower_bound, y.lower_bound, "{tag}: lb");
            assert_eq!(x.ordering, y.ordering, "{tag}: ordering");
            assert_eq!(x.nodes_expanded, y.nodes_expanded, "{tag}: nodes");
            let (sx, sy) = (x.stats.as_ref().unwrap(), y.stats.as_ref().unwrap());
            assert_eq!(sx.open_peak, sy.open_peak, "{tag}: open_peak");
            assert_eq!(sx.seen_peak, sy.seen_peak, "{tag}: seen_peak");
            assert_eq!(sx.open_peak_bytes, sy.open_peak_bytes, "{tag}: open bytes");
            assert_eq!(sx.seen_peak_bytes, sy.seen_peak_bytes, "{tag}: seen bytes");
            if x.nodes_expanded > 2 {
                assert!(sx.open_peak_bytes > 0, "{tag}: open bytes recorded");
                assert!(sx.seen_peak_bytes > 0, "{tag}: seen bytes recorded");
            }
        }
    }
}

/// BB-tw / BB-ghw keep reporting zero peak gauges (depth-first search has no
/// open list or closed set), so the new byte columns stay meaningful: a
/// nonzero value always identifies a best-first run.
#[test]
fn bb_runs_report_zero_peak_gauges() {
    let g = graphs::gnm_random(14, 38, 3);
    let h = hypergraphs::random_hypergraph(11, 7, 3, 3);
    let limits = SearchLimits::unlimited().stats(true);
    let b1 = bb_tw(&g, &BbConfig { limits: limits.clone(), ..BbConfig::default() });
    let b2 = bb_ghw(&h, &BbGhwConfig { limits, ..BbGhwConfig::default() });
    for (name, r) in [("bb_tw", &b1), ("bb_ghw", &b2)] {
        let st = r.stats.as_ref().unwrap();
        assert_eq!(st.open_peak, 0, "{name}");
        assert_eq!(st.open_peak_bytes, 0, "{name}");
        assert_eq!(st.seen_peak_bytes, 0, "{name}");
    }
}
