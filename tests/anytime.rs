//! Anytime-soundness tests: interrupted searches must report bounds that
//! bracket the true optimum, for every algorithm and every budget — plus
//! determinism of the parallel root-split searches and the cover cache's
//! behavioural transparency.

use ghd::core::bucket::ghd_from_ordering;
use ghd::core::eval::TwEvaluator;
use ghd::core::{CoverMethod, EliminationOrdering};
use ghd::hypergraph::generators::{graphs, hypergraphs};
use ghd::hypergraph::Hypergraph;
use ghd::search::{
    astar_ghw, astar_tw, bb_ghw, bb_ghw_parallel, bb_tw, bb_tw_parallel, BbConfig, BbGhwConfig,
    SearchLimits,
};

#[test]
fn truncated_tw_searches_bracket_the_optimum() {
    for seed in 0..5u64 {
        let g = graphs::gnm_random(16, 45, seed);
        let truth = astar_tw(&g, SearchLimits::unlimited());
        assert!(truth.exact);
        for budget in [1u64, 5, 25, 100] {
            let a = astar_tw(&g, SearchLimits::with_nodes(budget));
            assert!(
                a.lower_bound <= truth.upper_bound && a.upper_bound >= truth.upper_bound,
                "A* seed {seed} budget {budget}: [{}, {}] vs {}",
                a.lower_bound,
                a.upper_bound,
                truth.upper_bound
            );
            if a.exact {
                assert_eq!(a.upper_bound, truth.upper_bound);
            }
            let b = bb_tw(
                &g,
                &BbConfig {
                    limits: SearchLimits::with_nodes(budget),
                    ..BbConfig::default()
                },
            );
            assert!(
                b.lower_bound <= truth.upper_bound && b.upper_bound >= truth.upper_bound,
                "BB seed {seed} budget {budget}"
            );
            if b.exact {
                assert_eq!(b.upper_bound, truth.upper_bound);
            }
        }
    }
}

#[test]
fn truncated_ghw_searches_bracket_the_optimum() {
    for seed in 0..4u64 {
        let h = hypergraphs::random_hypergraph(11, 8, 3, seed);
        let truth = bb_ghw(&h, &BbGhwConfig::default());
        assert!(truth.exact);
        for budget in [1u64, 10, 50] {
            let a = astar_ghw(&h, SearchLimits::with_nodes(budget));
            assert!(
                a.lower_bound <= truth.upper_bound && a.upper_bound >= truth.upper_bound,
                "A*-ghw seed {seed} budget {budget}: [{}, {}] vs {}",
                a.lower_bound,
                a.upper_bound,
                truth.upper_bound
            );
            if a.exact {
                assert_eq!(a.upper_bound, truth.upper_bound);
            }
            let b = bb_ghw(
                &h,
                &BbGhwConfig {
                    limits: SearchLimits::with_nodes(budget),
                    ..BbGhwConfig::default()
                },
            );
            assert!(
                b.lower_bound <= truth.upper_bound && b.upper_bound >= truth.upper_bound,
                "BB-ghw seed {seed} budget {budget}"
            );
            if b.exact {
                assert_eq!(b.upper_bound, truth.upper_bound);
            }
        }
    }
}

/// Larger budgets never worsen the bracket (monotone anytime behaviour of
/// the branch and bound upper bound).
#[test]
fn bb_upper_bounds_improve_monotonically_with_budget() {
    let g = graphs::queen(5);
    let mut last_ub = usize::MAX;
    for budget in [10u64, 100, 1_000, 10_000] {
        let r = bb_tw(
            &g,
            &BbConfig {
                limits: SearchLimits::with_nodes(budget),
                ..BbConfig::default()
            },
        );
        assert!(r.upper_bound <= last_ub, "budget {budget}");
        last_ub = r.upper_bound;
    }
    assert!(last_ub >= 18); // never below the true treewidth
}

/// The parallel root-split searches are deterministic and width-identical
/// to the sequential searches for fixed seeds, for every thread count, and
/// the returned orderings actually realise the reported widths.
#[test]
fn parallel_searches_match_sequential_and_orderings_realize_widths() {
    for seed in [3u64, 11, 42] {
        let h = hypergraphs::random_hypergraph(12, 9, 3, seed);
        let seq = bb_ghw(&h, &BbGhwConfig::default());
        assert!(seq.exact, "seed {seed}");
        for threads in [1usize, 2, 4] {
            let par = bb_ghw_parallel(&h, &BbGhwConfig::default(), threads);
            assert!(par.exact, "seed {seed} threads {threads}");
            assert_eq!(par.upper_bound, seq.upper_bound, "seed {seed} threads {threads}");
            let sigma = EliminationOrdering::new(
                par.ordering.clone().expect("exact search returns an ordering"),
            )
            .expect("search orderings are permutations");
            let realized = ghd_from_ordering(&h, &sigma, CoverMethod::Exact).width();
            assert_eq!(realized, par.upper_bound, "seed {seed} threads {threads}");
        }

        let g = graphs::gnm_random(14, 40, seed);
        let seq = bb_tw(&g, &BbConfig::default());
        assert!(seq.exact, "seed {seed}");
        for threads in [1usize, 2, 4] {
            let par = bb_tw_parallel(&g, &BbConfig::default(), threads);
            assert!(par.exact, "seed {seed} threads {threads}");
            assert_eq!(par.upper_bound, seq.upper_bound, "seed {seed} threads {threads}");
            let sigma = EliminationOrdering::new(
                par.ordering.clone().expect("exact search returns an ordering"),
            )
            .expect("search orderings are permutations");
            let realized = TwEvaluator::new(&g).width(&sigma);
            assert_eq!(realized, par.upper_bound, "seed {seed} threads {threads}");
        }
    }
}

/// The set-cover transposition cache is behaviourally invisible: identical
/// widths with the cache on and off, and solving the same instance twice
/// through one shared cache produces hits (Fig 2.11's hypergraph, ghw 2,
/// and a clique).
#[test]
fn cover_cache_is_transparent_and_effective() {
    use ghd::bounds::ghw_upper_bound_cached;
    use ghd::core::setcover::CoverCache;

    let fig_2_11 = Hypergraph::from_edges(6, [vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]]);
    let clique = hypergraphs::clique(8);
    for (name, h, expect) in [("fig_2_11", &fig_2_11, Some(2)), ("clique_8", &clique, Some(4))] {
        // cache on/off: identical results
        let on = bb_ghw(h, &BbGhwConfig::default());
        let off = bb_ghw(
            h,
            &BbGhwConfig {
                use_cover_cache: false,
                ..BbGhwConfig::default()
            },
        );
        assert_eq!(on.upper_bound, off.upper_bound, "{name}");
        assert_eq!(on.exact, off.exact, "{name}");
        assert_eq!(on.ordering, off.ordering, "{name}");
        if let Some(w) = expect {
            assert!(on.exact, "{name}");
            assert_eq!(on.upper_bound, w, "{name}");
        }
        assert!(off.cover_cache.is_none(), "{name}");

        // solving twice through one shared cache: the second pass hits
        let mut cache = CoverCache::new();
        let (w1, _) = ghw_upper_bound_cached(h, &mut cache);
        let after_first = cache.stats();
        let (w2, _) = ghw_upper_bound_cached(h, &mut cache);
        let after_second = cache.stats();
        assert_eq!(w1, w2, "{name}");
        assert!(after_first.misses > 0, "{name}");
        assert!(
            after_second.hits > after_first.hits,
            "{name}: second solve should replay cached covers"
        );
        assert_eq!(
            after_second.misses, after_first.misses,
            "{name}: second solve should add no misses"
        );
    }
}
