//! Anytime-soundness tests: interrupted searches must report bounds that
//! bracket the true optimum, for every algorithm and every budget.

use ghd::hypergraph::generators::{graphs, hypergraphs};
use ghd::search::{astar_ghw, astar_tw, bb_ghw, bb_tw, BbConfig, BbGhwConfig, SearchLimits};

#[test]
fn truncated_tw_searches_bracket_the_optimum() {
    for seed in 0..5u64 {
        let g = graphs::gnm_random(16, 45, seed);
        let truth = astar_tw(&g, SearchLimits::unlimited());
        assert!(truth.exact);
        for budget in [1u64, 5, 25, 100] {
            let a = astar_tw(&g, SearchLimits::with_nodes(budget));
            assert!(
                a.lower_bound <= truth.upper_bound && a.upper_bound >= truth.upper_bound,
                "A* seed {seed} budget {budget}: [{}, {}] vs {}",
                a.lower_bound,
                a.upper_bound,
                truth.upper_bound
            );
            if a.exact {
                assert_eq!(a.upper_bound, truth.upper_bound);
            }
            let b = bb_tw(
                &g,
                &BbConfig {
                    limits: SearchLimits::with_nodes(budget),
                    ..BbConfig::default()
                },
            );
            assert!(
                b.lower_bound <= truth.upper_bound && b.upper_bound >= truth.upper_bound,
                "BB seed {seed} budget {budget}"
            );
            if b.exact {
                assert_eq!(b.upper_bound, truth.upper_bound);
            }
        }
    }
}

#[test]
fn truncated_ghw_searches_bracket_the_optimum() {
    for seed in 0..4u64 {
        let h = hypergraphs::random_hypergraph(11, 8, 3, seed);
        let truth = bb_ghw(&h, &BbGhwConfig::default());
        assert!(truth.exact);
        for budget in [1u64, 10, 50] {
            let a = astar_ghw(&h, SearchLimits::with_nodes(budget));
            assert!(
                a.lower_bound <= truth.upper_bound && a.upper_bound >= truth.upper_bound,
                "A*-ghw seed {seed} budget {budget}: [{}, {}] vs {}",
                a.lower_bound,
                a.upper_bound,
                truth.upper_bound
            );
            if a.exact {
                assert_eq!(a.upper_bound, truth.upper_bound);
            }
            let b = bb_ghw(
                &h,
                &BbGhwConfig {
                    limits: SearchLimits::with_nodes(budget),
                    ..BbGhwConfig::default()
                },
            );
            assert!(
                b.lower_bound <= truth.upper_bound && b.upper_bound >= truth.upper_bound,
                "BB-ghw seed {seed} budget {budget}"
            );
            if b.exact {
                assert_eq!(b.upper_bound, truth.upper_bound);
            }
        }
    }
}

/// Larger budgets never worsen the bracket (monotone anytime behaviour of
/// the branch and bound upper bound).
#[test]
fn bb_upper_bounds_improve_monotonically_with_budget() {
    let g = graphs::queen(5);
    let mut last_ub = usize::MAX;
    for budget in [10u64, 100, 1_000, 10_000] {
        let r = bb_tw(
            &g,
            &BbConfig {
                limits: SearchLimits::with_nodes(budget),
                ..BbConfig::default()
            },
        );
        assert!(r.upper_bound <= last_ub, "budget {budget}");
        last_ub = r.upper_bound;
    }
    assert!(last_ub >= 18); // never below the true treewidth
}
