//! Property-based tests (proptest) over the core data structures and the
//! thesis' structural invariants.

use ghd::core::bucket::{bucket_elimination, ghd_from_ordering, vertex_elimination};
use ghd::core::eval::TwEvaluator;
use ghd::core::lnf::{leaf_normal_form, ordering_from_lnf, verify_lnf};
use ghd::core::setcover::{exact_cover, greedy_cover};
use ghd::core::{CoverMethod, EliminationOrdering};
use ghd::hypergraph::{BitSet, Graph, Hypergraph};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy: an arbitrary graph on `n ∈ 2..=12` vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=12).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n), 0..=max_edges)
            .prop_map(move |pairs| Graph::from_edges(n, pairs))
    })
}

/// Strategy: a hypergraph on `n ∈ 3..=10` vertices whose edges cover all
/// vertices (constraint hypergraphs always do).
fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (3usize..=10).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::btree_set(0..n, 1..=4), 1..=8).prop_map(
            move |edge_sets| {
                let mut edges: Vec<Vec<usize>> =
                    edge_sets.into_iter().map(|s| s.into_iter().collect()).collect();
                // cover stragglers so every vertex is constrained
                let covered: BTreeSet<usize> = edges.iter().flatten().copied().collect();
                for v in 0..n {
                    if !covered.contains(&v) {
                        edges.push(vec![v]);
                    }
                }
                Hypergraph::from_edges(n, edges)
            },
        )
    })
}

/// Strategy: a permutation of `0..n`.
fn arb_permutation(n: usize) -> impl Strategy<Value = Vec<usize>> {
    Just((0..n).collect::<Vec<usize>>()).prop_shuffle()
}

proptest! {
    /// BitSet behaves exactly like a BTreeSet under a random op sequence.
    #[test]
    fn bitset_models_btreeset(ops in proptest::collection::vec((0usize..3, 0usize..64), 0..200)) {
        let mut bs = BitSet::new(64);
        let mut model = BTreeSet::new();
        for (op, v) in ops {
            match op {
                0 => { prop_assert_eq!(bs.insert(v), model.insert(v)); }
                1 => { prop_assert_eq!(bs.remove(v), model.remove(&v)); }
                _ => { prop_assert_eq!(bs.contains(v), model.contains(&v)); }
            }
        }
        prop_assert_eq!(bs.to_vec(), model.into_iter().collect::<Vec<_>>());
    }

    /// Any ordering of any graph yields a valid tree decomposition, and the
    /// fast evaluator (Fig 6.2) computes exactly its width.
    #[test]
    fn any_ordering_yields_valid_td_with_matching_width(g in arb_graph(), seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sigma = EliminationOrdering::random(g.num_vertices(), &mut rng);
        let td = vertex_elimination(&g, &sigma);
        prop_assert!(td.verify_graph(&g).is_ok());
        let w = TwEvaluator::new(&g).width(&sigma);
        prop_assert_eq!(w, td.width());
    }

    /// Bucket elimination on `H` and vertex elimination on `G*(H)` produce
    /// identical decompositions (Definition 16's note).
    #[test]
    fn bucket_equals_vertex_elimination(h in arb_hypergraph(), perm_seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        let sigma = EliminationOrdering::random(h.num_vertices(), &mut rng);
        let a = bucket_elimination(&h, &sigma);
        let b = vertex_elimination(&h.primal_graph(), &sigma);
        prop_assert_eq!(a.num_nodes(), b.num_nodes());
        for p in a.nodes() {
            prop_assert_eq!(a.bag(p), b.bag(p));
        }
    }

    /// Exact set cover is never larger than greedy and both actually cover.
    #[test]
    fn exact_cover_dominates_greedy(h in arb_hypergraph(), mask in proptest::collection::vec(any::<bool>(), 10)) {
        let n = h.num_vertices();
        let target = BitSet::from_iter(n, (0..n).filter(|&v| mask[v % mask.len()]));
        let g = greedy_cover::<rand::rngs::StdRng>(&target, &h, None);
        let x = exact_cover(&target, &h);
        prop_assert!(x.len() <= g.len());
        for chosen in [&g, &x] {
            let mut covered = BitSet::new(n);
            for &e in chosen.iter() {
                covered.union_with(h.edge(e));
            }
            prop_assert!(target.is_subset(&covered));
        }
    }

    /// Theorem 1 + Lemma 13 + Theorem 2, propertised: transforming any
    /// elimination-derived GHD through the leaf normal form and re-deriving
    /// an ordering never increases the exact-cover width.
    #[test]
    fn lnf_round_trip_never_increases_width(h in arb_hypergraph(), perm_seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        let sigma = EliminationOrdering::random(h.num_vertices(), &mut rng);
        let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
        let lnf = leaf_normal_form(&h, ghd.tree());
        prop_assert!(verify_lnf(&h, &lnf));
        prop_assert!(lnf.td.verify(&h).is_ok());
        let sigma2 = ordering_from_lnf(&h, &lnf);
        let rebuilt = ghd_from_ordering(&h, &sigma2, CoverMethod::Exact);
        prop_assert!(rebuilt.verify(&h).is_ok());
        prop_assert!(rebuilt.width() <= ghd.width());
    }

    /// GHDs from any ordering are valid and completable without width
    /// growth (Lemma 2).
    #[test]
    fn completion_preserves_width(h in arb_hypergraph(), perm_seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(perm_seed);
        let sigma = EliminationOrdering::random(h.num_vertices(), &mut rng);
        let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Greedy);
        prop_assert!(ghd.verify(&h).is_ok());
        let w = ghd.width();
        let complete = ghd.complete(&h);
        prop_assert!(complete.is_complete(&h));
        prop_assert!(complete.verify(&h).is_ok());
        prop_assert_eq!(complete.width(), w.max(1));
    }

    /// All GA crossover operators produce permutations; all mutation
    /// operators preserve them (fuzzed beyond the unit tests' sizes).
    #[test]
    fn ga_operators_preserve_permutations(
        p1 in (2usize..40).prop_flat_map(arb_permutation),
        seed in 0u64..1000,
    ) {
        use ghd::ga::{CrossoverOp, MutationOp};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = p1.len();
        let p2: Vec<usize> = (0..n).rev().collect();
        let check = |p: &[usize]| {
            let mut s = p.to_vec();
            s.sort_unstable();
            s == (0..n).collect::<Vec<_>>()
        };
        for op in CrossoverOp::ALL {
            prop_assert!(check(&op.apply(&p1, &p2, &mut rng)), "{}", op.name());
        }
        for op in MutationOp::ALL {
            let mut q = p1.clone();
            op.apply(&mut q, &mut rng);
            prop_assert!(check(&q), "{}", op.name());
        }
    }

    /// Lower bounds never exceed the width of any concrete ordering.
    #[test]
    fn lower_bounds_are_sound(g in arb_graph(), seed in 0u64..1000) {
        use ghd::bounds::{tw_lower_bound, tw_upper_bound};
        use rand::SeedableRng;
        let lb = tw_lower_bound::<rand::rngs::StdRng>(&g, None);
        let (ub, _) = tw_upper_bound::<rand::rngs::StdRng>(&g, None);
        prop_assert!(lb <= ub);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sigma = EliminationOrdering::random(g.num_vertices(), &mut rng);
        let w = TwEvaluator::new(&g).width(&sigma);
        prop_assert!(lb <= w);
    }

    /// `ghw(H) = 1` iff `H` is α-acyclic (GYO reduction) — the classical
    /// characterisation, cross-checking the exact search against the purely
    /// combinatorial test.
    #[test]
    fn ghw_one_iff_alpha_acyclic(h in arb_hypergraph()) {
        use ghd::search::{bb_ghw, BbGhwConfig};
        let exact = bb_ghw(&h, &BbGhwConfig::default());
        prop_assume!(exact.exact);
        prop_assert_eq!(exact.upper_bound == 1, h.is_alpha_acyclic());
    }

    /// DIMACS and hypergraph format round trips are lossless.
    #[test]
    fn io_round_trips(g in arb_graph()) {
        use ghd::hypergraph::io;
        let text = io::write_dimacs(&g);
        let g2 = io::parse_dimacs(&text).unwrap();
        prop_assert_eq!(&g, &g2);
        let h = Hypergraph::from_graph(&g);
        if h.num_edges() > 0 {
            let text = io::write_hypergraph(&h);
            let h2 = io::parse_hypergraph(&text).unwrap();
            prop_assert_eq!(h.num_edges(), h2.num_edges());
        }
    }
}
