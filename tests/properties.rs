//! Property-based tests over the core data structures and the thesis'
//! structural invariants.
//!
//! The offline build has no `proptest`, so cases are drawn by an in-tree
//! generator: every test walks a fixed set of seeds through `ghd-prng`
//! (failures print the offending seed, which reproduces the case exactly).

use ghd::core::bucket::{bucket_elimination, ghd_from_ordering, vertex_elimination};
use ghd::core::eval::TwEvaluator;
use ghd::core::lnf::{leaf_normal_form, ordering_from_lnf, verify_lnf};
use ghd::core::setcover::{exact_cover, greedy_cover};
use ghd::core::{CoverMethod, EliminationOrdering};
use ghd::hypergraph::{BitSet, Graph, Hypergraph};
use ghd_prng::rngs::StdRng;
use ghd_prng::RngExt;
use std::collections::BTreeSet;

/// An arbitrary graph on `n ∈ 2..=12` vertices (duplicate pairs and
/// self-loops included, exercising `from_edges` normalisation).
fn arb_graph(rng: &mut StdRng) -> Graph {
    let n = rng.random_range(2..=12usize);
    let max_edges = n * (n - 1) / 2;
    let m = rng.random_range(0..=max_edges);
    let pairs: Vec<(usize, usize)> = (0..m)
        .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
        .collect();
    Graph::from_edges(n, pairs)
}

/// An arbitrary hypergraph on `n ∈ 3..=10` vertices whose edges cover all
/// vertices (constraint hypergraphs always do).
fn arb_hypergraph(rng: &mut StdRng) -> Hypergraph {
    let n = rng.random_range(3..=10usize);
    let k = rng.random_range(1..=8usize);
    let mut edges: Vec<Vec<usize>> = (0..k)
        .map(|_| {
            let size = rng.random_range(1..=4usize).min(n);
            let mut set = BTreeSet::new();
            while set.len() < size {
                set.insert(rng.random_range(0..n));
            }
            set.into_iter().collect()
        })
        .collect();
    // cover stragglers so every vertex is constrained
    let covered: BTreeSet<usize> = edges.iter().flatten().copied().collect();
    for v in 0..n {
        if !covered.contains(&v) {
            edges.push(vec![v]);
        }
    }
    Hypergraph::from_edges(n, edges)
}

/// BitSet behaves exactly like a BTreeSet under a random op sequence.
#[test]
fn bitset_models_btreeset() {
    for seed in 0..50u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bs = BitSet::new(64);
        let mut model = BTreeSet::new();
        for _ in 0..200 {
            let v = rng.random_range(0..64usize);
            match rng.random_range(0..3u32) {
                0 => assert_eq!(bs.insert(v), model.insert(v), "seed {seed}"),
                1 => assert_eq!(bs.remove(v), model.remove(&v), "seed {seed}"),
                _ => assert_eq!(bs.contains(v), model.contains(&v), "seed {seed}"),
            }
        }
        assert_eq!(bs.to_vec(), model.into_iter().collect::<Vec<_>>(), "seed {seed}");
    }
}

/// Any ordering of any graph yields a valid tree decomposition, and the
/// fast evaluator (Fig 6.2) computes exactly its width.
#[test]
fn any_ordering_yields_valid_td_with_matching_width() {
    for seed in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = arb_graph(&mut rng);
        let sigma = EliminationOrdering::random(g.num_vertices(), &mut rng);
        let td = vertex_elimination(&g, &sigma);
        assert!(td.verify_graph(&g).is_ok(), "seed {seed}");
        let w = TwEvaluator::new(&g).width(&sigma);
        assert_eq!(w, td.width(), "seed {seed}");
    }
}

/// Bucket elimination on `H` and vertex elimination on `G*(H)` produce
/// identical decompositions (Definition 16's note).
#[test]
fn bucket_equals_vertex_elimination() {
    for seed in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = arb_hypergraph(&mut rng);
        let sigma = EliminationOrdering::random(h.num_vertices(), &mut rng);
        let a = bucket_elimination(&h, &sigma);
        let b = vertex_elimination(&h.primal_graph(), &sigma);
        assert_eq!(a.num_nodes(), b.num_nodes(), "seed {seed}");
        for p in a.nodes() {
            assert_eq!(a.bag(p), b.bag(p), "seed {seed}");
        }
    }
}

/// Exact set cover is never larger than greedy and both actually cover.
#[test]
fn exact_cover_dominates_greedy() {
    for seed in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = arb_hypergraph(&mut rng);
        let n = h.num_vertices();
        let target = BitSet::from_iter(n, (0..n).filter(|_| rng.random_bool(0.5)));
        let g = greedy_cover::<StdRng>(&target, &h, None);
        let x = exact_cover(&target, &h);
        assert!(x.len() <= g.len(), "seed {seed}");
        for chosen in [&g, &x] {
            let mut covered = BitSet::new(n);
            for &e in chosen.iter() {
                covered.union_with(h.edge(e));
            }
            assert!(target.is_subset(&covered), "seed {seed}");
        }
    }
}

/// Theorem 1 + Lemma 13 + Theorem 2, propertised: transforming any
/// elimination-derived GHD through the leaf normal form and re-deriving
/// an ordering never increases the exact-cover width.
#[test]
fn lnf_round_trip_never_increases_width() {
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = arb_hypergraph(&mut rng);
        let sigma = EliminationOrdering::random(h.num_vertices(), &mut rng);
        let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
        let lnf = leaf_normal_form(&h, ghd.tree());
        assert!(verify_lnf(&h, &lnf), "seed {seed}");
        assert!(lnf.td.verify(&h).is_ok(), "seed {seed}");
        let sigma2 = ordering_from_lnf(&h, &lnf);
        let rebuilt = ghd_from_ordering(&h, &sigma2, CoverMethod::Exact);
        assert!(rebuilt.verify(&h).is_ok(), "seed {seed}");
        assert!(rebuilt.width() <= ghd.width(), "seed {seed}");
    }
}

/// GHDs from any ordering are valid and completable without width growth
/// (Lemma 2).
#[test]
fn completion_preserves_width() {
    for seed in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = arb_hypergraph(&mut rng);
        let sigma = EliminationOrdering::random(h.num_vertices(), &mut rng);
        let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Greedy);
        assert!(ghd.verify(&h).is_ok(), "seed {seed}");
        let w = ghd.width();
        let complete = ghd.complete(&h);
        assert!(complete.is_complete(&h), "seed {seed}");
        assert!(complete.verify(&h).is_ok(), "seed {seed}");
        assert_eq!(complete.width(), w.max(1), "seed {seed}");
    }
}

/// All GA crossover operators produce permutations; all mutation operators
/// preserve them (fuzzed beyond the unit tests' sizes).
#[test]
fn ga_operators_preserve_permutations() {
    use ghd::ga::{CrossoverOp, MutationOp};
    use ghd_prng::seq::SliceRandom;
    for seed in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(2..40usize);
        let mut p1: Vec<usize> = (0..n).collect();
        p1.shuffle(&mut rng);
        let p2: Vec<usize> = (0..n).rev().collect();
        let check = |p: &[usize]| {
            let mut s = p.to_vec();
            s.sort_unstable();
            s == (0..n).collect::<Vec<_>>()
        };
        for op in CrossoverOp::ALL {
            assert!(check(&op.apply(&p1, &p2, &mut rng)), "seed {seed} {}", op.name());
        }
        for op in MutationOp::ALL {
            let mut q = p1.clone();
            op.apply(&mut q, &mut rng);
            assert!(check(&q), "seed {seed} {}", op.name());
        }
    }
}

/// Lower bounds never exceed the width of any concrete ordering.
#[test]
fn lower_bounds_are_sound() {
    use ghd::bounds::{tw_lower_bound, tw_upper_bound};
    for seed in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = arb_graph(&mut rng);
        let lb = tw_lower_bound::<StdRng>(&g, None);
        let (ub, _) = tw_upper_bound::<StdRng>(&g, None);
        assert!(lb <= ub, "seed {seed}");
        let sigma = EliminationOrdering::random(g.num_vertices(), &mut rng);
        let w = TwEvaluator::new(&g).width(&sigma);
        assert!(lb <= w, "seed {seed}");
    }
}

/// `ghw(H) = 1` iff `H` is α-acyclic (GYO reduction) — the classical
/// characterisation, cross-checking the exact search against the purely
/// combinatorial test.
#[test]
fn ghw_one_iff_alpha_acyclic() {
    use ghd::search::{bb_ghw, BbGhwConfig};
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = arb_hypergraph(&mut rng);
        let exact = bb_ghw(&h, &BbGhwConfig::default());
        if !exact.exact {
            continue; // budget-degraded case: no claim to check
        }
        assert_eq!(exact.upper_bound == 1, h.is_alpha_acyclic(), "seed {seed}");
    }
}

/// DIMACS and hypergraph format round trips are lossless.
#[test]
fn io_round_trips() {
    use ghd::hypergraph::io;
    for seed in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = arb_graph(&mut rng);
        let text = io::write_dimacs(&g);
        let g2 = io::parse_dimacs(&text).unwrap();
        assert_eq!(&g, &g2, "seed {seed}");
        let h = Hypergraph::from_graph(&g);
        if h.num_edges() > 0 {
            let text = io::write_hypergraph(&h);
            let h2 = io::parse_hypergraph(&text).unwrap();
            assert_eq!(h.num_edges(), h2.num_edges(), "seed {seed}");
        }
    }
}
