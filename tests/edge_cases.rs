//! Failure-injection and degenerate-input tests across the public API:
//! every structure validator must reject what it should, and every
//! algorithm must behave sensibly on trivial or pathological instances.

use ghd::core::bucket::{bucket_elimination, ghd_from_ordering};
use ghd::core::{
    CoverMethod, DecompositionError, EliminationOrdering, GeneralizedHypertreeDecomposition,
    TreeDecomposition,
};
use ghd::hypergraph::{BitSet, Graph, Hypergraph};
use ghd::search::{astar_ghw, astar_tw, bb_ghw, bb_tw, BbConfig, BbGhwConfig, SearchLimits};

#[test]
fn single_vertex_and_single_edge_hypergraphs() {
    // one vertex, one unary edge: ghw = 1, tw = 0
    let h = Hypergraph::from_edges(1, [vec![0]]);
    let r = bb_ghw(&h, &BbGhwConfig::default());
    assert!(r.exact);
    assert_eq!(r.upper_bound, 1);
    let t = astar_tw(&h.primal_graph(), SearchLimits::unlimited());
    assert_eq!(t.width(), Some(0));

    // a hyperedge covering the whole vertex set: ghw = 1 regardless of size
    let h = Hypergraph::from_edges(8, [vec![0, 1, 2, 3, 4, 5, 6, 7], vec![1, 3], vec![2, 6]]);
    let r = astar_ghw(&h, SearchLimits::unlimited());
    assert_eq!(r.width(), Some(1));
}

#[test]
fn duplicate_hyperedges_are_harmless() {
    let h = Hypergraph::from_edges(4, [vec![0, 1, 2], vec![0, 1, 2], vec![2, 3]]);
    let r = bb_ghw(&h, &BbGhwConfig::default());
    assert!(r.exact);
    assert_eq!(r.upper_bound, 1); // still acyclic
    let sigma = EliminationOrdering::identity(4);
    let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
    ghd.verify(&h).unwrap();
}

#[test]
fn empty_graph_families() {
    let g = Graph::new(3); // no edges at all
    let r = bb_tw(&g, &BbConfig::default());
    assert_eq!(r.width(), Some(0));
    let a = astar_tw(&g, SearchLimits::unlimited());
    assert_eq!(a.width(), Some(0));
}

#[test]
fn ghd_validator_rejects_wrong_lambda() {
    let h = Hypergraph::from_edges(4, [vec![0, 1], vec![1, 2], vec![2, 3]]);
    let td = TreeDecomposition::single_bag(4, BitSet::full(4));
    // λ misses vertex 3
    let bad = GeneralizedHypertreeDecomposition::new(td, vec![vec![0, 1]]);
    assert_eq!(
        bad.verify(&h),
        Err(DecompositionError::ChiNotCovered { node: 0 })
    );
}

#[test]
fn td_validator_rejects_size_mismatch() {
    let h = Hypergraph::from_edges(2, [vec![0, 1]]);
    let mut td = TreeDecomposition::new(3); // built for 3 vertices, h has 2
    td.add_root(BitSet::from_iter(3, [0, 1]));
    assert_eq!(td.verify(&h), Err(DecompositionError::SizeMismatch));
}

#[test]
fn bucket_elimination_on_all_orderings_of_a_triangle() {
    // every one of the 6 orderings of K3 yields the same single-clique
    // decomposition of width 2
    let h = Hypergraph::from_edges(3, [vec![0, 1], vec![1, 2], vec![0, 2]]);
    let perms: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    for p in perms {
        let sigma = EliminationOrdering::new(p.to_vec()).unwrap();
        let td = bucket_elimination(&h, &sigma);
        td.verify(&h).unwrap();
        assert_eq!(td.width(), 2, "{p:?}");
    }
}

#[test]
fn search_limits_zero_nodes_still_reports_sound_bounds() {
    let h = ghd::hypergraph::generators::hypergraphs::random_hypergraph(10, 7, 3, 3);
    let r = bb_ghw(
        &h,
        &BbGhwConfig {
            limits: SearchLimits::with_nodes(0),
            ..BbGhwConfig::default()
        },
    );
    assert!(r.lower_bound <= r.upper_bound);
    let exact = bb_ghw(&h, &BbGhwConfig::default());
    assert!(exact.exact);
    assert!(r.lower_bound <= exact.upper_bound);
    assert!(r.upper_bound >= exact.upper_bound);
}

#[test]
fn disconnected_hypergraph_end_to_end() {
    // two independent components; decomposition must still be one tree and
    // the exact ghw is the max of the components' widths
    let mut edges = vec![vec![0, 1], vec![1, 2], vec![0, 2]]; // triangle: ghw 2
    edges.push(vec![3, 4]); // isolated edge: ghw 1
    let h = Hypergraph::from_edges(5, edges);
    let r = astar_ghw(&h, SearchLimits::unlimited());
    assert_eq!(r.width(), Some(2));
    let sigma = EliminationOrdering::identity(5);
    let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
    ghd.verify(&h).unwrap();
}

#[test]
fn evaluators_accept_repeated_and_reversed_orderings() {
    use ghd::core::eval::TwEvaluator;
    let g = ghd::hypergraph::generators::graphs::queen(4);
    let mut eval = TwEvaluator::new(&g);
    let fwd = EliminationOrdering::identity(16);
    let rev = EliminationOrdering::new((0..16).rev().collect()).unwrap();
    let a = eval.width(&fwd);
    let b = eval.width(&rev);
    let a2 = eval.width(&fwd);
    assert_eq!(a, a2, "evaluator state leaks between runs");
    assert!(a >= 1 && b >= 1);
}

#[test]
fn ordering_rejects_and_accepts_properly() {
    assert!(EliminationOrdering::new(vec![1, 1, 0]).is_none());
    assert!(EliminationOrdering::new(vec![0, 1, 3]).is_none());
    let o = EliminationOrdering::new(vec![]).unwrap();
    assert_eq!(o.len(), 0);
    // empty hypergraph + empty ordering round trip
    let h = Hypergraph::new(0);
    let td = bucket_elimination(&h, &o);
    assert_eq!(td.num_nodes(), 0);
}
