//! Fault-containment integration tests: with a deterministic fault injected
//! into one of the root-split workers, the parallel searches must return
//! the *same width* as the sequential search, report the fault through
//! `SearchResult::faults` / `SearchStats::faults`, and keep respecting the
//! global node/time budget. With injection disabled, results are
//! bit-identical to a clean run (the containment wrapper is behaviourally
//! free).
//!
//! All tests here install a `FaultPlan` (possibly empty); installation
//! holds a process-wide scope lock, so the tests serialise instead of
//! observing each other's injected faults.

use ghd::core::bucket::ghd_from_ordering;
use ghd::core::eval::TwEvaluator;
use ghd::core::{CoverMethod, EliminationOrdering};
use ghd::ga::{saiga_ghw, SaigaConfig};
use ghd::hypergraph::generators::{graphs, hypergraphs};
use ghd::par::fault::{self, FaultPlan};
use ghd::search::{
    bb_ghw, bb_ghw_parallel, bb_tw, bb_tw_parallel, BbConfig, BbGhwConfig, SearchLimits,
};

#[test]
fn bb_tw_parallel_survives_a_killed_worker_width_identical() {
    for g in [graphs::queen(4), graphs::gnm_random(14, 40, 3)] {
        let seq = {
            let _clean = fault::install(FaultPlan::new());
            bb_tw(&g, &BbConfig::default())
        };
        assert!(seq.exact);
        for threads in [2, 4] {
            // kill the first root-split task once; the retry explores it
            let scope = fault::install(FaultPlan::new().kill_task(0));
            let par = bb_tw_parallel(&g, &BbConfig::default(), threads);
            assert_eq!(scope.fired(), 1, "threads {threads}: fault did not fire");
            drop(scope);
            assert!(par.exact, "threads {threads}: lost exactness");
            assert_eq!(par.upper_bound, seq.upper_bound, "threads {threads}");
            assert_eq!(par.faults.len(), 1, "threads {threads}");
            assert_eq!(par.faults[0].task, 0);
            assert!(par.faults[0].payload.contains("injected fault"));
            // the returned ordering still realises the width
            let sigma = EliminationOrdering::new(par.ordering.unwrap()).unwrap();
            assert_eq!(TwEvaluator::new(&g).width(&sigma), par.upper_bound);
        }
    }
}

#[test]
fn bb_ghw_parallel_survives_a_killed_worker_width_identical() {
    // grid2d(5) fans out to several root children (no forced simplicial
    // reduction at the root), so task index 1 exists and the kill fires
    let h = hypergraphs::grid2d(5);
    let seq = {
        let _clean = fault::install(FaultPlan::new());
        bb_ghw(&h, &BbGhwConfig::default())
    };
    assert!(seq.exact);
    for threads in [2, 4] {
        let scope = fault::install(FaultPlan::new().kill_task(1));
        let par = bb_ghw_parallel(&h, &BbGhwConfig::default(), threads);
        assert_eq!(scope.fired(), 1, "threads {threads}: fault did not fire");
        drop(scope);
        assert!(par.exact, "threads {threads}");
        assert_eq!(par.upper_bound, seq.upper_bound, "threads {threads}");
        assert_eq!(par.faults.len(), 1);
        assert_eq!(par.faults[0].task, 1);
        // certificate: the ordering yields a verifying GHD of that width
        let sigma = EliminationOrdering::new(par.ordering.unwrap()).unwrap();
        let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
        assert!(ghd.verify(&h).is_ok());
        assert_eq!(ghd.width(), par.upper_bound);
    }
}

#[test]
fn faults_are_reported_in_stats_and_budget_is_respected() {
    let h = hypergraphs::random_circuit(20, 22, 7);
    let cap = 10_000u64;
    for threads in [2, 4] {
        let _scope = fault::install(FaultPlan::new().kill_task(0));
        let cfg = BbGhwConfig {
            limits: SearchLimits::with_nodes(cap).stats(true),
            ..BbGhwConfig::default()
        };
        let r = bb_ghw_parallel(&h, &cfg, threads);
        let stats = r.stats.expect("stats requested");
        assert_eq!(stats.faults, r.faults, "threads {threads}");
        assert_eq!(r.faults.len(), 1, "threads {threads}");
        assert!(
            r.nodes_expanded <= cap,
            "threads {threads}: global node budget overrun ({} > {cap})",
            r.nodes_expanded
        );
        assert!(r.lower_bound <= r.upper_bound);
    }
}

#[test]
fn injection_disabled_results_are_bit_identical() {
    // the containment machinery itself must be behaviourally free
    let g = graphs::grid(4);
    let h = hypergraphs::random_circuit(20, 22, 7);
    let _clean = fault::install(FaultPlan::new());
    for threads in [1, 2, 4] {
        let a = bb_tw_parallel(&g, &BbConfig::default(), threads);
        let b = bb_tw_parallel(&g, &BbConfig::default(), threads);
        assert_eq!(a.upper_bound, b.upper_bound);
        assert_eq!(a.ordering, b.ordering, "tw threads {threads}");
        assert!(a.faults.is_empty() && b.faults.is_empty());
        let a = bb_ghw_parallel(&h, &BbGhwConfig::default(), threads);
        let b = bb_ghw_parallel(&h, &BbGhwConfig::default(), threads);
        assert_eq!(a.upper_bound, b.upper_bound);
        assert_eq!(a.ordering, b.ordering, "ghw threads {threads}");
        assert!(a.faults.is_empty() && b.faults.is_empty());
    }
}

#[test]
fn injected_delays_leave_parallel_results_unchanged() {
    let h = hypergraphs::random_circuit(20, 22, 7);
    let clean = {
        let _scope = fault::install(FaultPlan::new());
        bb_ghw_parallel(&h, &BbGhwConfig::default(), 4)
    };
    let _scope = fault::install(FaultPlan::new().delay(0xD5, 300));
    let jittered = bb_ghw_parallel(&h, &BbGhwConfig::default(), 4);
    assert!(jittered.faults.is_empty());
    assert_eq!(jittered.upper_bound, clean.upper_bound);
    assert_eq!(jittered.ordering, clean.ordering);
}

#[test]
fn saiga_survives_a_killed_island_epoch() {
    let h = hypergraphs::clique(6);
    let clean = {
        let _scope = fault::install(FaultPlan::new());
        saiga_ghw(&h, &SaigaConfig::small(11))
    };
    assert!(clean.faults.is_empty());
    for threads in [1, 2, 4] {
        let cfg = SaigaConfig {
            threads,
            ..SaigaConfig::small(11)
        };
        let _scope = fault::install(FaultPlan::new().kill_task(1));
        let r = saiga_ghw(&h, &cfg);
        assert_eq!(r.faults.len(), 1, "threads {threads}");
        assert_eq!(r.faults[0].task, 1, "island index is the task index");
        // the run still produced a valid ordering achieving a sound width
        let sigma = EliminationOrdering::new(r.result.best_ordering.clone()).unwrap();
        let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
        assert!(ghd.verify(&h).is_ok(), "threads {threads}");
        assert_eq!(ghd.width(), r.result.best_width, "threads {threads}");
        // clique(6) has ghw 3; any elimination-based ordering stays >= that
        assert!(r.result.best_width >= clean.result.best_width.min(3));
    }
}
