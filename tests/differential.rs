//! Differential tests between the exact solvers: on seeded random batches
//! the A\* searches and the branch-and-bound searches must agree on the
//! optimum width — they explore the same elimination-ordering space with
//! the same cost functions, so any divergence is a bug in one of them.

use ghd::core::bucket::ghd_from_ordering;
use ghd::core::eval::TwEvaluator;
use ghd::core::{CoverMethod, EliminationOrdering};
use ghd::hypergraph::generators::{graphs, hypergraphs};
use ghd::search::{astar_ghw, astar_tw, bb_ghw, bb_tw, BbConfig, BbGhwConfig, SearchLimits};

#[test]
fn astar_tw_and_bb_tw_agree_on_random_graphs() {
    for seed in 0..12u64 {
        let g = graphs::gnm_random(15, 40, seed);
        let a = astar_tw(&g, SearchLimits::unlimited());
        let b = bb_tw(&g, &BbConfig::default());
        assert!(a.exact, "A*-tw incomplete on seed {seed}");
        assert!(b.exact, "BB-tw incomplete on seed {seed}");
        assert_eq!(a.upper_bound, b.upper_bound, "seed {seed}");
        // both orderings must realise the common optimum
        for (name, r) in [("astar", &a), ("bb", &b)] {
            let sigma = EliminationOrdering::new(r.ordering.clone().unwrap()).unwrap();
            let w = TwEvaluator::new(&g).width(&sigma);
            assert_eq!(w, a.upper_bound, "{name} witness, seed {seed}");
        }
    }
}

#[test]
fn astar_tw_and_bb_tw_agree_on_sparse_and_dense_batches() {
    for (n, m) in [(14usize, 20usize), (13, 55), (16, 32)] {
        for seed in 0..4u64 {
            let g = graphs::gnm_random(n, m, 1000 + seed);
            let a = astar_tw(&g, SearchLimits::unlimited());
            let b = bb_tw(&g, &BbConfig::default());
            assert!(a.exact && b.exact, "n={n} m={m} seed {seed}");
            assert_eq!(a.upper_bound, b.upper_bound, "n={n} m={m} seed {seed}");
        }
    }
}

#[test]
fn astar_ghw_and_bb_ghw_agree_on_random_hypergraphs() {
    for seed in 0..12u64 {
        let h = hypergraphs::random_hypergraph(12, 8, 3, seed);
        let a = astar_ghw(&h, SearchLimits::unlimited());
        let b = bb_ghw(&h, &BbGhwConfig::default());
        assert!(a.exact, "A*-ghw incomplete on seed {seed}");
        assert!(b.exact, "BB-ghw incomplete on seed {seed}");
        assert_eq!(a.upper_bound, b.upper_bound, "seed {seed}");
        for (name, r) in [("astar", &a), ("bb", &b)] {
            let sigma = EliminationOrdering::new(r.ordering.clone().unwrap()).unwrap();
            let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
            ghd.verify(&h).unwrap();
            assert_eq!(ghd.width(), a.upper_bound, "{name} witness, seed {seed}");
        }
    }
}

#[test]
fn astar_ghw_and_bb_ghw_agree_on_wider_arity_batches() {
    for (n, m, arity) in [(11usize, 6usize, 4usize), (13, 9, 3), (10, 10, 5)] {
        for seed in 0..4u64 {
            let h = hypergraphs::random_hypergraph(n, m, arity, 2000 + seed);
            let a = astar_ghw(&h, SearchLimits::unlimited());
            let b = bb_ghw(&h, &BbGhwConfig::default());
            assert!(a.exact && b.exact, "n={n} m={m} arity={arity} seed {seed}");
            assert_eq!(
                a.upper_bound, b.upper_bound,
                "n={n} m={m} arity={arity} seed {seed}"
            );
        }
    }
}

#[test]
fn structured_families_agree_across_all_four_solvers() {
    // grids: tw known, ghw solvers compared on the 2d grid hypergraph
    for n in 3..=4usize {
        let g = graphs::grid(n);
        let a = astar_tw(&g, SearchLimits::unlimited());
        let b = bb_tw(&g, &BbConfig::default());
        assert!(a.exact && b.exact);
        assert_eq!(a.upper_bound, n, "grid{n}");
        assert_eq!(b.upper_bound, n, "grid{n}");
    }
    for n in 4..=5usize {
        let h = hypergraphs::grid2d(n);
        let a = astar_ghw(&h, SearchLimits::unlimited());
        let b = bb_ghw(&h, &BbGhwConfig::default());
        assert!(a.exact && b.exact, "grid2d_{n}");
        assert_eq!(a.upper_bound, b.upper_bound, "grid2d_{n}");
    }
}
