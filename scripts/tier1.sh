#!/usr/bin/env sh
# Tier-1 gate: offline build, full test suite (plus an assertions-on
# release pass for the search crates), workspace-wide lint, the parser
# fuzz smoke gate, and the two self-asserting benches (search cover cache,
# CSP relation engine). Run from anywhere; exits non-zero on the first
# failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --offline --release --workspace

echo "==> cargo test (offline)"
cargo test --offline -q --workspace

echo "==> cargo test (search crates, release optimisation + debug assertions)"
cargo test --offline -q --profile relassert -p ghd-par -p ghd-search -p ghd-ga -p ghd-serve

echo "==> clippy -D warnings (whole workspace, all targets)"
cargo clippy --offline -q --workspace --all-targets -- -D warnings

echo "==> thread-sweep determinism (widths and orderings equal across --threads 1/2/4)"
GHD="target/release/ghd"
SWEEP_DIR="$(mktemp -d)"
trap 'rm -rf "$SWEEP_DIR"' EXIT
"$GHD" gen grid2d-h 6 > "$SWEEP_DIR/h.hg"
"$GHD" gen queen 4 > "$SWEEP_DIR/g.col"
"$GHD" ghw "$SWEEP_DIR/h.hg" --method bb --time 0 > "$SWEEP_DIR/ghw_seq.txt"
"$GHD" tw "$SWEEP_DIR/g.col" --method bb --time 0 > "$SWEEP_DIR/tw_seq.txt"
for T in 1 2 4; do
    "$GHD" ghw "$SWEEP_DIR/h.hg" --method bb --time 0 --threads "$T" > "$SWEEP_DIR/ghw_t$T.txt"
    cmp -s "$SWEEP_DIR/ghw_seq.txt" "$SWEEP_DIR/ghw_t$T.txt" || {
        echo "ghw --threads $T diverged from the sequential output:" >&2
        diff "$SWEEP_DIR/ghw_seq.txt" "$SWEEP_DIR/ghw_t$T.txt" >&2 || true
        exit 1
    }
    "$GHD" tw "$SWEEP_DIR/g.col" --method bb --time 0 --threads "$T" > "$SWEEP_DIR/tw_t$T.txt"
    cmp -s "$SWEEP_DIR/tw_seq.txt" "$SWEEP_DIR/tw_t$T.txt" || {
        echo "tw --threads $T diverged from the sequential output:" >&2
        diff "$SWEEP_DIR/tw_seq.txt" "$SWEEP_DIR/tw_t$T.txt" >&2 || true
        exit 1
    }
done
# safe-separator splitting is on by default for --method bb; turning it
# off must not change a byte of the output
"$GHD" tw "$SWEEP_DIR/g.col" --method bb --time 0 --no-split > "$SWEEP_DIR/tw_nosplit.txt"
cmp -s "$SWEEP_DIR/tw_seq.txt" "$SWEEP_DIR/tw_nosplit.txt" || {
    echo "tw --no-split diverged from the default split output:" >&2
    diff "$SWEEP_DIR/tw_seq.txt" "$SWEEP_DIR/tw_nosplit.txt" >&2 || true
    exit 1
}
"$GHD" ghw "$SWEEP_DIR/h.hg" --method bb --time 0 --no-split > "$SWEEP_DIR/ghw_nosplit.txt"
cmp -s "$SWEEP_DIR/ghw_seq.txt" "$SWEEP_DIR/ghw_nosplit.txt" || {
    echo "ghw --no-split diverged from the default split output:" >&2
    diff "$SWEEP_DIR/ghw_seq.txt" "$SWEEP_DIR/ghw_nosplit.txt" >&2 || true
    exit 1
}

echo "==> serve smoke (unix-socket daemon: concurrent submits == one-shot, warm hits, clean drain)"
SOCK="$SWEEP_DIR/ghd.sock"
"$GHD" serve "unix:$SOCK" --workers 2 --queue 16 > "$SWEEP_DIR/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true; rm -rf "$SWEEP_DIR"' EXIT
TRIES=0
while [ ! -S "$SOCK" ]; do
    TRIES=$((TRIES + 1))
    [ "$TRIES" -le 50 ] || {
        echo "daemon never bound $SOCK:" >&2
        cat "$SWEEP_DIR/serve.log" >&2
        exit 1
    }
    sleep 0.1
done
[ "$("$GHD" submit "unix:$SOCK" ping)" = "pong" ]
# concurrent cold submits, diffed against the one-shot outputs above
"$GHD" submit "unix:$SOCK" ghw "$SWEEP_DIR/h.hg" --method bb --time 0 > "$SWEEP_DIR/srv_ghw.txt" &
GHW_PID=$!
"$GHD" submit "unix:$SOCK" tw "$SWEEP_DIR/g.col" --method bb --time 0 > "$SWEEP_DIR/srv_tw.txt" &
TW_PID=$!
wait "$GHW_PID"
wait "$TW_PID"
cmp -s "$SWEEP_DIR/ghw_seq.txt" "$SWEEP_DIR/srv_ghw.txt" || {
    echo "daemon ghw answer diverged from the one-shot CLI:" >&2
    diff "$SWEEP_DIR/ghw_seq.txt" "$SWEEP_DIR/srv_ghw.txt" >&2 || true
    exit 1
}
cmp -s "$SWEEP_DIR/tw_seq.txt" "$SWEEP_DIR/srv_tw.txt" || {
    echo "daemon tw answer diverged from the one-shot CLI:" >&2
    diff "$SWEEP_DIR/tw_seq.txt" "$SWEEP_DIR/srv_tw.txt" >&2 || true
    exit 1
}
# warm re-submits must come from the canonical cache
"$GHD" submit "unix:$SOCK" ghw "$SWEEP_DIR/h.hg" --method bb --time 0 > "$SWEEP_DIR/srv_ghw2.txt"
cmp -s "$SWEEP_DIR/ghw_seq.txt" "$SWEEP_DIR/srv_ghw2.txt"
# batch manifest over one connection: both instances are warm by now, so
# the batch must report two ok lines, two cache hits, zero failures
printf 'ghw %s --method bb --time 0\n# comment\n\ntw %s --method bb --time 0\n' \
    "$SWEEP_DIR/h.hg" "$SWEEP_DIR/g.col" > "$SWEEP_DIR/batch.txt"
"$GHD" submit "unix:$SOCK" --manifest "$SWEEP_DIR/batch.txt" > "$SWEEP_DIR/manifest.out"
grep -q "manifest: 2 instance(s) — 2 ok (2 cache hit(s), 2 exact), 0 failed" \
    "$SWEEP_DIR/manifest.out" || {
    echo "manifest batch summary is wrong:" >&2
    cat "$SWEEP_DIR/manifest.out" >&2
    exit 1
}
"$GHD" submit "unix:$SOCK" stats > "$SWEEP_DIR/serve_stats.json"
grep -q '"hits": [1-9]' "$SWEEP_DIR/serve_stats.json" || {
    echo "warm re-submit did not register a cache hit:" >&2
    cat "$SWEEP_DIR/serve_stats.json" >&2
    exit 1
}
"$GHD" submit "unix:$SOCK" shutdown > /dev/null
wait "$SERVE_PID"
trap 'rm -rf "$SWEEP_DIR"' EXIT
grep -q "drained clean" "$SWEEP_DIR/serve.log" || {
    echo "daemon did not drain clean:" >&2
    cat "$SWEEP_DIR/serve.log" >&2
    exit 1
}
[ ! -e "$SOCK" ] || { echo "stale socket left behind: $SOCK" >&2; exit 1; }

echo "==> crash recovery (kill -9 a logged daemon, restart on the same log: warm replays, corrupt tail dropped)"
CACHELOG="$SWEEP_DIR/cache.log"
SOCK1="$SWEEP_DIR/ghd-crash.sock"
"$GHD" serve "unix:$SOCK1" --workers 2 --log "$CACHELOG" > "$SWEEP_DIR/serve_crash1.log" 2>&1 &
CRASH_PID=$!
trap 'kill -9 "$CRASH_PID" 2>/dev/null || true; rm -rf "$SWEEP_DIR"' EXIT
TRIES=0
while [ ! -S "$SOCK1" ]; do
    TRIES=$((TRIES + 1))
    [ "$TRIES" -le 50 ] || { cat "$SWEEP_DIR/serve_crash1.log" >&2; exit 1; }
    sleep 0.1
done
# warm the cache: two exact answers, each append is one write() so the
# records are in the page cache the moment the submit returns
"$GHD" submit "unix:$SOCK1" ghw "$SWEEP_DIR/h.hg" --method bb --time 0 > /dev/null
"$GHD" submit "unix:$SOCK1" tw "$SWEEP_DIR/g.col" --method bb --time 0 > /dev/null
# crash hard — no drain, no fsync, stale socket file left behind
kill -9 "$CRASH_PID"
wait "$CRASH_PID" 2>/dev/null || true
# simulate the torn append a crash mid-write leaves: a valid version
# byte followed by garbage
printf '\001\377\377\377\023' >> "$CACHELOG"
SOCK2="$SWEEP_DIR/ghd-recover.sock"
"$GHD" serve "unix:$SOCK2" --workers 2 --log "$CACHELOG" > "$SWEEP_DIR/serve_crash2.log" 2>&1 &
RECOVER_PID=$!
trap 'kill "$RECOVER_PID" 2>/dev/null || true; rm -rf "$SWEEP_DIR"' EXIT
TRIES=0
while [ ! -S "$SOCK2" ]; do
    TRIES=$((TRIES + 1))
    [ "$TRIES" -le 50 ] || { cat "$SWEEP_DIR/serve_crash2.log" >&2; exit 1; }
    sleep 0.1
done
# every verified record replays; the garbage tail is dropped and logged
grep -q "cache-log replayed 2 entries (0 rejected by verification)" "$SWEEP_DIR/serve_crash2.log" || {
    echo "boot replay did not admit both records:" >&2
    cat "$SWEEP_DIR/serve_crash2.log" >&2
    exit 1
}
grep -q "cache-log corrupt tail dropped" "$SWEEP_DIR/serve_crash2.log" || {
    echo "corrupt tail was not detected/logged:" >&2
    cat "$SWEEP_DIR/serve_crash2.log" >&2
    exit 1
}
# warm answers come from the replayed cache (byte-identical, zero solves)
"$GHD" submit "unix:$SOCK2" ghw "$SWEEP_DIR/h.hg" --method bb --time 0 > "$SWEEP_DIR/srv_ghw3.txt"
cmp -s "$SWEEP_DIR/ghw_seq.txt" "$SWEEP_DIR/srv_ghw3.txt" || {
    echo "replayed ghw answer diverged from the one-shot CLI:" >&2
    diff "$SWEEP_DIR/ghw_seq.txt" "$SWEEP_DIR/srv_ghw3.txt" >&2 || true
    exit 1
}
"$GHD" submit "unix:$SOCK2" tw "$SWEEP_DIR/g.col" --method bb --time 0 > "$SWEEP_DIR/srv_tw3.txt"
cmp -s "$SWEEP_DIR/tw_seq.txt" "$SWEEP_DIR/srv_tw3.txt"
"$GHD" submit "unix:$SOCK2" stats > "$SWEEP_DIR/serve_stats2.json"
grep -q '"replayed": 2' "$SWEEP_DIR/serve_stats2.json" || {
    echo "stats did not report the boot replay:" >&2
    cat "$SWEEP_DIR/serve_stats2.json" >&2
    exit 1
}
grep -q 'access .* cache=hit' "$SWEEP_DIR/serve_crash2.log" || {
    echo "warm submits after recovery were not cache hits:" >&2
    cat "$SWEEP_DIR/serve_crash2.log" >&2
    exit 1
}
"$GHD" submit "unix:$SOCK2" shutdown > /dev/null
wait "$RECOVER_PID"
trap 'rm -rf "$SWEEP_DIR"' EXIT
grep -q "drained clean" "$SWEEP_DIR/serve_crash2.log"

echo "==> fuzz_inputs (seeded byte mutations across every parser; a panic fails)"
cargo run --offline -q --release -p ghd-bench --bin fuzz_inputs -- --iters 2000 --seed 7

echo "==> bench_smoke (cover cache on/off + A* rows + split sweep, writes BENCH_search.json)"
GHD_BENCH_SAMPLES="${GHD_BENCH_SAMPLES:-3}" \
    cargo run --offline -q --release -p ghd-bench --bin bench_smoke

echo "==> validate BENCH_search.json (schema, certified widths, >25% wall-clock regressions)"
cargo run --offline -q --release -p ghd-bench --bin validate_bench -- \
    BENCH_search.json --baseline results/BENCH_search_baseline.json

echo "==> bench_join (naive vs columnar relation engine, writes BENCH_csp.json)"
cargo run --offline -q --release -p ghd-bench --bin bench_join -- --runs 1

echo "==> bench_serve (in-process daemon: byte-identity + 100% warm hits, writes BENCH_serve.json)"
cargo run --offline -q --release -p ghd-bench --bin bench_serve -- --clients 3

echo "==> tier-1 gate passed"
