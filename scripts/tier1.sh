#!/usr/bin/env sh
# Tier-1 gate: offline build, full test suite, workspace-wide lint, and the
# two self-asserting benches (search cover cache, CSP relation engine). Run
# from anywhere; exits non-zero on the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --offline --release --workspace

echo "==> cargo test (offline)"
cargo test --offline -q --workspace

echo "==> clippy -D warnings (whole workspace, all targets)"
cargo clippy --offline -q --workspace --all-targets -- -D warnings

echo "==> bench_smoke (cover cache on/off, writes BENCH_search.json)"
cargo run --offline -q --release -p ghd-bench --bin bench_smoke

echo "==> validate BENCH_search.json (schema, lb <= ub, non-empty incumbent traces)"
cargo run --offline -q --release -p ghd-bench --bin validate_bench -- BENCH_search.json

echo "==> bench_join (naive vs columnar relation engine, writes BENCH_csp.json)"
cargo run --offline -q --release -p ghd-bench --bin bench_join -- --runs 1

echo "==> tier-1 gate passed"
