#!/usr/bin/env sh
# Tier-1 gate: offline build, full test suite (plus an assertions-on
# release pass for the search crates), workspace-wide lint, the parser
# fuzz smoke gate, and the two self-asserting benches (search cover cache,
# CSP relation engine). Run from anywhere; exits non-zero on the first
# failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --offline --release --workspace

echo "==> cargo test (offline)"
cargo test --offline -q --workspace

echo "==> cargo test (search crates, release optimisation + debug assertions)"
cargo test --offline -q --profile relassert -p ghd-par -p ghd-search -p ghd-ga

echo "==> clippy -D warnings (whole workspace, all targets)"
cargo clippy --offline -q --workspace --all-targets -- -D warnings

echo "==> thread-sweep determinism (widths and orderings equal across --threads 1/2/4)"
GHD="target/release/ghd"
SWEEP_DIR="$(mktemp -d)"
trap 'rm -rf "$SWEEP_DIR"' EXIT
"$GHD" gen grid2d-h 6 > "$SWEEP_DIR/h.hg"
"$GHD" gen queen 4 > "$SWEEP_DIR/g.col"
"$GHD" ghw "$SWEEP_DIR/h.hg" --method bb --time 0 > "$SWEEP_DIR/ghw_seq.txt"
"$GHD" tw "$SWEEP_DIR/g.col" --method bb --time 0 > "$SWEEP_DIR/tw_seq.txt"
for T in 1 2 4; do
    "$GHD" ghw "$SWEEP_DIR/h.hg" --method bb --time 0 --threads "$T" > "$SWEEP_DIR/ghw_t$T.txt"
    cmp -s "$SWEEP_DIR/ghw_seq.txt" "$SWEEP_DIR/ghw_t$T.txt" || {
        echo "ghw --threads $T diverged from the sequential output:" >&2
        diff "$SWEEP_DIR/ghw_seq.txt" "$SWEEP_DIR/ghw_t$T.txt" >&2 || true
        exit 1
    }
    "$GHD" tw "$SWEEP_DIR/g.col" --method bb --time 0 --threads "$T" > "$SWEEP_DIR/tw_t$T.txt"
    cmp -s "$SWEEP_DIR/tw_seq.txt" "$SWEEP_DIR/tw_t$T.txt" || {
        echo "tw --threads $T diverged from the sequential output:" >&2
        diff "$SWEEP_DIR/tw_seq.txt" "$SWEEP_DIR/tw_t$T.txt" >&2 || true
        exit 1
    }
done

echo "==> fuzz_inputs (seeded byte mutations across every parser; a panic fails)"
cargo run --offline -q --release -p ghd-bench --bin fuzz_inputs -- --iters 2000 --seed 7

echo "==> bench_smoke (cover cache on/off + A* rows, writes BENCH_search.json)"
GHD_BENCH_SAMPLES="${GHD_BENCH_SAMPLES:-3}" \
    cargo run --offline -q --release -p ghd-bench --bin bench_smoke

echo "==> validate BENCH_search.json (schema, certified widths, >25% wall-clock regressions)"
cargo run --offline -q --release -p ghd-bench --bin validate_bench -- \
    BENCH_search.json --baseline results/BENCH_search_baseline.json

echo "==> bench_join (naive vs columnar relation engine, writes BENCH_csp.json)"
cargo run --offline -q --release -p ghd-bench --bin bench_join -- --runs 1

echo "==> tier-1 gate passed"
