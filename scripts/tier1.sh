#!/usr/bin/env sh
# Tier-1 gate: offline build, full test suite (plus an assertions-on
# release pass for the search crates), workspace-wide lint, the parser
# fuzz smoke gate, and the two self-asserting benches (search cover cache,
# CSP relation engine). Run from anywhere; exits non-zero on the first
# failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --offline --release --workspace

echo "==> cargo test (offline)"
cargo test --offline -q --workspace

echo "==> cargo test (search crates, release optimisation + debug assertions)"
cargo test --offline -q --profile relassert -p ghd-par -p ghd-search -p ghd-ga

echo "==> clippy -D warnings (whole workspace, all targets)"
cargo clippy --offline -q --workspace --all-targets -- -D warnings

echo "==> fuzz_inputs (seeded byte mutations across every parser; a panic fails)"
cargo run --offline -q --release -p ghd-bench --bin fuzz_inputs -- --iters 2000 --seed 7

echo "==> bench_smoke (cover cache on/off + A* rows, writes BENCH_search.json)"
GHD_BENCH_SAMPLES="${GHD_BENCH_SAMPLES:-3}" \
    cargo run --offline -q --release -p ghd-bench --bin bench_smoke

echo "==> validate BENCH_search.json (schema, certified widths, >25% wall-clock regressions)"
cargo run --offline -q --release -p ghd-bench --bin validate_bench -- \
    BENCH_search.json --baseline results/BENCH_search_baseline.json

echo "==> bench_join (naive vs columnar relation engine, writes BENCH_csp.json)"
cargo run --offline -q --release -p ghd-bench --bin bench_join -- --runs 1

echo "==> tier-1 gate passed"
