#!/usr/bin/env sh
# Tier-1 gate: offline build, full test suite, lint of the new runtime
# crates, and the search smoke bench. Run from anywhere; exits non-zero on
# the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --offline --release --workspace

echo "==> cargo test (offline)"
cargo test --offline -q --workspace

echo "==> clippy -D warnings on ghd-prng / ghd-par"
cargo clippy --offline -q -p ghd-prng -p ghd-par --all-targets -- -D warnings

echo "==> bench_smoke (cover cache on/off, writes BENCH_search.json)"
cargo run --offline -q --release -p ghd-bench --bin bench_smoke

echo "==> tier-1 gate passed"
