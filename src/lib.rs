//! Facade crate re-exporting the full workspace API.
//!
//! * [`hypergraph`] — graphs, hypergraphs, I/O, instance generators.
//! * [`core`] — decompositions, bucket/vertex elimination, set cover,
//!   leaf normal form, decomposition serialisation.
//! * [`csp`] — the CSP substrate and decomposition-based solving.
//! * [`bounds`] — upper/lower bound heuristics.
//! * [`search`] — exact anytime algorithms (BB, A\*) and preprocessing.
//! * [`ga`] — genetic algorithms, the self-adaptive island GA, simulated
//!   annealing.
//! * [`par`] — the fault-contained parallel runtime (scoped fork-join,
//!   `WorkerFault` containment, deterministic fault injection).
//! * [`serve`] — the `ghd-serve` solve daemon: newline-delimited JSON over
//!   Unix/TCP sockets, a fixed worker pool, and a canonical-form keyed
//!   decomposition cache that only admits self-certified exact results.
//!
//! See README.md for a tour and DESIGN.md for the paper mapping.

pub use ghd_bounds as bounds;
pub use ghd_core as core;
pub use ghd_csp as csp;
pub use ghd_ga as ga;
pub use ghd_hypergraph as hypergraph;
pub use ghd_par as par;
pub use ghd_search as search;
pub use ghd_serve as serve;

/// One-stop imports for typical use.
///
/// ```
/// use ghd::prelude::*;
///
/// let h = Hypergraph::from_edges(4, [vec![0, 1, 2], vec![2, 3]]);
/// let r = astar_ghw(&h, SearchLimits::unlimited());
/// assert_eq!(r.width(), Some(1)); // acyclic
/// ```
pub mod prelude {
    pub use ghd_bounds::{ghw_lower_bound, ghw_upper_bound, tw_lower_bound, tw_upper_bound};
    pub use ghd_core::bucket::{bucket_elimination, ghd_from_ordering, vertex_elimination};
    pub use ghd_core::{
        CoverMethod, EliminationOrdering, GeneralizedHypertreeDecomposition, TreeDecomposition,
    };
    pub use ghd_csp::{solve_with_ghd, solve_with_tree_decomposition, Csp, Relation};
    pub use ghd_ga::{ga_ghw, ga_tw, saiga_ghw, GaConfig, SaigaConfig};
    pub use ghd_hypergraph::{BitSet, EliminationGraph, Graph, Hypergraph};
    pub use ghd_search::{
        astar_ghw, astar_tw, bb_ghw, bb_tw, BbConfig, BbGhwConfig, SearchLimits, SearchResult,
        SearchStats,
    };
}
