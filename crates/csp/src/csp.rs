//! Constraint satisfaction problems (Definition 5) with the thesis' running
//! examples, constraint-hypergraph extraction (Definition 7) and a
//! brute-force reference solver for testing.

use crate::relation::{Relation, Value};
use ghd_hypergraph::Hypergraph;

/// A CSP `⟨X, D, C⟩`: `domains[v]` lists the allowed values of variable `v`;
/// each constraint is a [`Relation`].
#[derive(Clone, Debug)]
pub struct Csp {
    domains: Vec<Vec<Value>>,
    constraints: Vec<Relation>,
}

/// A complete assignment: `assignment[v]` is the value of variable `v`.
pub type Assignment = Vec<Value>;

impl Csp {
    /// Creates a CSP with `n` variables sharing the same `domain`.
    pub fn with_uniform_domain(n: usize, domain: Vec<Value>) -> Self {
        Csp {
            domains: vec![domain; n],
            constraints: Vec::new(),
        }
    }

    /// Creates a CSP with explicit per-variable domains.
    pub fn new(domains: Vec<Vec<Value>>) -> Self {
        Csp {
            domains,
            constraints: Vec::new(),
        }
    }

    /// Adds a constraint; returns its index.
    ///
    /// # Panics
    /// Panics if the scope mentions an unknown variable.
    pub fn add_constraint(&mut self, c: Relation) -> usize {
        assert!(
            c.scope().iter().all(|&v| v < self.domains.len()),
            "constraint scope out of range"
        );
        self.constraints.push(c);
        self.constraints.len() - 1
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.domains.len()
    }

    /// The domain of variable `v`.
    pub fn domain(&self, v: usize) -> &[Value] {
        &self.domains[v]
    }

    /// All domains.
    pub fn domains(&self) -> &[Vec<Value>] {
        &self.domains
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Relation] {
        &self.constraints
    }

    /// The constraint hypergraph (Definition 7): one vertex per variable,
    /// one hyperedge per constraint scope.
    pub fn constraint_hypergraph(&self) -> Hypergraph {
        Hypergraph::from_edges(
            self.domains.len(),
            self.constraints.iter().map(|c| c.scope().iter().copied()),
        )
    }

    /// `true` iff `assignment` satisfies every constraint.
    pub fn is_solution(&self, assignment: &Assignment) -> bool {
        assignment.len() == self.domains.len()
            && assignment
                .iter()
                .enumerate()
                .all(|(v, val)| self.domains[v].contains(val))
            && self.constraints.iter().all(|c| {
                c.tuples().any(|t| {
                    c.scope()
                        .iter()
                        .zip(t.iter())
                        .all(|(&v, &tv)| assignment[v] == tv)
                })
            })
    }

    /// Brute-force reference solver (exponential; for tests and tiny
    /// instances only). Returns the first solution in lexicographic
    /// domain-index order.
    pub fn solve_brute_force(&self) -> Option<Assignment> {
        let n = self.domains.len();
        let mut assignment: Vec<Value> = Vec::with_capacity(n);
        self.brute(&mut assignment).then(|| assignment.clone())?;
        Some(assignment)
    }

    fn brute(&self, assignment: &mut Vec<Value>) -> bool {
        let v = assignment.len();
        if v == self.domains.len() {
            return self.is_solution(assignment);
        }
        for i in 0..self.domains[v].len() {
            let val = self.domains[v][i];
            assignment.push(val);
            // prune: check constraints fully inside the assigned prefix
            let ok = self.constraints.iter().all(|c| {
                if c.scope().iter().any(|&x| x >= assignment.len()) {
                    return true;
                }
                c.tuples().any(|t| {
                    c.scope()
                        .iter()
                        .zip(t.iter())
                        .all(|(&x, &tv)| assignment[x] == tv)
                })
            });
            if ok && self.brute(assignment) {
                return true;
            }
            assignment.pop();
        }
        false
    }

    /// Brute-force count of all complete consistent assignments.
    pub fn count_solutions_brute_force(&self) -> u64 {
        fn rec(csp: &Csp, assignment: &mut Vec<Value>) -> u64 {
            let v = assignment.len();
            if v == csp.domains.len() {
                return u64::from(csp.is_solution(assignment));
            }
            let mut total = 0;
            for i in 0..csp.domains[v].len() {
                assignment.push(csp.domains[v][i]);
                total += rec(csp, assignment);
                assignment.pop();
            }
            total
        }
        rec(self, &mut Vec::new())
    }
}

/// Builders for the thesis' running examples.
pub mod examples {
    use super::*;

    /// All ordered pairs of *distinct* values from `0..k` — the "different
    /// colors" relation.
    fn distinct_pairs(k: Value) -> Vec<Vec<Value>> {
        (0..k)
            .flat_map(|a| (0..k).filter(move |&b| b != a).map(move |b| vec![a, b]))
            .collect()
    }

    /// Example 1: 3-coloring the map of Australia. Variables 0..=6 are
    /// WA, NT, Q, SA, NSW, V, TAS; values 0,1,2 are r, g, b.
    pub fn australia() -> Csp {
        const WA: usize = 0;
        const NT: usize = 1;
        const Q: usize = 2;
        const SA: usize = 3;
        const NSW: usize = 4;
        const V: usize = 5;
        let mut csp = Csp::with_uniform_domain(7, vec![0, 1, 2]);
        for (a, b) in [
            (NT, WA),
            (SA, WA),
            (NT, Q),
            (NT, SA),
            (Q, SA),
            (NSW, Q),
            (NSW, V),
            (NSW, SA),
            (SA, V),
        ] {
            csp.add_constraint(Relation::new(vec![a, b], distinct_pairs(3)));
        }
        csp
    }

    /// Example 2: the SAT instance
    /// `(¬x1 ∨ x2 ∨ x3) ∧ (x1 ∨ ¬x4) ∧ (¬x3 ∨ ¬x5)`
    /// as a CSP over variables 0..=4 with values 0 = false, 1 = true.
    pub fn sat_formula() -> Csp {
        let mut csp = Csp::with_uniform_domain(5, vec![0, 1]);
        // clause 1 over (x1,x2,x3): all combinations except (1,0,0)
        let c1: Vec<Vec<Value>> = (0..8u32)
            .map(|m| vec![m >> 2 & 1, m >> 1 & 1, m & 1])
            .filter(|t| !(t[0] == 1 && t[1] == 0 && t[2] == 0))
            .collect();
        csp.add_constraint(Relation::new(vec![0, 1, 2], c1));
        // clause 2 over (x1,x4): not (0,1)
        let c2: Vec<Vec<Value>> = (0..4u32)
            .map(|m| vec![m >> 1 & 1, m & 1])
            .filter(|t| !(t[0] == 0 && t[1] == 1))
            .collect();
        csp.add_constraint(Relation::new(vec![0, 3], c2));
        // clause 3 over (x3,x5): not (1,1)
        let c3: Vec<Vec<Value>> = (0..4u32)
            .map(|m| vec![m >> 1 & 1, m & 1])
            .filter(|t| !(t[0] == 1 && t[1] == 1))
            .collect();
        csp.add_constraint(Relation::new(vec![2, 4], c3));
        csp
    }

    /// The k-colouring CSP of an arbitrary graph (the thesis' motivating
    /// family): one variable per vertex, values `0..k`, one ≠-constraint per
    /// edge. Its constraint hypergraph is the graph itself.
    pub fn graph_coloring(g: &ghd_hypergraph::Graph, k: Value) -> Csp {
        let mut csp = Csp::with_uniform_domain(g.num_vertices(), (0..k).collect());
        for (u, v) in g.edges() {
            csp.add_constraint(Relation::new(vec![u, v], distinct_pairs(k)));
        }
        csp
    }

    /// The n-queens problem as a CSP (one variable per column, value = row;
    /// pairwise constraints forbid shared rows and diagonals).
    pub fn n_queens(n: usize) -> Csp {
        let mut csp = Csp::with_uniform_domain(n, (0..n as Value).collect());
        for a in 0..n {
            for b in (a + 1)..n {
                let tuples: Vec<Vec<Value>> = (0..n as Value)
                    .flat_map(|ra| (0..n as Value).map(move |rb| (ra, rb)))
                    .filter(|&(ra, rb)| {
                        ra != rb && (ra.abs_diff(rb) as usize) != b - a
                    })
                    .map(|(ra, rb)| vec![ra, rb])
                    .collect();
                csp.add_constraint(Relation::new(vec![a, b], tuples));
            }
        }
        csp
    }

    /// Example 5: six variables, domains `D_{x1} = {a, b}`, the others
    /// `{b, c}` (encoded a=0, b=1, c=2), with the three ternary constraints
    /// of Fig 2.6.
    pub fn example5() -> Csp {
        let mut domains = vec![vec![1, 2]; 6];
        domains[0] = vec![0, 1];
        let mut csp = Csp::new(domains);
        // R1 over (x1,x2,x3)
        csp.add_constraint(Relation::new(
            vec![0, 1, 2],
            vec![vec![0, 1, 2], vec![0, 2, 1], vec![1, 1, 2]],
        ));
        // R2 over (x1,x5,x6)
        csp.add_constraint(Relation::new(
            vec![0, 4, 5],
            vec![vec![0, 1, 2], vec![0, 2, 1]],
        ));
        // R3 over (x3,x4,x5)
        csp.add_constraint(Relation::new(
            vec![2, 3, 4],
            vec![vec![2, 1, 2], vec![2, 2, 1]],
        ));
        csp
    }
}

#[cfg(test)]
mod tests {
    use super::examples::*;
    use super::*;

    #[test]
    fn australia_has_the_thesis_solution() {
        let csp = australia();
        // WA=r, NT=g, SA=b, Q=r, NSW=g, V=r, TAS=g (r=0,g=1,b=2)
        let sol = vec![0, 1, 0, 2, 1, 0, 1];
        assert!(csp.is_solution(&sol));
        // 3-coloring count of Australia's mainland graph: 6 colorings × 3
        // free choices for TAS = 18
        assert_eq!(csp.count_solutions_brute_force(), 18);
    }

    #[test]
    fn sat_example_solvable_with_thesis_witness() {
        let csp = sat_formula();
        // x1=t, x2=t, x3=f, x4=t, x5=f
        assert!(csp.is_solution(&vec![1, 1, 0, 1, 0]));
        assert!(csp.solve_brute_force().is_some());
    }

    #[test]
    fn example5_matches_hypergraph_of_fig_2_6() {
        let csp = example5();
        let h = csp.constraint_hypergraph();
        assert_eq!(h.num_vertices(), 6);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.edge(0).to_vec(), vec![0, 1, 2]);
        let sol = csp.solve_brute_force().expect("example 5 is satisfiable");
        assert!(csp.is_solution(&sol));
    }

    #[test]
    fn graph_coloring_builder_matches_structure() {
        use ghd_hypergraph::generators::graphs;
        let g = graphs::cycle(5);
        // odd cycle: not 2-colorable, 3-colorable (30 proper colorings)
        let c2 = graph_coloring(&g, 2);
        assert_eq!(c2.solve_brute_force(), None);
        let c3 = graph_coloring(&g, 3);
        assert_eq!(c3.count_solutions_brute_force(), 30);
        assert_eq!(c3.constraint_hypergraph().primal_graph(), g);
    }

    #[test]
    fn n_queens_solution_counts() {
        // classic: 2 solutions for n=4, 10 for n=5
        assert_eq!(n_queens(4).count_solutions_brute_force(), 2);
        assert_eq!(n_queens(5).count_solutions_brute_force(), 10);
        assert_eq!(n_queens(3).solve_brute_force(), None);
        let sol = n_queens(6).solve_brute_force().expect("6-queens solvable");
        assert!(n_queens(6).is_solution(&sol));
    }

    #[test]
    fn unsatisfiable_detected() {
        let mut csp = Csp::with_uniform_domain(2, vec![0, 1]);
        csp.add_constraint(Relation::new(vec![0, 1], vec![vec![0, 0]]));
        csp.add_constraint(Relation::new(vec![0, 1], vec![vec![1, 1]]));
        assert_eq!(csp.solve_brute_force(), None);
        assert_eq!(csp.count_solutions_brute_force(), 0);
    }

    #[test]
    fn is_solution_rejects_out_of_domain_values() {
        let csp = Csp::with_uniform_domain(2, vec![0, 1]);
        assert!(!csp.is_solution(&vec![0, 7]));
        assert!(!csp.is_solution(&vec![0]));
    }
}
