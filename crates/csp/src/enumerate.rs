//! Enumerating and counting *all* complete consistent assignments from a
//! decomposition (§2.2.2 / §2.4: "computing all complete consistent
//! assignments is feasible in output-polynomial time").
//!
//! After the bottom-up full reduction of Acyclic Solving, every consistent
//! choice of a tuple at a node extends to a full solution (directional
//! consistency towards the root), so a root-first depth-first enumeration
//! over the join tree is backtrack-free and produces each solution exactly
//! once.

use crate::acyclic::full_reduce;
use crate::csp::{Assignment, Csp};
use crate::relation::{Relation, Value};
use crate::solve::{ghd_relations, SolveError, SolveOptions};
use ghd_core::GeneralizedHypertreeDecomposition;

/// Root-first DFS over tuple choices; calls `emit` once per solution over
/// the constrained variables. Returns `false` when `emit` aborts (limit).
fn dfs(
    rels: &[Relation],
    order: &[usize],
    depth: usize,
    assignment: &mut Vec<Option<Value>>,
    emit: &mut dyn FnMut(&[Option<Value>]) -> bool,
) -> bool {
    if depth == order.len() {
        return emit(assignment);
    }
    let node = order[depth];
    let r = &rels[node];
    'tuples: for t in r.tuples() {
        // consistency with previously assigned variables
        let mut touched: Vec<usize> = Vec::new();
        for (&v, &val) in r.scope().iter().zip(t.iter()) {
            match assignment[v] {
                Some(a) if a != val => {
                    for &u in &touched {
                        assignment[u] = None;
                    }
                    continue 'tuples;
                }
                Some(_) => {}
                None => {
                    assignment[v] = Some(val);
                    touched.push(v);
                }
            }
        }
        if !dfs(rels, order, depth + 1, assignment, emit) {
            return false;
        }
        for &u in &touched {
            assignment[u] = None;
        }
    }
    true
}

/// Counts all complete consistent assignments of `csp` through a valid GHD
/// of its constraint hypergraph. Unconstrained variables multiply the count
/// by their domain sizes.
pub fn count_solutions_with_ghd(
    csp: &Csp,
    ghd: &GeneralizedHypertreeDecomposition,
) -> Result<u64, SolveError> {
    count_solutions_with_ghd_opts(csp, ghd, &SolveOptions::default())
}

/// [`count_solutions_with_ghd`] with explicit [`SolveOptions`].
pub fn count_solutions_with_ghd_opts(
    csp: &Csp,
    ghd: &GeneralizedHypertreeDecomposition,
    opts: &SolveOptions,
) -> Result<u64, SolveError> {
    let (mut rels, jt) = ghd_relations(csp, ghd, opts)?;
    if !full_reduce(&mut rels, &jt) {
        return Ok(0);
    }
    let mut count: u64 = 0;
    let mut assignment = vec![None; csp.num_variables()];
    dfs(&rels, jt.order(), 0, &mut assignment, &mut |_| {
        count += 1;
        true
    });
    // unconstrained variables are free
    let mut constrained = vec![false; csp.num_variables()];
    for c in csp.constraints() {
        for &v in c.scope() {
            constrained[v] = true;
        }
    }
    for (v, &c) in constrained.iter().enumerate() {
        if !c {
            count = count.saturating_mul(csp.domain(v).len() as u64);
        }
    }
    Ok(count)
}

/// Enumerates up to `limit` complete consistent assignments through a valid
/// GHD (unconstrained variables take their first domain value).
pub fn enumerate_solutions_with_ghd(
    csp: &Csp,
    ghd: &GeneralizedHypertreeDecomposition,
    limit: usize,
) -> Result<Vec<Assignment>, SolveError> {
    enumerate_solutions_with_ghd_opts(csp, ghd, limit, &SolveOptions::default())
}

/// [`enumerate_solutions_with_ghd`] with explicit [`SolveOptions`].
pub fn enumerate_solutions_with_ghd_opts(
    csp: &Csp,
    ghd: &GeneralizedHypertreeDecomposition,
    limit: usize,
    opts: &SolveOptions,
) -> Result<Vec<Assignment>, SolveError> {
    let (mut rels, jt) = ghd_relations(csp, ghd, opts)?;
    let mut out = Vec::new();
    if limit == 0 || !full_reduce(&mut rels, &jt) {
        return Ok(out);
    }
    let defaults: Vec<Value> = (0..csp.num_variables())
        .map(|v| csp.domain(v)[0])
        .collect();
    let mut assignment = vec![None; csp.num_variables()];
    dfs(&rels, jt.order(), 0, &mut assignment, &mut |partial| {
        out.push(
            partial
                .iter()
                .enumerate()
                .map(|(v, a)| a.unwrap_or(defaults[v]))
                .collect(),
        );
        out.len() < limit
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csp::examples;
    use ghd_core::bucket::ghd_from_ordering;
    use ghd_core::setcover::CoverMethod;
    use ghd_core::EliminationOrdering;

    fn default_ghd(csp: &Csp) -> GeneralizedHypertreeDecomposition {
        let h = csp.constraint_hypergraph();
        let sigma = EliminationOrdering::identity(h.num_vertices());
        ghd_from_ordering(&h, &sigma, CoverMethod::Exact)
    }

    #[test]
    fn australia_has_18_colorings() {
        let csp = examples::australia();
        let ghd = default_ghd(&csp);
        assert_eq!(count_solutions_with_ghd(&csp, &ghd).unwrap(), 18);
        assert_eq!(csp.count_solutions_brute_force(), 18);
    }

    #[test]
    fn enumeration_yields_distinct_valid_solutions() {
        let csp = examples::australia();
        let ghd = default_ghd(&csp);
        let sols = enumerate_solutions_with_ghd(&csp, &ghd, 1000).unwrap();
        // TAS is unconstrained → enumeration fixes it to the default, so we
        // see the 6 mainland colorings once each
        assert_eq!(sols.len(), 6);
        let mut seen = std::collections::HashSet::new();
        for s in &sols {
            assert!(csp.is_solution(s));
            assert!(seen.insert(s.clone()), "duplicate solution");
        }
    }

    #[test]
    fn limit_is_respected() {
        let csp = examples::australia();
        let ghd = default_ghd(&csp);
        let sols = enumerate_solutions_with_ghd(&csp, &ghd, 2).unwrap();
        assert_eq!(sols.len(), 2);
        assert!(enumerate_solutions_with_ghd(&csp, &ghd, 0).unwrap().is_empty());
    }

    #[test]
    fn unsatisfiable_counts_zero() {
        use crate::relation::Relation;
        let mut csp = Csp::with_uniform_domain(2, vec![0, 1]);
        csp.add_constraint(Relation::new(vec![0, 1], vec![vec![0, 0]]));
        csp.add_constraint(Relation::new(vec![0, 1], vec![vec![1, 1]]));
        let ghd = default_ghd(&csp);
        assert_eq!(count_solutions_with_ghd(&csp, &ghd).unwrap(), 0);
        assert!(enumerate_solutions_with_ghd(&csp, &ghd, 10).unwrap().is_empty());
    }

    #[test]
    fn counts_match_brute_force_on_random_csps() {
        use ghd_prng::rngs::StdRng;
        use ghd_prng::seq::index::sample;
        use ghd_prng::RngExt;
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut csp = Csp::with_uniform_domain(6, vec![0, 1]);
            for _ in 0..4 {
                let arity = rng.random_range(2..=3usize);
                let scope: Vec<usize> = sample(&mut rng, 6, arity).into_iter().collect();
                let tuples: Vec<Vec<u32>> = (0..(1u32 << arity))
                    .filter(|_| rng.random_bool(0.7))
                    .map(|m| (0..arity).map(|b| (m >> b) & 1).collect())
                    .collect();
                csp.add_constraint(Relation::new(scope, tuples));
            }
            let ghd = default_ghd(&csp);
            assert_eq!(
                count_solutions_with_ghd(&csp, &ghd).unwrap(),
                csp.count_solutions_brute_force(),
                "seed {seed}"
            );
        }
    }
}
