//! Relations over CSP variables with the relational-algebra operations the
//! decomposition-based solvers need: natural join, semijoin and projection.
//!
//! # Storage layout
//!
//! Tuples live in a single row-major `Vec<Value>` with stride
//! `scope.len()`: tuple `i` occupies `data[i*stride .. (i+1)*stride]`.
//! There is **no per-tuple allocation** — the engine's working set is one
//! contiguous buffer per relation, which the join/semijoin/projection
//! kernels stream over.
//!
//! # Key packing
//!
//! Every kernel condenses its key columns into a `u64` (see [`KeyMode`]):
//! when `arity × bits_per_value ≤ 64` the values are bit-packed directly
//! (injective — no collision handling needed); wider or larger keys fall
//! back to an FxHash of the columns with equality verification on probe.
//! Either way a hash-map operation touches a single machine word instead of
//! a heap-allocated `Vec<Value>` key.
//!
//! All kernels are deterministic: output tuple order depends only on input
//! tuple order (first-occurrence order for deduplication, probe order for
//! joins), never on hash-map iteration.

use ghd_prng::hash::{FxHashMap, FxHashSet, FxHasher};
use std::hash::Hasher as _;

/// A domain value (domains are indexed densely per variable).
pub type Value = u32;

/// A relation: a scope of variable ids plus flat row-major tuple storage.
/// Tuples have the scope's length; variables appear at the index of their
/// position in `scope`. The scope contains no duplicates.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Relation {
    scope: Vec<usize>,
    /// Row-major tuple storage, stride = `scope.len()`.
    data: Vec<Value>,
    /// Number of tuples (kept explicit so zero-arity relations, which can
    /// arise transiently from projections, stay well-defined).
    rows: usize,
}

/// How a kernel condenses key columns into `u64`s.
#[derive(Clone, Copy, Debug)]
enum KeyMode {
    /// Each value fits in `bits` bits and `arity × bits ≤ 64`: the packed
    /// word is injective, so equal words ⇔ equal keys.
    Packed { bits: u32 },
    /// Wide or large-valued keys: FxHash of the columns; probes verify the
    /// actual column values on a hash hit.
    Hashed,
}

impl KeyMode {
    /// Picks the cheapest injective representation for `arity` key columns
    /// whose values never exceed `max_val`.
    fn choose(arity: usize, max_val: Value) -> KeyMode {
        let bits = (Value::BITS - max_val.leading_zeros()).max(1);
        if arity as u32 * bits <= 64 {
            KeyMode::Packed { bits }
        } else {
            KeyMode::Hashed
        }
    }

    /// The key of `tuple` restricted to `cols`.
    #[inline]
    fn key(self, tuple: &[Value], cols: &[usize]) -> u64 {
        match self {
            KeyMode::Packed { bits } => {
                let mut k = 0u64;
                for &c in cols {
                    k = (k << bits) | u64::from(tuple[c]);
                }
                k
            }
            KeyMode::Hashed => {
                let mut h = FxHasher::default();
                for &c in cols {
                    h.write_word(u64::from(tuple[c]));
                }
                h.finish()
            }
        }
    }
}

/// `true` iff `a` restricted to `a_cols` equals `b` restricted to `b_cols`.
#[inline]
fn key_eq(a: &[Value], a_cols: &[usize], b: &[Value], b_cols: &[usize]) -> bool {
    a_cols.iter().zip(b_cols).all(|(&ca, &cb)| a[ca] == b[cb])
}

/// Largest value appearing in the `cols` columns of `rel` (0 when empty).
fn max_in_cols(rel: &Relation, cols: &[usize]) -> Value {
    let mut m = 0;
    for t in rel.tuples() {
        for &c in cols {
            m = m.max(t[c]);
        }
    }
    m
}

/// Hash index from key to the rows carrying it, as a chained list: one
/// `u64 → head` map plus a `next` array — zero allocations per distinct key.
struct RowIndex {
    map: FxHashMap<u64, u32>,
    /// `next[i]` = previous row with the same key (`u32::MAX` terminates).
    next: Vec<u32>,
}

impl RowIndex {
    fn build(rel: &Relation, cols: &[usize], mode: KeyMode) -> RowIndex {
        let mut map: FxHashMap<u64, u32> = FxHashMap::default();
        map.reserve(rel.rows);
        let mut next = vec![u32::MAX; rel.rows];
        for (i, t) in rel.tuples().enumerate() {
            let slot = map.entry(mode.key(t, cols)).or_insert(u32::MAX);
            next[i] = *slot;
            *slot = i as u32;
        }
        RowIndex { map, next }
    }

    /// Pushes the rows matching `key` into `out` in ascending row order.
    /// `verify` re-checks column equality (needed in [`KeyMode::Hashed`]).
    #[inline]
    fn matches(&self, key: u64, out: &mut Vec<u32>, mut verify: impl FnMut(u32) -> bool) {
        out.clear();
        let mut cur = self.map.get(&key).copied().unwrap_or(u32::MAX);
        while cur != u32::MAX {
            if verify(cur) {
                out.push(cur);
            }
            cur = self.next[cur as usize];
        }
        out.reverse(); // chain is reverse insertion order
    }
}

impl Relation {
    /// Creates a relation from materialised tuples.
    ///
    /// # Panics
    /// Panics if the scope contains duplicates or a tuple has the wrong
    /// arity.
    pub fn new(scope: Vec<usize>, tuples: Vec<Vec<Value>>) -> Self {
        let arity = scope.len();
        let mut data = Vec::with_capacity(arity * tuples.len());
        let rows = tuples.len();
        for t in &tuples {
            assert_eq!(t.len(), arity, "tuple arity mismatch");
            data.extend_from_slice(t);
        }
        Self::from_flat(scope, data, rows)
    }

    /// Creates a relation directly from flat row-major storage (`rows`
    /// tuples of `scope.len()` values each).
    ///
    /// # Panics
    /// Panics if the scope contains duplicates or `data.len()` is not
    /// `rows * scope.len()`.
    pub fn from_flat(scope: Vec<usize>, data: Vec<Value>, rows: usize) -> Self {
        let mut sorted = scope.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), scope.len(), "duplicate variable in scope");
        assert_eq!(data.len(), rows * scope.len(), "flat storage size mismatch");
        Relation { scope, data, rows }
    }

    /// The full relation over `scope` given per-variable domains: the
    /// Cartesian product of the domains.
    pub fn full(scope: Vec<usize>, domains: &[Vec<Value>]) -> Self {
        let arity = scope.len();
        let rows: usize = scope.iter().map(|&v| domains[v].len()).product();
        let mut data = Vec::with_capacity(rows * arity);
        let mut odometer = vec![0usize; arity];
        for _ in 0..rows {
            for (slot, &v) in odometer.iter().zip(&scope) {
                data.push(domains[v][*slot]);
            }
            // increment the mixed-radix odometer (last column fastest)
            for c in (0..arity).rev() {
                odometer[c] += 1;
                if odometer[c] < domains[scope[c]].len() {
                    break;
                }
                odometer[c] = 0;
            }
        }
        Relation { scope, data, rows }
    }

    /// The scope (variable ids, in column order).
    pub fn scope(&self) -> &[usize] {
        &self.scope
    }

    /// Column stride of the flat storage (= arity).
    #[inline]
    fn stride(&self) -> usize {
        self.scope.len()
    }

    /// Iterates over the tuples as `&[Value]` slices (compatibility view of
    /// the flat storage).
    pub fn tuples(&self) -> Tuples<'_> {
        Tuples {
            data: &self.data,
            stride: self.stride(),
            rows: self.rows,
            i: 0,
        }
    }

    /// Tuple `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn tuple(&self, i: usize) -> &[Value] {
        assert!(i < self.rows, "tuple index out of range");
        let s = self.stride();
        &self.data[i * s..(i + 1) * s]
    }

    /// The tuples, materialised (test/diagnostic convenience — the hot
    /// paths use [`Relation::tuples`]).
    pub fn tuples_vec(&self) -> Vec<Vec<Value>> {
        self.tuples().map(<[Value]>::to_vec).collect()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// `true` iff the relation is empty (unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Column index of variable `v`, if in scope.
    pub fn column(&self, v: usize) -> Option<usize> {
        self.scope.iter().position(|&x| x == v)
    }

    /// Natural join `self ⋈ other`.
    pub fn join(&self, other: &Relation) -> Relation {
        // shared variables and their column indices in both relations
        let shared: Vec<usize> = self
            .scope
            .iter()
            .copied()
            .filter(|&v| other.column(v).is_some())
            .collect();
        let self_cols: Vec<usize> = shared.iter().map(|&v| self.column(v).unwrap()).collect();
        let other_cols: Vec<usize> = shared.iter().map(|&v| other.column(v).unwrap()).collect();
        let extra_cols: Vec<usize> = other
            .scope
            .iter()
            .enumerate()
            .filter(|&(_, &v)| self.column(v).is_none())
            .map(|(c, _)| c)
            .collect();

        let mode = KeyMode::choose(
            shared.len(),
            max_in_cols(self, &self_cols).max(max_in_cols(other, &other_cols)),
        );
        let index = RowIndex::build(other, &other_cols, mode);

        let mut scope = self.scope.clone();
        scope.extend(extra_cols.iter().map(|&c| other.scope[c]));
        let out_stride = scope.len();
        let mut data: Vec<Value> = Vec::new();
        let mut rows = 0usize;
        let mut matches: Vec<u32> = Vec::new();
        for t in self.tuples() {
            let key = mode.key(t, &self_cols);
            index.matches(key, &mut matches, |j| match mode {
                KeyMode::Packed { .. } => true,
                KeyMode::Hashed => key_eq(t, &self_cols, other.tuple(j as usize), &other_cols),
            });
            for &j in &matches {
                let u = other.tuple(j as usize);
                data.extend_from_slice(t);
                data.extend(extra_cols.iter().map(|&c| u[c]));
                rows += 1;
            }
        }
        debug_assert_eq!(data.len(), rows * out_stride);
        Relation { scope, data, rows }
    }

    /// Semijoin `self ⋉ other`: keeps the tuples of `self` that agree with
    /// at least one tuple of `other` on the shared variables. Returns `true`
    /// if any tuple was removed. Runs in place over the flat storage.
    pub fn semijoin(&mut self, other: &Relation) -> bool {
        let shared: Vec<usize> = self
            .scope
            .iter()
            .copied()
            .filter(|&v| other.column(v).is_some())
            .collect();
        if shared.is_empty() {
            if other.is_empty() && !self.is_empty() {
                self.data.clear();
                self.rows = 0;
                return true;
            }
            return false;
        }
        let self_cols: Vec<usize> = shared.iter().map(|&v| self.column(v).unwrap()).collect();
        let other_cols: Vec<usize> = shared.iter().map(|&v| other.column(v).unwrap()).collect();
        let mode = KeyMode::choose(
            shared.len(),
            max_in_cols(self, &self_cols).max(max_in_cols(other, &other_cols)),
        );
        // packed keys are injective → a set suffices; hashed keys keep the
        // chained index so probes can verify real column equality
        let index = match mode {
            KeyMode::Packed { .. } => {
                let mut keys: FxHashSet<u64> = FxHashSet::default();
                keys.reserve(other.rows);
                for t in other.tuples() {
                    keys.insert(mode.key(t, &other_cols));
                }
                Err(keys)
            }
            KeyMode::Hashed => Ok(RowIndex::build(other, &other_cols, mode)),
        };

        let stride = self.stride();
        let before = self.rows;
        let mut w = 0usize;
        for r in 0..self.rows {
            let start = r * stride;
            let keep = {
                let t = &self.data[start..start + stride];
                let key = mode.key(t, &self_cols);
                match &index {
                    Err(keys) => keys.contains(&key),
                    Ok(idx) => {
                        let mut cur = idx.map.get(&key).copied().unwrap_or(u32::MAX);
                        let mut hit = false;
                        while cur != u32::MAX {
                            if key_eq(t, &self_cols, other.tuple(cur as usize), &other_cols) {
                                hit = true;
                                break;
                            }
                            cur = idx.next[cur as usize];
                        }
                        hit
                    }
                }
            };
            if keep {
                if w != r {
                    self.data.copy_within(start..start + stride, w * stride);
                }
                w += 1;
            }
        }
        self.rows = w;
        self.data.truncate(w * stride);
        w != before
    }

    /// Projection `π_vars(self)` with duplicate elimination
    /// (first-occurrence order).
    ///
    /// # Panics
    /// Panics if some requested variable is not in scope.
    pub fn project(&self, vars: &[usize]) -> Relation {
        let cols: Vec<usize> = vars
            .iter()
            .map(|&v| self.column(v).expect("projection variable not in scope"))
            .collect();
        let mode = KeyMode::choose(cols.len(), max_in_cols(self, &cols));
        let out_stride = cols.len();
        let mut data: Vec<Value> = Vec::new();
        let mut rows = 0usize;
        match mode {
            KeyMode::Packed { .. } => {
                let mut seen: FxHashSet<u64> = FxHashSet::default();
                for t in self.tuples() {
                    if seen.insert(mode.key(t, &cols)) {
                        data.extend(cols.iter().map(|&c| t[c]));
                        rows += 1;
                    }
                }
            }
            KeyMode::Hashed => {
                // bucket output-row ids by hash; verify on collision
                let mut seen: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
                let identity: Vec<usize> = (0..out_stride).collect();
                for t in self.tuples() {
                    let key = mode.key(t, &cols);
                    let bucket = seen.entry(key).or_default();
                    let dup = bucket.iter().any(|&o| {
                        let s = o as usize * out_stride;
                        key_eq(t, &cols, &data[s..s + out_stride], &identity)
                    });
                    if !dup {
                        bucket.push(rows as u32);
                        data.extend(cols.iter().map(|&c| t[c]));
                        rows += 1;
                    }
                }
            }
        }
        Relation {
            scope: vars.to_vec(),
            data,
            rows,
        }
    }

    /// Removes duplicate tuples in place (first-occurrence order). Returns
    /// `true` if any tuple was removed.
    pub fn dedup(&mut self) -> bool {
        let vars = self.scope.clone();
        let deduped = self.project(&vars);
        let changed = deduped.rows != self.rows;
        *self = deduped;
        changed
    }

    /// Keeps only tuples compatible with a partial assignment
    /// (`assignment[v] = Some(val)`).
    pub fn filter_assignment(&self, assignment: &[Option<Value>]) -> Relation {
        let stride = self.stride();
        // columns that are actually pinned by the assignment
        let pinned: Vec<(usize, Value)> = self
            .scope
            .iter()
            .enumerate()
            .filter_map(|(c, &v)| assignment[v].map(|a| (c, a)))
            .collect();
        let mut data: Vec<Value> = Vec::new();
        let mut rows = 0usize;
        for t in self.tuples() {
            if pinned.iter().all(|&(c, a)| t[c] == a) {
                data.extend_from_slice(t);
                rows += 1;
            }
        }
        debug_assert_eq!(data.len(), rows * stride);
        Relation {
            scope: self.scope.clone(),
            data,
            rows,
        }
    }
}

/// Iterator over a relation's tuples as `&[Value]` slices.
pub struct Tuples<'a> {
    data: &'a [Value],
    stride: usize,
    rows: usize,
    i: usize,
}

impl<'a> Iterator for Tuples<'a> {
    type Item = &'a [Value];

    #[inline]
    fn next(&mut self) -> Option<&'a [Value]> {
        if self.i >= self.rows {
            return None;
        }
        let s = self.stride;
        let start = self.i * s;
        self.i += 1;
        Some(&self.data[start..start + s])
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.rows - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Tuples<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(scope: &[usize], tuples: &[&[Value]]) -> Relation {
        Relation::new(scope.to_vec(), tuples.iter().map(|t| t.to_vec()).collect())
    }

    #[test]
    fn join_on_shared_variable() {
        let a = r(&[0, 1], &[&[1, 2], &[1, 3], &[2, 2]]);
        let b = r(&[1, 2], &[&[2, 9], &[3, 8]]);
        let j = a.join(&b);
        assert_eq!(j.scope(), &[0, 1, 2]);
        let mut tuples = j.tuples_vec();
        tuples.sort();
        assert_eq!(tuples, vec![vec![1, 2, 9], vec![1, 3, 8], vec![2, 2, 9]]);
    }

    #[test]
    fn join_without_shared_variables_is_cross_product() {
        let a = r(&[0], &[&[1], &[2]]);
        let b = r(&[1], &[&[7]]);
        let j = a.join(&b);
        assert_eq!(j.len(), 2);
        assert_eq!(j.scope(), &[0, 1]);
    }

    #[test]
    fn join_preserves_probe_order_and_duplicate_matches() {
        let a = r(&[0], &[&[5], &[6], &[5]]);
        let b = r(&[0, 1], &[&[5, 1], &[5, 2], &[6, 3]]);
        let j = a.join(&b);
        // per probe tuple, matches come back in other's tuple order
        assert_eq!(
            j.tuples_vec(),
            vec![vec![5, 1], vec![5, 2], vec![6, 3], vec![5, 1], vec![5, 2]]
        );
    }

    #[test]
    fn semijoin_removes_unsupported_tuples() {
        let mut a = r(&[0, 1], &[&[1, 2], &[1, 3], &[2, 2]]);
        let b = r(&[1], &[&[2]]);
        assert!(a.semijoin(&b));
        assert_eq!(a.tuples_vec(), vec![vec![1, 2], vec![2, 2]]);
        assert!(!a.semijoin(&b)); // idempotent
    }

    #[test]
    fn semijoin_disjoint_scopes_checks_emptiness_only() {
        let mut a = r(&[0], &[&[1]]);
        let empty = Relation::new(vec![5], vec![]);
        assert!(a.semijoin(&empty));
        assert!(a.is_empty());
    }

    #[test]
    fn projection_deduplicates() {
        let a = r(&[0, 1], &[&[1, 2], &[1, 3], &[2, 2]]);
        let p = a.project(&[0]);
        assert_eq!(p.tuples_vec(), vec![vec![1], vec![2]]);
    }

    #[test]
    fn full_relation_is_cartesian_product() {
        let domains = vec![vec![0, 1], vec![0, 1, 2]];
        let f = Relation::full(vec![0, 1], &domains);
        assert_eq!(f.len(), 6);
        // lexicographic odometer order, last column fastest
        assert_eq!(f.tuple(0), &[0, 0]);
        assert_eq!(f.tuple(1), &[0, 1]);
        assert_eq!(f.tuple(5), &[1, 2]);
    }

    #[test]
    fn filter_by_partial_assignment() {
        let a = r(&[0, 1], &[&[1, 2], &[1, 3], &[2, 2]]);
        let mut asg = vec![None, None];
        asg[0] = Some(1);
        let f = a.filter_assignment(&asg);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn dedup_removes_repeats_in_place() {
        let mut a = r(&[0, 1], &[&[1, 2], &[1, 2], &[2, 2], &[1, 2]]);
        assert!(a.dedup());
        assert_eq!(a.tuples_vec(), vec![vec![1, 2], vec![2, 2]]);
        assert!(!a.dedup());
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn duplicate_scope_rejected() {
        let _ = Relation::new(vec![0, 0], vec![]);
    }

    #[test]
    fn key_mode_switches_to_hashing_on_wide_or_large_keys() {
        assert!(matches!(KeyMode::choose(8, 255), KeyMode::Packed { bits: 8 }));
        assert!(matches!(KeyMode::choose(9, 255), KeyMode::Hashed));
        assert!(matches!(KeyMode::choose(2, u32::MAX), KeyMode::Packed { bits: 32 }));
        assert!(matches!(KeyMode::choose(3, u32::MAX), KeyMode::Hashed));
        assert!(matches!(KeyMode::choose(0, 0), KeyMode::Packed { .. }));
    }

    /// Kernels agree with the naive reference engine on random relations,
    /// forcing both key modes (small dense values → packed, huge sparse
    /// values → hashed).
    #[test]
    fn kernels_match_naive_reference_on_random_relations() {
        use crate::naive::NaiveRelation;
        use ghd_prng::rngs::StdRng;
        use ghd_prng::RngExt;
        for seed in 0..40u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let wide = seed % 2 == 1; // odd seeds exercise the hashed path
            let value = |rng: &mut StdRng| -> Value {
                if wide {
                    rng.random_range(0..4u32) * 0x1000_0000 + rng.random_range(0..4u32)
                } else {
                    rng.random_range(0..4u32)
                }
            };
            let arity_a = rng.random_range(1..=3usize);
            let arity_b = rng.random_range(1..=3usize);
            let scope_a: Vec<usize> = (0..arity_a).collect();
            let overlap = rng.random_range(0..=arity_a.min(arity_b));
            let scope_b: Vec<usize> =
                (arity_a - overlap..arity_a - overlap + arity_b).collect();
            let gen_tuples = |rng: &mut StdRng, arity: usize| -> Vec<Vec<Value>> {
                (0..rng.random_range(0..30usize))
                    .map(|_| (0..arity).map(|_| value(rng)).collect())
                    .collect()
            };
            let ta = gen_tuples(&mut rng, arity_a);
            let tb = gen_tuples(&mut rng, arity_b);
            let a = Relation::new(scope_a.clone(), ta.clone());
            let b = Relation::new(scope_b.clone(), tb.clone());
            let na = NaiveRelation::new(scope_a.clone(), ta);
            let nb = NaiveRelation::new(scope_b.clone(), tb);

            // join: identical scope, tuple multiset AND order
            let j = a.join(&b);
            let nj = na.join(&nb);
            assert_eq!(j.scope(), nj.scope(), "seed {seed}");
            assert_eq!(j.tuples_vec(), nj.tuples().to_vec(), "seed {seed}");

            // semijoin: identical survivors in order
            let mut a2 = a.clone();
            let mut na2 = na.clone();
            assert_eq!(a2.semijoin(&b), na2.semijoin(&nb), "seed {seed}");
            assert_eq!(a2.tuples_vec(), na2.tuples().to_vec(), "seed {seed}");

            // projection onto a random scope prefix
            if !scope_a.is_empty() {
                let k = rng.random_range(1..=scope_a.len());
                let vars: Vec<usize> = scope_a[..k].to_vec();
                assert_eq!(
                    a.project(&vars).tuples_vec(),
                    na.project(&vars).tuples().to_vec(),
                    "seed {seed}"
                );
            }
        }
    }
}
