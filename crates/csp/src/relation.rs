//! Relations over CSP variables with the relational-algebra operations the
//! decomposition-based solvers need: natural join, semijoin and projection.

/// A domain value (domains are indexed densely per variable).
pub type Value = u32;

/// A relation: a scope of variable ids plus the list of allowed tuples.
/// Tuples have the scope's length; variables appear at the index of their
/// position in `scope`. The scope contains no duplicates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    scope: Vec<usize>,
    tuples: Vec<Vec<Value>>,
}

impl Relation {
    /// Creates a relation.
    ///
    /// # Panics
    /// Panics if the scope contains duplicates or a tuple has the wrong
    /// arity.
    pub fn new(scope: Vec<usize>, tuples: Vec<Vec<Value>>) -> Self {
        let mut sorted = scope.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), scope.len(), "duplicate variable in scope");
        for t in &tuples {
            assert_eq!(t.len(), scope.len(), "tuple arity mismatch");
        }
        Relation { scope, tuples }
    }

    /// The full relation over `scope` given per-variable domains: the
    /// Cartesian product of the domains.
    pub fn full(scope: Vec<usize>, domains: &[Vec<Value>]) -> Self {
        let mut tuples: Vec<Vec<Value>> = vec![Vec::new()];
        for &v in &scope {
            let mut next = Vec::with_capacity(tuples.len() * domains[v].len());
            for t in &tuples {
                for &val in &domains[v] {
                    let mut t2 = t.clone();
                    t2.push(val);
                    next.push(t2);
                }
            }
            tuples = next;
        }
        Relation { scope, tuples }
    }

    /// The scope (variable ids, in column order).
    pub fn scope(&self) -> &[usize] {
        &self.scope
    }

    /// The tuples.
    pub fn tuples(&self) -> &[Vec<Value>] {
        &self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` iff the relation is empty (unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Column index of variable `v`, if in scope.
    pub fn column(&self, v: usize) -> Option<usize> {
        self.scope.iter().position(|&x| x == v)
    }

    /// Key of a tuple restricted to the columns `cols`.
    fn key(t: &[Value], cols: &[usize]) -> Vec<Value> {
        cols.iter().map(|&c| t[c]).collect()
    }

    /// Natural join `self ⋈ other`.
    pub fn join(&self, other: &Relation) -> Relation {
        // shared variables and their column indices in both relations
        let shared: Vec<usize> = self
            .scope
            .iter()
            .copied()
            .filter(|&v| other.column(v).is_some())
            .collect();
        let self_cols: Vec<usize> = shared.iter().map(|&v| self.column(v).unwrap()).collect();
        let other_cols: Vec<usize> = shared.iter().map(|&v| other.column(v).unwrap()).collect();
        let extra: Vec<usize> = other
            .scope
            .iter()
            .copied()
            .filter(|&v| self.column(v).is_none())
            .collect();
        let extra_cols: Vec<usize> = extra.iter().map(|&v| other.column(v).unwrap()).collect();

        // hash the smaller side on the shared key
        use std::collections::HashMap;
        let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (i, t) in other.tuples.iter().enumerate() {
            index.entry(Self::key(t, &other_cols)).or_default().push(i);
        }
        let mut scope = self.scope.clone();
        scope.extend(&extra);
        let mut tuples = Vec::new();
        for t in &self.tuples {
            if let Some(matches) = index.get(&Self::key(t, &self_cols)) {
                for &j in matches {
                    let mut row = t.clone();
                    row.extend(extra_cols.iter().map(|&c| other.tuples[j][c]));
                    tuples.push(row);
                }
            }
        }
        Relation { scope, tuples }
    }

    /// Semijoin `self ⋉ other`: keeps the tuples of `self` that agree with
    /// at least one tuple of `other` on the shared variables. Returns `true`
    /// if any tuple was removed.
    pub fn semijoin(&mut self, other: &Relation) -> bool {
        let shared: Vec<usize> = self
            .scope
            .iter()
            .copied()
            .filter(|&v| other.column(v).is_some())
            .collect();
        if shared.is_empty() {
            if other.is_empty() && !self.is_empty() {
                self.tuples.clear();
                return true;
            }
            return false;
        }
        let self_cols: Vec<usize> = shared.iter().map(|&v| self.column(v).unwrap()).collect();
        let other_cols: Vec<usize> = shared.iter().map(|&v| other.column(v).unwrap()).collect();
        use std::collections::HashSet;
        let keys: HashSet<Vec<Value>> = other
            .tuples
            .iter()
            .map(|t| Self::key(t, &other_cols))
            .collect();
        let before = self.tuples.len();
        self.tuples.retain(|t| keys.contains(&Self::key(t, &self_cols)));
        self.tuples.len() != before
    }

    /// Projection `π_vars(self)` with duplicate elimination.
    ///
    /// # Panics
    /// Panics if some requested variable is not in scope.
    pub fn project(&self, vars: &[usize]) -> Relation {
        let cols: Vec<usize> = vars
            .iter()
            .map(|&v| self.column(v).expect("projection variable not in scope"))
            .collect();
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        let mut tuples = Vec::new();
        for t in &self.tuples {
            let row = Self::key(t, &cols);
            if seen.insert(row.clone()) {
                tuples.push(row);
            }
        }
        Relation {
            scope: vars.to_vec(),
            tuples,
        }
    }

    /// Keeps only tuples compatible with a partial assignment
    /// (`assignment[v] = Some(val)`).
    pub fn filter_assignment(&self, assignment: &[Option<Value>]) -> Relation {
        let tuples = self
            .tuples
            .iter()
            .filter(|t| {
                self.scope
                    .iter()
                    .zip(t.iter())
                    .all(|(&v, &val)| assignment[v].is_none_or(|a| a == val))
            })
            .cloned()
            .collect();
        Relation {
            scope: self.scope.clone(),
            tuples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(scope: &[usize], tuples: &[&[Value]]) -> Relation {
        Relation::new(scope.to_vec(), tuples.iter().map(|t| t.to_vec()).collect())
    }

    #[test]
    fn join_on_shared_variable() {
        let a = r(&[0, 1], &[&[1, 2], &[1, 3], &[2, 2]]);
        let b = r(&[1, 2], &[&[2, 9], &[3, 8]]);
        let j = a.join(&b);
        assert_eq!(j.scope(), &[0, 1, 2]);
        let mut tuples = j.tuples().to_vec();
        tuples.sort();
        assert_eq!(tuples, vec![vec![1, 2, 9], vec![1, 3, 8], vec![2, 2, 9]]);
    }

    #[test]
    fn join_without_shared_variables_is_cross_product() {
        let a = r(&[0], &[&[1], &[2]]);
        let b = r(&[1], &[&[7]]);
        let j = a.join(&b);
        assert_eq!(j.len(), 2);
        assert_eq!(j.scope(), &[0, 1]);
    }

    #[test]
    fn semijoin_removes_unsupported_tuples() {
        let mut a = r(&[0, 1], &[&[1, 2], &[1, 3], &[2, 2]]);
        let b = r(&[1], &[&[2]]);
        assert!(a.semijoin(&b));
        assert_eq!(a.tuples(), &[vec![1, 2], vec![2, 2]]);
        assert!(!a.semijoin(&b)); // idempotent
    }

    #[test]
    fn semijoin_disjoint_scopes_checks_emptiness_only() {
        let mut a = r(&[0], &[&[1]]);
        let empty = Relation::new(vec![5], vec![]);
        assert!(a.semijoin(&empty));
        assert!(a.is_empty());
    }

    #[test]
    fn projection_deduplicates() {
        let a = r(&[0, 1], &[&[1, 2], &[1, 3], &[2, 2]]);
        let p = a.project(&[0]);
        assert_eq!(p.tuples(), &[vec![1], vec![2]]);
    }

    #[test]
    fn full_relation_is_cartesian_product() {
        let domains = vec![vec![0, 1], vec![0, 1, 2]];
        let f = Relation::full(vec![0, 1], &domains);
        assert_eq!(f.len(), 6);
    }

    #[test]
    fn filter_by_partial_assignment() {
        let a = r(&[0, 1], &[&[1, 2], &[1, 3], &[2, 2]]);
        let mut asg = vec![None, None];
        asg[0] = Some(1);
        let f = a.filter_assignment(&asg);
        assert_eq!(f.len(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate variable")]
    fn duplicate_scope_rejected() {
        let _ = Relation::new(vec![0, 0], vec![]);
    }
}
