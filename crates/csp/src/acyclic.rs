//! Join trees (Definition 8), acyclicity recognition (Definition 9) and
//! algorithm *Acyclic Solving* (Fig 2.4).

use crate::csp::{Assignment, Csp};
use crate::relation::Relation;

/// A join tree over a set of relations: node `i` carries `relations[i]`;
/// `parent[i]` is `None` exactly for the root.
#[derive(Clone, Debug)]
pub struct JoinTree {
    parent: Vec<Option<usize>>,
    order: Vec<usize>, // root-first order (each node after its parent)
}

impl JoinTree {
    /// Builds a join tree for the relations by taking a maximum-weight
    /// spanning tree of the dual graph (weight = number of shared
    /// variables). By Maier's classical result this spanning tree satisfies
    /// the connectedness condition iff the CSP is acyclic; returns `None`
    /// otherwise.
    pub fn build(relations: &[Relation], num_vars: usize) -> Option<JoinTree> {
        let m = relations.len();
        if m == 0 {
            return None;
        }
        // Prim's algorithm on shared-variable weights; disconnected dual
        // graphs (variable-disjoint components) connect with weight-0 edges,
        // which is fine for a join tree.
        let mut parent = vec![None; m];
        let mut in_tree = vec![false; m];
        let mut best = vec![(0usize, usize::MAX); m]; // (weight, attach-to)
        let mut order = Vec::with_capacity(m);
        in_tree[0] = true;
        order.push(0);
        for j in 1..m {
            best[j] = (shared_count(&relations[0], &relations[j]), 0);
        }
        for _ in 1..m {
            let next = (0..m)
                .filter(|&j| !in_tree[j])
                .max_by_key(|&j| best[j].0)
                .expect("nodes remain");
            in_tree[next] = true;
            parent[next] = Some(best[next].1);
            order.push(next);
            for j in 0..m {
                if !in_tree[j] {
                    let w = shared_count(&relations[next], &relations[j]);
                    if w > best[j].0 {
                        best[j] = (w, next);
                    }
                }
            }
        }
        let jt = JoinTree { parent, order };
        jt.satisfies_connectedness(relations, num_vars).then_some(jt)
    }

    /// Builds a join tree from explicit parent links and a root-first node
    /// order — used to reuse a decomposition's tree shape directly. The
    /// caller is responsible for the connectedness condition (tree
    /// decompositions guarantee it via their condition 2); it can be
    /// re-checked with [`JoinTree::satisfies_connectedness`].
    pub fn from_parts(parent: Vec<Option<usize>>, order: Vec<usize>) -> JoinTree {
        debug_assert_eq!(parent.len(), order.len());
        JoinTree { parent, order }
    }

    /// Parent of node `i`.
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parent[i]
    }

    /// Nodes in root-first order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Checks the connectedness condition for join trees (Definition 8):
    /// for each variable, the nodes whose scopes contain it form a subtree.
    pub fn satisfies_connectedness(&self, relations: &[Relation], num_vars: usize) -> bool {
        for v in 0..num_vars {
            let members: Vec<usize> = (0..relations.len())
                .filter(|&i| relations[i].column(v).is_some())
                .collect();
            if members.len() <= 1 {
                continue;
            }
            // count tree edges internal to `members`
            let mut edges = 0;
            for &i in &members {
                if let Some(p) = self.parent[i] {
                    if relations[p].column(v).is_some() {
                        edges += 1;
                    }
                }
            }
            if members.len() - edges != 1 {
                return false;
            }
        }
        true
    }
}

fn shared_count(a: &Relation, b: &Relation) -> usize {
    a.scope().iter().filter(|&&v| b.column(v).is_some()).count()
}

/// `true` iff the CSP is acyclic (has a join tree, Definition 9).
pub fn is_acyclic(csp: &Csp) -> bool {
    JoinTree::build(csp.constraints(), csp.num_variables()).is_some()
}

/// Yannakakis semijoin reduction over an explicit join tree: an **upward**
/// pass (children before parents, towards the root) followed by a
/// **downward** pass (parents before children). After both passes every
/// remaining tuple of every relation participates in at least one global
/// solution, so downstream passes — tuple selection, counting, enumeration
/// — are backtrack-free. Returns `false` iff some relation empties (the
/// relations have no common solution).
pub fn full_reduce(rels: &mut [Relation], jt: &JoinTree) -> bool {
    // UPWARD: children before parents = reverse root-first order
    for &i in jt.order().iter().rev() {
        if let Some(p) = jt.parent(i) {
            let child = std::mem::take(&mut rels[i]);
            rels[p].semijoin(&child);
            rels[i] = child;
            if rels[p].is_empty() {
                return false;
            }
        }
    }
    // DOWNWARD: parents before children = root-first order
    for &i in jt.order() {
        if let Some(p) = jt.parent(i) {
            let parent = std::mem::take(&mut rels[p]);
            rels[i].semijoin(&parent);
            rels[p] = parent;
            if rels[i].is_empty() {
                return false;
            }
        }
    }
    rels.iter().all(|r| !r.is_empty())
}

/// Algorithm *Acyclic Solving* (Fig 2.4) over an explicit join tree of
/// relations: Yannakakis semijoin reduction ([`full_reduce`]), then
/// top-down tuple selection. Variables outside every scope get the supplied
/// `default` domain value. Returns `None` iff the relations have no common
/// solution.
pub fn acyclic_solve(
    relations: &[Relation],
    jt: &JoinTree,
    num_vars: usize,
    defaults: &[Vec<crate::relation::Value>],
) -> Option<Assignment> {
    let mut rels: Vec<Relation> = relations.to_vec();
    if !full_reduce(&mut rels, jt) {
        return None;
    }
    // TOP-DOWN: select tuples consistent with the partial assignment
    let mut assignment: Vec<Option<crate::relation::Value>> = vec![None; num_vars];
    for &i in jt.order() {
        let filtered = rels[i].filter_assignment(&assignment);
        let t = filtered.tuples().next()?; // full reduction ⇒ always present
        for (&v, &val) in rels[i].scope().iter().zip(t.iter()) {
            assignment[v] = Some(val);
        }
    }
    // unconstrained variables take any domain value
    Some(
        assignment
            .into_iter()
            .enumerate()
            .map(|(v, a)| a.unwrap_or_else(|| defaults[v][0]))
            .collect(),
    )
}

/// Convenience: decide constraint satisfiability of an *acyclic* CSP and
/// produce a solution (Fig 2.4 end-to-end). Returns `Err(())` if the CSP is
/// not acyclic.
#[allow(clippy::result_unit_err)]
pub fn solve_acyclic_csp(csp: &Csp) -> Result<Option<Assignment>, ()> {
    let jt = JoinTree::build(csp.constraints(), csp.num_variables()).ok_or(())?;
    Ok(acyclic_solve(
        csp.constraints(),
        &jt,
        csp.num_variables(),
        csp.domains(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csp::examples;

    #[test]
    fn example5_is_acyclic_as_dual_triangle() {
        // the three constraints pairwise share one variable; its dual graph
        // is a triangle, but a join tree exists (α-acyclic? here: no — the
        // hypergraph of example 5 is cyclic). Verify build() rejects it.
        let csp = examples::example5();
        assert!(!is_acyclic(&csp));
    }

    #[test]
    fn sat_example_is_acyclic_and_solvable() {
        let csp = examples::sat_formula();
        assert!(is_acyclic(&csp));
        let sol = solve_acyclic_csp(&csp).unwrap().expect("satisfiable");
        assert!(csp.is_solution(&sol));
    }

    #[test]
    fn acyclic_solving_detects_inconsistency() {
        use crate::relation::Relation;
        let mut csp = crate::csp::Csp::with_uniform_domain(3, vec![0, 1]);
        csp.add_constraint(Relation::new(vec![0, 1], vec![vec![0, 0]]));
        csp.add_constraint(Relation::new(vec![1, 2], vec![vec![1, 1]]));
        assert!(is_acyclic(&csp));
        assert_eq!(solve_acyclic_csp(&csp).unwrap(), None);
    }

    #[test]
    fn chain_of_constraints_solves() {
        use crate::relation::Relation;
        let mut csp = crate::csp::Csp::with_uniform_domain(4, vec![0, 1]);
        // x0 < x1, x1 = x2, x2 != x3 over {0,1}
        csp.add_constraint(Relation::new(vec![0, 1], vec![vec![0, 1]]));
        csp.add_constraint(Relation::new(vec![1, 2], vec![vec![0, 0], vec![1, 1]]));
        csp.add_constraint(Relation::new(vec![2, 3], vec![vec![0, 1], vec![1, 0]]));
        let sol = solve_acyclic_csp(&csp).unwrap().expect("satisfiable");
        assert_eq!(sol, vec![0, 1, 1, 0]);
        assert!(csp.is_solution(&sol));
    }

    #[test]
    fn unconstrained_variables_get_defaults() {
        use crate::relation::Relation;
        let mut csp = crate::csp::Csp::with_uniform_domain(3, vec![5, 6]);
        csp.add_constraint(Relation::new(vec![0], vec![vec![6]]));
        let sol = solve_acyclic_csp(&csp).unwrap().expect("satisfiable");
        assert_eq!(sol[0], 6);
        assert_eq!(sol[1], 5);
        assert!(csp.is_solution(&sol));
    }
}
