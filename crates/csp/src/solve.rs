//! Solving CSPs from tree decompositions and (complete) generalized
//! hypertree decompositions (§2.4): the decomposition turns the CSP into a
//! solution-equivalent acyclic instance, which *Acyclic Solving* finishes.

use crate::acyclic::{acyclic_solve, JoinTree};
use crate::csp::{Assignment, Csp};
use crate::relation::Relation;
use ghd_core::{GeneralizedHypertreeDecomposition, TreeDecomposition};

/// Error cases of the decomposition-based solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The decomposition is not valid for this CSP's constraint hypergraph.
    InvalidDecomposition,
    /// A constraint's scope fits in no bag (condition 1 violated).
    ConstraintNotPlaced,
}

/// Tuning knobs of the GHD-based solving pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveOptions {
    /// Worker threads for per-node relation construction (`0` = all cores,
    /// `1` = sequential). Results are **identical for any thread count**:
    /// `ghd_par::parallel_map` is order-preserving and each node's relation
    /// is a pure function of the CSP and the decomposition.
    pub threads: usize,
    /// Run Yannakakis-style semijoin reduction: λ-relations are
    /// semijoin-reduced against each other *before* the node join is
    /// materialised, and the node relations get a full down/up reduction via
    /// [`crate::acyclic::full_reduce`]. Turning this off reproduces the
    /// unreduced pipeline (same solutions, more intermediate tuples).
    pub yannakakis: bool,
    /// Collect [`SolveStats`] kernel counters (rows probed / built /
    /// emitted, semijoin eliminations). Recording is read-only — it never
    /// changes which tuples are produced or which solution is returned —
    /// and costs a handful of integer adds per relational operation. Off by
    /// default; [`solve_with_ghd_stats`] forces it on.
    pub collect_stats: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            threads: 1,
            yannakakis: true,
            collect_stats: false,
        }
    }
}

/// Kernel counters of one GHD-based solve: how many tuples the relational
/// kernels streamed (probe side), indexed (build side), materialised
/// (outputs) and how many the semijoin passes eliminated. Counters are
/// exact and deterministic — per-node counts are summed in node order, so
/// the totals are identical for any `threads` setting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Tuples streamed on the probe side of a join or semijoin.
    pub rows_probed: u64,
    /// Tuples inserted into a hash index (build side of a join/semijoin).
    pub rows_built: u64,
    /// Tuples materialised into output relations (join outputs, node
    /// projections and full node relations).
    pub rows_emitted: u64,
    /// Tuples removed by semijoins: the per-node λ-sweeps plus the
    /// down/up Yannakakis reduction over the join tree.
    pub semijoin_eliminated: u64,
}

impl SolveStats {
    /// Accumulates `other` into `self` (plain counter addition).
    pub fn absorb(&mut self, other: &SolveStats) {
        self.rows_probed += other.rows_probed;
        self.rows_built += other.rows_built;
        self.rows_emitted += other.rows_emitted;
        self.semijoin_eliminated += other.semijoin_eliminated;
    }
}

/// A join tree directly mirroring a decomposition's tree structure.
fn tree_of_decomposition(td: &TreeDecomposition) -> JoinTreeShim {
    JoinTreeShim {
        parent: td.nodes().map(|p| td.parent(p)).collect(),
        order: td.preorder(),
    }
}

struct JoinTreeShim {
    parent: Vec<Option<usize>>,
    order: Vec<usize>,
}

impl JoinTreeShim {
    fn to_join_tree(&self) -> JoinTree {
        // JoinTree has no public constructor from raw parts; rebuild through
        // its invariant-checked builder is impossible here (relations may
        // legally violate *its* dual-graph construction), so JoinTree
        // exposes `from_parts` for decomposition shims.
        JoinTree::from_parts(self.parent.clone(), self.order.clone())
    }
}

/// Solves a CSP from a tree decomposition of its constraint hypergraph
/// (Join Tree Clustering, §2.4):
///
/// 1. place every constraint at a node whose bag contains its scope,
/// 2. per node, solve the subproblem: all assignments of the bag variables
///    consistent with the constraints placed there (cost `O(d^{w+1})`),
/// 3. run Acyclic Solving on the resulting join tree.
pub fn solve_with_tree_decomposition(
    csp: &Csp,
    td: &TreeDecomposition,
) -> Result<Option<Assignment>, SolveError> {
    let h = csp.constraint_hypergraph();
    td.verify(&h).map_err(|_| SolveError::InvalidDecomposition)?;

    // 1. place constraints
    let mut placed: Vec<Vec<usize>> = vec![Vec::new(); td.num_nodes()];
    for (ci, c) in csp.constraints().iter().enumerate() {
        let node = td
            .nodes()
            .find(|&p| c.scope().iter().all(|&v| td.bag(p).contains(v)))
            .ok_or(SolveError::ConstraintNotPlaced)?;
        placed[node].push(ci);
    }

    // 2. per-node subproblems: full product over the bag filtered by the
    // placed constraints
    let relations: Vec<Relation> = td
        .nodes()
        .map(|p| {
            let bag: Vec<usize> = td.bag(p).to_vec();
            let mut r = Relation::full(bag.clone(), csp.domains());
            for &ci in &placed[p] {
                r = r.join(&csp.constraints()[ci]).project(&bag);
            }
            r
        })
        .collect();

    // 3. acyclic solving along the decomposition tree
    let shim = tree_of_decomposition(td);
    let jt = shim.to_join_tree();
    Ok(acyclic_solve(
        &relations,
        &jt,
        csp.num_variables(),
        csp.domains(),
    ))
}

/// Builds the node relation `R_p := π_{χ(p)} ⋈_{h ∈ λ(p)} R_h` for one
/// decomposition node. With `yannakakis` set, the λ-relations are
/// semijoin-reduced against each other (one forward and one backward sweep)
/// **before** any join is materialised — every semijoin is sound because a
/// tuple without a partner in some other λ-relation cannot survive the
/// natural join — which keeps the intermediate join results small.
fn node_relation(
    csp: &Csp,
    bag: &[usize],
    lam: &[usize],
    yannakakis: bool,
    collect: bool,
) -> (Relation, SolveStats) {
    let mut st = SolveStats::default();
    if lam.is_empty() {
        let r = Relation::full(bag.to_vec(), csp.domains());
        if collect {
            st.rows_emitted += r.len() as u64;
        }
        return (r, st);
    }
    let mut parts: Vec<Relation> = lam.iter().map(|&e| csp.constraints()[e].clone()).collect();
    if yannakakis && parts.len() > 1 {
        let m = parts.len();
        for i in 1..m {
            let (head, tail) = parts.split_at_mut(i);
            let before = tail[0].len();
            tail[0].semijoin(&head[i - 1]);
            if collect {
                st.rows_probed += before as u64;
                st.rows_built += head[i - 1].len() as u64;
                st.semijoin_eliminated += (before - tail[0].len()) as u64;
            }
        }
        for i in (0..m - 1).rev() {
            let (head, tail) = parts.split_at_mut(i + 1);
            let before = head[i].len();
            head[i].semijoin(&tail[0]);
            if collect {
                st.rows_probed += before as u64;
                st.rows_built += tail[0].len() as u64;
                st.semijoin_eliminated += (before - head[i].len()) as u64;
            }
        }
    }
    let mut iter = parts.into_iter();
    let mut joined = iter.next().expect("λ is nonempty");
    for part in iter {
        if collect {
            st.rows_probed += joined.len() as u64;
            st.rows_built += part.len() as u64;
        }
        joined = joined.join(&part);
        if collect {
            st.rows_emitted += joined.len() as u64;
        }
    }
    // χ(p) ⊆ var(λ(p)) by condition 3, so the projection is defined
    let out = joined.project(bag);
    if collect {
        st.rows_probed += joined.len() as u64;
        st.rows_emitted += out.len() as u64;
    }
    (out, st)
}

/// Builds the join tree of node relations `R_p := π_{χ(p)} ⋈_{h ∈ λ(p)} R_h`
/// for a (completed) GHD — the shared front half of GHD-based solving,
/// counting and enumeration. Node relations are built by
/// `ghd_par::parallel_map` when `opts.threads != 1` (order-preserving, so
/// the result is identical for any thread count). Returns the relations and
/// the join tree mirroring the (completed) decomposition's shape.
pub(crate) fn ghd_relations(
    csp: &Csp,
    ghd: &GeneralizedHypertreeDecomposition,
    opts: &SolveOptions,
) -> Result<(Vec<Relation>, JoinTree), SolveError> {
    ghd_relations_counted(csp, ghd, opts).map(|(rels, jt, _)| (rels, jt))
}

/// [`ghd_relations`] plus the summed per-node [`SolveStats`]. Per-node
/// counters travel through `parallel_map`'s order-preserving output and are
/// folded in node order, so the totals are thread-count independent. All
/// counters stay zero unless `opts.collect_stats` is set.
pub(crate) fn ghd_relations_counted(
    csp: &Csp,
    ghd: &GeneralizedHypertreeDecomposition,
    opts: &SolveOptions,
) -> Result<(Vec<Relation>, JoinTree, SolveStats), SolveError> {
    let h = csp.constraint_hypergraph();
    ghd.verify(&h).map_err(|_| SolveError::InvalidDecomposition)?;
    // complete from ONE clone only when necessary; borrow when already
    // complete (the pre-PR code cloned even for the `is_complete` branch)
    let owned;
    let complete: &GeneralizedHypertreeDecomposition = if ghd.is_complete(&h) {
        ghd
    } else {
        owned = ghd.clone().complete(&h);
        &owned
    };
    let td = complete.tree();

    let nodes: Vec<usize> = td.nodes().collect();
    let built: Vec<(Relation, SolveStats)> = ghd_par::parallel_map(&nodes, opts.threads, |&p| {
        node_relation(
            csp,
            &td.bag(p).to_vec(),
            complete.lambda(p),
            opts.yannakakis,
            opts.collect_stats,
        )
    });
    let mut stats = SolveStats::default();
    let mut relations = Vec::with_capacity(built.len());
    for (r, s) in built {
        stats.absorb(&s);
        relations.push(r);
    }

    let shim = tree_of_decomposition(td);
    let jt = shim.to_join_tree();
    Ok((relations, jt, stats))
}

/// Solves a CSP from a *complete* generalized hypertree decomposition
/// (§2.4): per node `p`, `R_p := π_{χ(p)} ⋈_{h ∈ λ(p)} R_h`, then Acyclic
/// Solving. The decomposition is completed automatically if necessary
/// (Lemma 2), so any valid GHD is accepted.
pub fn solve_with_ghd(
    csp: &Csp,
    ghd: &GeneralizedHypertreeDecomposition,
) -> Result<Option<Assignment>, SolveError> {
    solve_with_ghd_opts(csp, ghd, &SolveOptions::default())
}

/// [`solve_with_ghd`] with explicit [`SolveOptions`] (thread fan-out for the
/// per-node relation construction and the Yannakakis reduction toggle).
pub fn solve_with_ghd_opts(
    csp: &Csp,
    ghd: &GeneralizedHypertreeDecomposition,
    opts: &SolveOptions,
) -> Result<Option<Assignment>, SolveError> {
    solve_impl(csp, ghd, opts).map(|(sol, _)| sol)
}

/// [`solve_with_ghd_opts`] that additionally returns the [`SolveStats`]
/// kernel counters. `collect_stats` is forced on; the solution is
/// **identical** to the uncounted path (recording never feeds back into the
/// kernels — see `stats_collection_is_behaviourally_free`).
pub fn solve_with_ghd_stats(
    csp: &Csp,
    ghd: &GeneralizedHypertreeDecomposition,
    opts: &SolveOptions,
) -> Result<(Option<Assignment>, SolveStats), SolveError> {
    let counted = SolveOptions {
        collect_stats: true,
        ..*opts
    };
    solve_impl(csp, ghd, &counted)
}

fn solve_impl(
    csp: &Csp,
    ghd: &GeneralizedHypertreeDecomposition,
    opts: &SolveOptions,
) -> Result<(Option<Assignment>, SolveStats), SolveError> {
    let (relations, jt, mut stats) = ghd_relations_counted(csp, ghd, opts)?;
    if !opts.collect_stats {
        let sol = acyclic_solve(&relations, &jt, csp.num_variables(), csp.domains());
        return Ok((sol, stats));
    }
    // Counted down/up Yannakakis reduction: eliminations = total rows
    // before minus after. `full_reduce` is idempotent (semijoins are), so
    // handing the already-reduced relations to `acyclic_solve` re-runs the
    // reduction as a no-op and tuple selection proceeds identically to the
    // uncounted path.
    let mut rels = relations;
    let before: u64 = rels.iter().map(|r| r.len() as u64).sum();
    let consistent = crate::acyclic::full_reduce(&mut rels, &jt);
    let after: u64 = rels.iter().map(|r| r.len() as u64).sum();
    stats.rows_probed += before;
    stats.semijoin_eliminated += before - after;
    if !consistent {
        return Ok((None, stats));
    }
    let sol = acyclic_solve(&rels, &jt, csp.num_variables(), csp.domains());
    Ok((sol, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csp::examples;
    use ghd_core::bucket::{ghd_from_ordering, vertex_elimination};
    use ghd_core::setcover::CoverMethod;
    use ghd_core::EliminationOrdering;
    use ghd_prng::rngs::StdRng;

    fn td_for(csp: &Csp, sigma: &EliminationOrdering) -> TreeDecomposition {
        vertex_elimination(&csp.constraint_hypergraph().primal_graph(), sigma)
    }

    #[test]
    fn example5_solved_from_tree_decomposition() {
        let csp = examples::example5();
        // Fig 2.11's ordering σ = (x6..x1)
        let sigma = EliminationOrdering::new(vec![5, 4, 3, 2, 1, 0]).unwrap();
        let td = td_for(&csp, &sigma);
        let sol = solve_with_tree_decomposition(&csp, &td)
            .unwrap()
            .expect("example 5 is satisfiable");
        assert!(csp.is_solution(&sol));
    }

    #[test]
    fn example5_solved_from_ghd() {
        let csp = examples::example5();
        let sigma = EliminationOrdering::new(vec![5, 4, 3, 2, 1, 0]).unwrap();
        let ghd = ghd_from_ordering(&csp.constraint_hypergraph(), &sigma, CoverMethod::Exact);
        let sol = solve_with_ghd(&csp, &ghd).unwrap().expect("satisfiable");
        assert!(csp.is_solution(&sol));
    }

    #[test]
    fn australia_solved_from_decompositions() {
        let csp = examples::australia();
        let sigma = EliminationOrdering::identity(7);
        let td = td_for(&csp, &sigma);
        let sol = solve_with_tree_decomposition(&csp, &td).unwrap().unwrap();
        assert!(csp.is_solution(&sol));
        let ghd = ghd_from_ordering(&csp.constraint_hypergraph(), &sigma, CoverMethod::Greedy);
        let sol2 = solve_with_ghd(&csp, &ghd).unwrap().unwrap();
        assert!(csp.is_solution(&sol2));
    }

    #[test]
    fn unsatisfiable_csp_detected_through_decomposition() {
        use crate::relation::Relation;
        let mut csp = Csp::with_uniform_domain(3, vec![0, 1]);
        csp.add_constraint(Relation::new(vec![0, 1], vec![vec![0, 0]]));
        csp.add_constraint(Relation::new(vec![1, 2], vec![vec![1, 0]]));
        let sigma = EliminationOrdering::identity(3);
        let td = td_for(&csp, &sigma);
        assert_eq!(solve_with_tree_decomposition(&csp, &td).unwrap(), None);
        let ghd = ghd_from_ordering(&csp.constraint_hypergraph(), &sigma, CoverMethod::Exact);
        assert_eq!(solve_with_ghd(&csp, &ghd).unwrap(), None);
    }

    #[test]
    fn decomposition_solvers_agree_with_brute_force_on_random_csps() {
        let mut rng = StdRng::seed_from_u64(5);
        for seed in 0..10u64 {
            let csp = random_csp(seed);
            let brute = csp.solve_brute_force();
            let sigma = EliminationOrdering::random(csp.num_variables(), &mut rng);
            let td = td_for(&csp, &sigma);
            let td_sol = solve_with_tree_decomposition(&csp, &td).unwrap();
            assert_eq!(brute.is_some(), td_sol.is_some(), "TD seed {seed}");
            if let Some(s) = td_sol {
                assert!(csp.is_solution(&s), "TD seed {seed}");
            }
            let ghd =
                ghd_from_ordering(&csp.constraint_hypergraph(), &sigma, CoverMethod::Exact);
            let ghd_sol = solve_with_ghd(&csp, &ghd).unwrap();
            assert_eq!(brute.is_some(), ghd_sol.is_some(), "GHD seed {seed}");
            if let Some(s) = ghd_sol {
                assert!(csp.is_solution(&s), "GHD seed {seed}");
            }
        }
    }

    #[test]
    fn stats_collection_is_behaviourally_free() {
        let mut rng = StdRng::seed_from_u64(9);
        for seed in 0..8u64 {
            let csp = random_csp(seed);
            let sigma = EliminationOrdering::random(csp.num_variables(), &mut rng);
            let ghd =
                ghd_from_ordering(&csp.constraint_hypergraph(), &sigma, CoverMethod::Exact);
            let plain = solve_with_ghd(&csp, &ghd).unwrap();
            let (counted, _) =
                solve_with_ghd_stats(&csp, &ghd, &SolveOptions::default()).unwrap();
            assert_eq!(plain, counted, "seed {seed}: counting changed the solution");
        }
    }

    #[test]
    fn kernel_counters_are_live_and_gated() {
        let csp = examples::example5();
        let sigma = EliminationOrdering::new(vec![5, 4, 3, 2, 1, 0]).unwrap();
        let ghd = ghd_from_ordering(&csp.constraint_hypergraph(), &sigma, CoverMethod::Exact);
        let (sol, stats) =
            solve_with_ghd_stats(&csp, &ghd, &SolveOptions::default()).unwrap();
        assert!(sol.is_some());
        assert!(stats.rows_emitted > 0, "node relations materialise tuples");
        assert!(stats.rows_probed > 0, "joins/semijoins stream probe rows");
        // with the flag off every counter stays zero (collection is gated)
        let (_, _, off) =
            ghd_relations_counted(&csp, &ghd, &SolveOptions::default()).unwrap();
        assert_eq!(off, SolveStats::default());
    }

    #[test]
    fn solve_stats_are_thread_count_invariant() {
        for seed in 0..6u64 {
            let csp = random_csp(seed);
            let sigma = EliminationOrdering::identity(csp.num_variables());
            let ghd =
                ghd_from_ordering(&csp.constraint_hypergraph(), &sigma, CoverMethod::Greedy);
            let base = SolveOptions::default();
            let (ref_sol, ref_stats) = solve_with_ghd_stats(&csp, &ghd, &base).unwrap();
            for threads in [2usize, 4] {
                let opts = SolveOptions {
                    threads,
                    ..SolveOptions::default()
                };
                let (sol, stats) = solve_with_ghd_stats(&csp, &ghd, &opts).unwrap();
                assert_eq!(sol, ref_sol, "seed {seed} threads {threads}");
                assert_eq!(stats, ref_stats, "seed {seed} threads {threads}");
            }
        }
    }

    /// Random small CSP: 7 variables over {0,1,2}, 5 random ternary/binary
    /// constraints with random tuple subsets.
    fn random_csp(seed: u64) -> Csp {
        use ghd_prng::seq::index::sample;
        use ghd_prng::RngExt;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut csp = Csp::with_uniform_domain(7, vec![0, 1, 2]);
        for _ in 0..5 {
            let arity = rng.random_range(2..=3usize);
            let scope: Vec<usize> = sample(&mut rng, 7, arity).into_iter().collect();
            let total = 3u32.pow(arity as u32);
            let tuples: Vec<Vec<u32>> = (0..total)
                .filter(|_| rng.random_bool(0.6))
                .map(|mut m| {
                    let mut t = vec![0u32; arity];
                    for slot in t.iter_mut() {
                        *slot = m % 3;
                        m /= 3;
                    }
                    t
                })
                .collect();
            csp.add_constraint(Relation::new(scope, tuples));
        }
        csp
    }
}
