//! Solving CSPs from tree decompositions and (complete) generalized
//! hypertree decompositions (§2.4): the decomposition turns the CSP into a
//! solution-equivalent acyclic instance, which *Acyclic Solving* finishes.

use crate::acyclic::{acyclic_solve, JoinTree};
use crate::csp::{Assignment, Csp};
use crate::relation::Relation;
use ghd_core::{GeneralizedHypertreeDecomposition, TreeDecomposition};

/// Error cases of the decomposition-based solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The decomposition is not valid for this CSP's constraint hypergraph.
    InvalidDecomposition,
    /// A constraint's scope fits in no bag (condition 1 violated).
    ConstraintNotPlaced,
}

/// Tuning knobs of the GHD-based solving pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveOptions {
    /// Worker threads for per-node relation construction (`0` = all cores,
    /// `1` = sequential). Results are **identical for any thread count**:
    /// `ghd_par::parallel_map` is order-preserving and each node's relation
    /// is a pure function of the CSP and the decomposition.
    pub threads: usize,
    /// Run Yannakakis-style semijoin reduction: λ-relations are
    /// semijoin-reduced against each other *before* the node join is
    /// materialised, and the node relations get a full down/up reduction via
    /// [`crate::acyclic::full_reduce`]. Turning this off reproduces the
    /// unreduced pipeline (same solutions, more intermediate tuples).
    pub yannakakis: bool,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            threads: 1,
            yannakakis: true,
        }
    }
}

/// A join tree directly mirroring a decomposition's tree structure.
fn tree_of_decomposition(td: &TreeDecomposition) -> JoinTreeShim {
    JoinTreeShim {
        parent: td.nodes().map(|p| td.parent(p)).collect(),
        order: td.preorder(),
    }
}

struct JoinTreeShim {
    parent: Vec<Option<usize>>,
    order: Vec<usize>,
}

impl JoinTreeShim {
    fn to_join_tree(&self) -> JoinTree {
        // JoinTree has no public constructor from raw parts; rebuild through
        // its invariant-checked builder is impossible here (relations may
        // legally violate *its* dual-graph construction), so JoinTree
        // exposes `from_parts` for decomposition shims.
        JoinTree::from_parts(self.parent.clone(), self.order.clone())
    }
}

/// Solves a CSP from a tree decomposition of its constraint hypergraph
/// (Join Tree Clustering, §2.4):
///
/// 1. place every constraint at a node whose bag contains its scope,
/// 2. per node, solve the subproblem: all assignments of the bag variables
///    consistent with the constraints placed there (cost `O(d^{w+1})`),
/// 3. run Acyclic Solving on the resulting join tree.
pub fn solve_with_tree_decomposition(
    csp: &Csp,
    td: &TreeDecomposition,
) -> Result<Option<Assignment>, SolveError> {
    let h = csp.constraint_hypergraph();
    td.verify(&h).map_err(|_| SolveError::InvalidDecomposition)?;

    // 1. place constraints
    let mut placed: Vec<Vec<usize>> = vec![Vec::new(); td.num_nodes()];
    for (ci, c) in csp.constraints().iter().enumerate() {
        let node = td
            .nodes()
            .find(|&p| c.scope().iter().all(|&v| td.bag(p).contains(v)))
            .ok_or(SolveError::ConstraintNotPlaced)?;
        placed[node].push(ci);
    }

    // 2. per-node subproblems: full product over the bag filtered by the
    // placed constraints
    let relations: Vec<Relation> = td
        .nodes()
        .map(|p| {
            let bag: Vec<usize> = td.bag(p).to_vec();
            let mut r = Relation::full(bag.clone(), csp.domains());
            for &ci in &placed[p] {
                r = r.join(&csp.constraints()[ci]).project(&bag);
            }
            r
        })
        .collect();

    // 3. acyclic solving along the decomposition tree
    let shim = tree_of_decomposition(td);
    let jt = shim.to_join_tree();
    Ok(acyclic_solve(
        &relations,
        &jt,
        csp.num_variables(),
        csp.domains(),
    ))
}

/// Builds the node relation `R_p := π_{χ(p)} ⋈_{h ∈ λ(p)} R_h` for one
/// decomposition node. With `yannakakis` set, the λ-relations are
/// semijoin-reduced against each other (one forward and one backward sweep)
/// **before** any join is materialised — every semijoin is sound because a
/// tuple without a partner in some other λ-relation cannot survive the
/// natural join — which keeps the intermediate join results small.
fn node_relation(csp: &Csp, bag: &[usize], lam: &[usize], yannakakis: bool) -> Relation {
    if lam.is_empty() {
        return Relation::full(bag.to_vec(), csp.domains());
    }
    let mut parts: Vec<Relation> = lam.iter().map(|&e| csp.constraints()[e].clone()).collect();
    if yannakakis && parts.len() > 1 {
        let m = parts.len();
        for i in 1..m {
            let (head, tail) = parts.split_at_mut(i);
            tail[0].semijoin(&head[i - 1]);
        }
        for i in (0..m - 1).rev() {
            let (head, tail) = parts.split_at_mut(i + 1);
            head[i].semijoin(&tail[0]);
        }
    }
    let mut iter = parts.into_iter();
    let mut joined = iter.next().expect("λ is nonempty");
    for part in iter {
        joined = joined.join(&part);
    }
    // χ(p) ⊆ var(λ(p)) by condition 3, so the projection is defined
    joined.project(bag)
}

/// Builds the join tree of node relations `R_p := π_{χ(p)} ⋈_{h ∈ λ(p)} R_h`
/// for a (completed) GHD — the shared front half of GHD-based solving,
/// counting and enumeration. Node relations are built by
/// `ghd_par::parallel_map` when `opts.threads != 1` (order-preserving, so
/// the result is identical for any thread count). Returns the relations and
/// the join tree mirroring the (completed) decomposition's shape.
pub(crate) fn ghd_relations(
    csp: &Csp,
    ghd: &GeneralizedHypertreeDecomposition,
    opts: &SolveOptions,
) -> Result<(Vec<Relation>, JoinTree), SolveError> {
    let h = csp.constraint_hypergraph();
    ghd.verify(&h).map_err(|_| SolveError::InvalidDecomposition)?;
    // complete from ONE clone only when necessary; borrow when already
    // complete (the pre-PR code cloned even for the `is_complete` branch)
    let owned;
    let complete: &GeneralizedHypertreeDecomposition = if ghd.is_complete(&h) {
        ghd
    } else {
        owned = ghd.clone().complete(&h);
        &owned
    };
    let td = complete.tree();

    let nodes: Vec<usize> = td.nodes().collect();
    let relations: Vec<Relation> = ghd_par::parallel_map(&nodes, opts.threads, |&p| {
        node_relation(csp, &td.bag(p).to_vec(), complete.lambda(p), opts.yannakakis)
    });

    let shim = tree_of_decomposition(td);
    let jt = shim.to_join_tree();
    Ok((relations, jt))
}

/// Solves a CSP from a *complete* generalized hypertree decomposition
/// (§2.4): per node `p`, `R_p := π_{χ(p)} ⋈_{h ∈ λ(p)} R_h`, then Acyclic
/// Solving. The decomposition is completed automatically if necessary
/// (Lemma 2), so any valid GHD is accepted.
pub fn solve_with_ghd(
    csp: &Csp,
    ghd: &GeneralizedHypertreeDecomposition,
) -> Result<Option<Assignment>, SolveError> {
    solve_with_ghd_opts(csp, ghd, &SolveOptions::default())
}

/// [`solve_with_ghd`] with explicit [`SolveOptions`] (thread fan-out for the
/// per-node relation construction and the Yannakakis reduction toggle).
pub fn solve_with_ghd_opts(
    csp: &Csp,
    ghd: &GeneralizedHypertreeDecomposition,
    opts: &SolveOptions,
) -> Result<Option<Assignment>, SolveError> {
    let (relations, jt) = ghd_relations(csp, ghd, opts)?;
    Ok(acyclic_solve(
        &relations,
        &jt,
        csp.num_variables(),
        csp.domains(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csp::examples;
    use ghd_core::bucket::{ghd_from_ordering, vertex_elimination};
    use ghd_core::setcover::CoverMethod;
    use ghd_core::EliminationOrdering;
    use ghd_prng::rngs::StdRng;

    fn td_for(csp: &Csp, sigma: &EliminationOrdering) -> TreeDecomposition {
        vertex_elimination(&csp.constraint_hypergraph().primal_graph(), sigma)
    }

    #[test]
    fn example5_solved_from_tree_decomposition() {
        let csp = examples::example5();
        // Fig 2.11's ordering σ = (x6..x1)
        let sigma = EliminationOrdering::new(vec![5, 4, 3, 2, 1, 0]).unwrap();
        let td = td_for(&csp, &sigma);
        let sol = solve_with_tree_decomposition(&csp, &td)
            .unwrap()
            .expect("example 5 is satisfiable");
        assert!(csp.is_solution(&sol));
    }

    #[test]
    fn example5_solved_from_ghd() {
        let csp = examples::example5();
        let sigma = EliminationOrdering::new(vec![5, 4, 3, 2, 1, 0]).unwrap();
        let ghd = ghd_from_ordering(&csp.constraint_hypergraph(), &sigma, CoverMethod::Exact);
        let sol = solve_with_ghd(&csp, &ghd).unwrap().expect("satisfiable");
        assert!(csp.is_solution(&sol));
    }

    #[test]
    fn australia_solved_from_decompositions() {
        let csp = examples::australia();
        let sigma = EliminationOrdering::identity(7);
        let td = td_for(&csp, &sigma);
        let sol = solve_with_tree_decomposition(&csp, &td).unwrap().unwrap();
        assert!(csp.is_solution(&sol));
        let ghd = ghd_from_ordering(&csp.constraint_hypergraph(), &sigma, CoverMethod::Greedy);
        let sol2 = solve_with_ghd(&csp, &ghd).unwrap().unwrap();
        assert!(csp.is_solution(&sol2));
    }

    #[test]
    fn unsatisfiable_csp_detected_through_decomposition() {
        use crate::relation::Relation;
        let mut csp = Csp::with_uniform_domain(3, vec![0, 1]);
        csp.add_constraint(Relation::new(vec![0, 1], vec![vec![0, 0]]));
        csp.add_constraint(Relation::new(vec![1, 2], vec![vec![1, 0]]));
        let sigma = EliminationOrdering::identity(3);
        let td = td_for(&csp, &sigma);
        assert_eq!(solve_with_tree_decomposition(&csp, &td).unwrap(), None);
        let ghd = ghd_from_ordering(&csp.constraint_hypergraph(), &sigma, CoverMethod::Exact);
        assert_eq!(solve_with_ghd(&csp, &ghd).unwrap(), None);
    }

    #[test]
    fn decomposition_solvers_agree_with_brute_force_on_random_csps() {
        let mut rng = StdRng::seed_from_u64(5);
        for seed in 0..10u64 {
            let csp = random_csp(seed);
            let brute = csp.solve_brute_force();
            let sigma = EliminationOrdering::random(csp.num_variables(), &mut rng);
            let td = td_for(&csp, &sigma);
            let td_sol = solve_with_tree_decomposition(&csp, &td).unwrap();
            assert_eq!(brute.is_some(), td_sol.is_some(), "TD seed {seed}");
            if let Some(s) = td_sol {
                assert!(csp.is_solution(&s), "TD seed {seed}");
            }
            let ghd =
                ghd_from_ordering(&csp.constraint_hypergraph(), &sigma, CoverMethod::Exact);
            let ghd_sol = solve_with_ghd(&csp, &ghd).unwrap();
            assert_eq!(brute.is_some(), ghd_sol.is_some(), "GHD seed {seed}");
            if let Some(s) = ghd_sol {
                assert!(csp.is_solution(&s), "GHD seed {seed}");
            }
        }
    }

    /// Random small CSP: 7 variables over {0,1,2}, 5 random ternary/binary
    /// constraints with random tuple subsets.
    fn random_csp(seed: u64) -> Csp {
        use ghd_prng::seq::index::sample;
        use ghd_prng::RngExt;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut csp = Csp::with_uniform_domain(7, vec![0, 1, 2]);
        for _ in 0..5 {
            let arity = rng.random_range(2..=3usize);
            let scope: Vec<usize> = sample(&mut rng, 7, arity).into_iter().collect();
            let total = 3u32.pow(arity as u32);
            let tuples: Vec<Vec<u32>> = (0..total)
                .filter(|_| rng.random_bool(0.6))
                .map(|mut m| {
                    let mut t = vec![0u32; arity];
                    for slot in t.iter_mut() {
                        *slot = m % 3;
                        m /= 3;
                    }
                    t
                })
                .collect();
            csp.add_constraint(Relation::new(scope, tuples));
        }
        csp
    }
}
