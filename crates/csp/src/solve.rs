//! Solving CSPs from tree decompositions and (complete) generalized
//! hypertree decompositions (§2.4): the decomposition turns the CSP into a
//! solution-equivalent acyclic instance, which *Acyclic Solving* finishes.

use crate::acyclic::{acyclic_solve, JoinTree};
use crate::csp::{Assignment, Csp};
use crate::relation::Relation;
use ghd_core::{GeneralizedHypertreeDecomposition, TreeDecomposition};

/// Error cases of the decomposition-based solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The decomposition is not valid for this CSP's constraint hypergraph.
    InvalidDecomposition,
    /// A constraint's scope fits in no bag (condition 1 violated).
    ConstraintNotPlaced,
}

/// A join tree directly mirroring a decomposition's tree structure.
fn tree_of_decomposition(td: &TreeDecomposition) -> JoinTreeShim {
    JoinTreeShim {
        parent: td.nodes().map(|p| td.parent(p)).collect(),
        order: td.preorder(),
    }
}

struct JoinTreeShim {
    parent: Vec<Option<usize>>,
    order: Vec<usize>,
}

impl JoinTreeShim {
    fn to_join_tree(&self) -> JoinTree {
        // JoinTree has no public constructor from raw parts; rebuild through
        // its invariant-checked builder is impossible here (relations may
        // legally violate *its* dual-graph construction), so JoinTree
        // exposes `from_parts` for decomposition shims.
        JoinTree::from_parts(self.parent.clone(), self.order.clone())
    }
}

/// Solves a CSP from a tree decomposition of its constraint hypergraph
/// (Join Tree Clustering, §2.4):
///
/// 1. place every constraint at a node whose bag contains its scope,
/// 2. per node, solve the subproblem: all assignments of the bag variables
///    consistent with the constraints placed there (cost `O(d^{w+1})`),
/// 3. run Acyclic Solving on the resulting join tree.
pub fn solve_with_tree_decomposition(
    csp: &Csp,
    td: &TreeDecomposition,
) -> Result<Option<Assignment>, SolveError> {
    let h = csp.constraint_hypergraph();
    td.verify(&h).map_err(|_| SolveError::InvalidDecomposition)?;

    // 1. place constraints
    let mut placed: Vec<Vec<usize>> = vec![Vec::new(); td.num_nodes()];
    for (ci, c) in csp.constraints().iter().enumerate() {
        let node = td
            .nodes()
            .find(|&p| c.scope().iter().all(|&v| td.bag(p).contains(v)))
            .ok_or(SolveError::ConstraintNotPlaced)?;
        placed[node].push(ci);
    }

    // 2. per-node subproblems: full product over the bag filtered by the
    // placed constraints
    let relations: Vec<Relation> = td
        .nodes()
        .map(|p| {
            let bag: Vec<usize> = td.bag(p).to_vec();
            let mut r = Relation::full(bag.clone(), csp.domains());
            for &ci in &placed[p] {
                r = r.join(&csp.constraints()[ci]).project(&bag);
            }
            r
        })
        .collect();

    // 3. acyclic solving along the decomposition tree
    let shim = tree_of_decomposition(td);
    let jt = shim.to_join_tree();
    Ok(acyclic_solve(
        &relations,
        &jt,
        csp.num_variables(),
        csp.domains(),
    ))
}

/// Builds the join tree of node relations `R_p := π_{χ(p)} ⋈_{h ∈ λ(p)} R_h`
/// for a (completed) GHD — the shared front half of GHD-based solving,
/// counting and enumeration. Returns the relations, the join tree mirroring
/// the decomposition's shape, and the completed decomposition.
pub(crate) fn ghd_relations(
    csp: &Csp,
    ghd: &GeneralizedHypertreeDecomposition,
) -> Result<(Vec<Relation>, JoinTree, GeneralizedHypertreeDecomposition), SolveError> {
    let h = csp.constraint_hypergraph();
    ghd.verify(&h).map_err(|_| SolveError::InvalidDecomposition)?;
    let complete = if ghd.is_complete(&h) {
        ghd.clone()
    } else {
        ghd.clone().complete(&h)
    };
    let td = complete.tree();

    let relations: Vec<Relation> = td
        .nodes()
        .map(|p| {
            let bag: Vec<usize> = td.bag(p).to_vec();
            let lam = complete.lambda(p);
            let mut r: Option<Relation> = None;
            for &e in lam {
                let c = &csp.constraints()[e];
                r = Some(match r {
                    None => c.clone(),
                    Some(acc) => acc.join(c),
                });
            }
            let joined = r.unwrap_or_else(|| Relation::full(bag.clone(), csp.domains()));
            // χ(p) ⊆ var(λ(p)) by condition 3, so the projection is defined
            joined.project(&bag)
        })
        .collect();

    let shim = tree_of_decomposition(td);
    let jt = shim.to_join_tree();
    Ok((relations, jt, complete))
}

/// Solves a CSP from a *complete* generalized hypertree decomposition
/// (§2.4): per node `p`, `R_p := π_{χ(p)} ⋈_{h ∈ λ(p)} R_h`, then Acyclic
/// Solving. The decomposition is completed automatically if necessary
/// (Lemma 2), so any valid GHD is accepted.
pub fn solve_with_ghd(
    csp: &Csp,
    ghd: &GeneralizedHypertreeDecomposition,
) -> Result<Option<Assignment>, SolveError> {
    let (relations, jt, _) = ghd_relations(csp, ghd)?;
    Ok(acyclic_solve(
        &relations,
        &jt,
        csp.num_variables(),
        csp.domains(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csp::examples;
    use ghd_core::bucket::{ghd_from_ordering, vertex_elimination};
    use ghd_core::setcover::CoverMethod;
    use ghd_core::EliminationOrdering;
    use ghd_prng::rngs::StdRng;
    use ghd_prng::SeedableRng;

    fn td_for(csp: &Csp, sigma: &EliminationOrdering) -> TreeDecomposition {
        vertex_elimination(&csp.constraint_hypergraph().primal_graph(), sigma)
    }

    #[test]
    fn example5_solved_from_tree_decomposition() {
        let csp = examples::example5();
        // Fig 2.11's ordering σ = (x6..x1)
        let sigma = EliminationOrdering::new(vec![5, 4, 3, 2, 1, 0]).unwrap();
        let td = td_for(&csp, &sigma);
        let sol = solve_with_tree_decomposition(&csp, &td)
            .unwrap()
            .expect("example 5 is satisfiable");
        assert!(csp.is_solution(&sol));
    }

    #[test]
    fn example5_solved_from_ghd() {
        let csp = examples::example5();
        let sigma = EliminationOrdering::new(vec![5, 4, 3, 2, 1, 0]).unwrap();
        let ghd = ghd_from_ordering(&csp.constraint_hypergraph(), &sigma, CoverMethod::Exact);
        let sol = solve_with_ghd(&csp, &ghd).unwrap().expect("satisfiable");
        assert!(csp.is_solution(&sol));
    }

    #[test]
    fn australia_solved_from_decompositions() {
        let csp = examples::australia();
        let sigma = EliminationOrdering::identity(7);
        let td = td_for(&csp, &sigma);
        let sol = solve_with_tree_decomposition(&csp, &td).unwrap().unwrap();
        assert!(csp.is_solution(&sol));
        let ghd = ghd_from_ordering(&csp.constraint_hypergraph(), &sigma, CoverMethod::Greedy);
        let sol2 = solve_with_ghd(&csp, &ghd).unwrap().unwrap();
        assert!(csp.is_solution(&sol2));
    }

    #[test]
    fn unsatisfiable_csp_detected_through_decomposition() {
        use crate::relation::Relation;
        let mut csp = Csp::with_uniform_domain(3, vec![0, 1]);
        csp.add_constraint(Relation::new(vec![0, 1], vec![vec![0, 0]]));
        csp.add_constraint(Relation::new(vec![1, 2], vec![vec![1, 0]]));
        let sigma = EliminationOrdering::identity(3);
        let td = td_for(&csp, &sigma);
        assert_eq!(solve_with_tree_decomposition(&csp, &td).unwrap(), None);
        let ghd = ghd_from_ordering(&csp.constraint_hypergraph(), &sigma, CoverMethod::Exact);
        assert_eq!(solve_with_ghd(&csp, &ghd).unwrap(), None);
    }

    #[test]
    fn decomposition_solvers_agree_with_brute_force_on_random_csps() {
        let mut rng = StdRng::seed_from_u64(5);
        for seed in 0..10u64 {
            let csp = random_csp(seed);
            let brute = csp.solve_brute_force();
            let sigma = EliminationOrdering::random(csp.num_variables(), &mut rng);
            let td = td_for(&csp, &sigma);
            let td_sol = solve_with_tree_decomposition(&csp, &td).unwrap();
            assert_eq!(brute.is_some(), td_sol.is_some(), "TD seed {seed}");
            if let Some(s) = td_sol {
                assert!(csp.is_solution(&s), "TD seed {seed}");
            }
            let ghd =
                ghd_from_ordering(&csp.constraint_hypergraph(), &sigma, CoverMethod::Exact);
            let ghd_sol = solve_with_ghd(&csp, &ghd).unwrap();
            assert_eq!(brute.is_some(), ghd_sol.is_some(), "GHD seed {seed}");
            if let Some(s) = ghd_sol {
                assert!(csp.is_solution(&s), "GHD seed {seed}");
            }
        }
    }

    /// Random small CSP: 7 variables over {0,1,2}, 5 random ternary/binary
    /// constraints with random tuple subsets.
    fn random_csp(seed: u64) -> Csp {
        use ghd_prng::seq::index::sample;
        use ghd_prng::RngExt;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut csp = Csp::with_uniform_domain(7, vec![0, 1, 2]);
        for _ in 0..5 {
            let arity = rng.random_range(2..=3usize);
            let scope: Vec<usize> = sample(&mut rng, 7, arity).into_iter().collect();
            let total = 3u32.pow(arity as u32);
            let tuples: Vec<Vec<u32>> = (0..total)
                .filter(|_| rng.random_bool(0.6))
                .map(|mut m| {
                    let mut t = vec![0u32; arity];
                    for slot in t.iter_mut() {
                        *slot = m % 3;
                        m /= 3;
                    }
                    t
                })
                .collect();
            csp.add_constraint(Relation::new(scope, tuples));
        }
        csp
    }
}
