//! Algorithm *Adaptive Consistency* (Dechter & Pearl), the bucket-elimination
//! CSP solver the thesis names in §2.5: "bucket elimination algorithms tend
//! to solve CSP by creating a tree decomposition and solving the problem on
//! that tree decomposition".
//!
//! Constraints are distributed into per-variable buckets along an
//! elimination ordering; processing a bucket joins its relations and
//! projects the bucket variable out, placing the resulting constraint into
//! the bucket of its new deepest variable. A backtrack-free forward pass
//! then assembles a solution. Time and space are exponential only in the
//! induced width of the ordering — exactly the width the rest of this
//! workspace minimises.

use crate::csp::{Assignment, Csp};
use crate::relation::{Relation, Value};
use ghd_core::EliminationOrdering;

/// Solves `csp` by adaptive consistency along `σ` (variables processed
/// back-to-front, matching the workspace's elimination convention).
/// Returns `None` iff the CSP has no solution.
///
/// # Panics
/// Panics if `σ.len() != csp.num_variables()`.
pub fn adaptive_consistency(csp: &Csp, sigma: &EliminationOrdering) -> Option<Assignment> {
    let n = csp.num_variables();
    assert_eq!(sigma.len(), n, "ordering/CSP size mismatch");

    // bucket of a relation: its scope variable with the maximum position
    let bucket_of = |r: &Relation| -> Option<usize> {
        r.scope().iter().copied().max_by_key(|&v| sigma.position(v))
    };

    let mut buckets: Vec<Vec<Relation>> = vec![Vec::new(); n];
    for c in csp.constraints() {
        match bucket_of(c) {
            Some(v) => buckets[sigma.position(v)].push(c.clone()),
            None => {
                // 0-ary constraint cannot arise from `Relation`
                unreachable!("relations have nonempty scopes")
            }
        }
    }

    // BACKWARD: process buckets from the back of σ
    for i in (0..n).rev() {
        let v = sigma.at(i);
        let relations = std::mem::take(&mut buckets[i]);
        if relations.is_empty() {
            continue;
        }
        // join all bucket relations, restrict v to its domain, project v out
        let mut joined = relations[0].clone();
        for r in &relations[1..] {
            joined = joined.join(r);
        }
        let domain = Relation::new(
            vec![v],
            csp.domain(v).iter().map(|&val| vec![val]).collect(),
        );
        joined = joined.join(&domain);
        if joined.is_empty() {
            return None;
        }
        buckets[i] = vec![joined.clone()]; // kept for the forward pass
        let rest: Vec<usize> = joined
            .scope()
            .iter()
            .copied()
            .filter(|&x| x != v)
            .collect();
        if rest.is_empty() {
            continue;
        }
        let projected = joined.project(&rest);
        if projected.is_empty() {
            return None;
        }
        let target = bucket_of(&projected).expect("nonempty scope");
        debug_assert!(sigma.position(target) < i);
        buckets[sigma.position(target)].push(projected);
    }

    // FORWARD: assign variables front-to-back; backtrack-free by
    // construction (each bucket's joined relation is consistent with every
    // assignment of earlier variables).
    let mut assignment: Vec<Option<Value>> = vec![None; n];
    for (i, bucket) in buckets.iter().enumerate() {
        let v = sigma.at(i);
        if assignment[v].is_some() {
            continue; // can't happen: each variable assigned at its bucket
        }
        let choice = match bucket.first() {
            Some(r) => {
                let filtered = r.filter_assignment(&assignment);
                let t = filtered.tuples().next()?;
                let col = filtered.column(v).expect("bucket relation contains v");
                t[col]
            }
            // unconstrained at this point: any domain value works
            None => csp.domain(v)[0],
        };
        assignment[v] = Some(choice);
    }
    let solution: Assignment = assignment.into_iter().map(|a| a.expect("assigned")).collect();
    debug_assert!(csp.is_solution(&solution));
    Some(solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csp::examples;

    #[test]
    fn solves_the_thesis_examples() {
        for csp in [examples::australia(), examples::sat_formula(), examples::example5()] {
            let sigma = EliminationOrdering::identity(csp.num_variables());
            let sol = adaptive_consistency(&csp, &sigma).expect("satisfiable");
            assert!(csp.is_solution(&sol));
        }
    }

    #[test]
    fn detects_unsatisfiability() {
        let mut csp = Csp::with_uniform_domain(2, vec![0, 1]);
        csp.add_constraint(Relation::new(vec![0, 1], vec![vec![0, 0]]));
        csp.add_constraint(Relation::new(vec![0, 1], vec![vec![1, 1]]));
        let sigma = EliminationOrdering::identity(2);
        assert_eq!(adaptive_consistency(&csp, &sigma), None);
    }

    #[test]
    fn agrees_with_brute_force_on_random_csps_and_orderings() {
        use ghd_prng::rngs::StdRng;
        use ghd_prng::seq::index::sample;
        use ghd_prng::RngExt;
        for seed in 0..15u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut csp = Csp::with_uniform_domain(7, vec![0, 1, 2]);
            for _ in 0..5 {
                let arity = rng.random_range(2..=3usize);
                let scope: Vec<usize> = sample(&mut rng, 7, arity).into_iter().collect();
                let total = 3u32.pow(arity as u32);
                let tuples: Vec<Vec<u32>> = (0..total)
                    .filter(|_| rng.random_bool(0.6))
                    .map(|mut m| {
                        let mut t = vec![0u32; arity];
                        for slot in t.iter_mut() {
                            *slot = m % 3;
                            m /= 3;
                        }
                        t
                    })
                    .collect();
                csp.add_constraint(Relation::new(scope, tuples));
            }
            let brute = csp.solve_brute_force();
            let sigma = EliminationOrdering::random(7, &mut rng);
            let ac = adaptive_consistency(&csp, &sigma);
            assert_eq!(brute.is_some(), ac.is_some(), "seed {seed}");
            if let Some(s) = ac {
                assert!(csp.is_solution(&s), "seed {seed}");
            }
        }
    }

    #[test]
    fn domain_restrictions_are_enforced() {
        // constraint allows (5,5) but 5 is outside the domain
        let mut csp = Csp::new(vec![vec![0, 1], vec![0, 1]]);
        csp.add_constraint(Relation::new(vec![0, 1], vec![vec![5, 5], vec![1, 0]]));
        let sigma = EliminationOrdering::identity(2);
        let sol = adaptive_consistency(&csp, &sigma).expect("satisfiable via (1,0)");
        assert_eq!(sol, vec![1, 0]);
    }

    #[test]
    fn n_queens_through_adaptive_consistency() {
        let csp = examples::n_queens(5);
        let sigma = EliminationOrdering::identity(5);
        let sol = adaptive_consistency(&csp, &sigma).expect("5-queens solvable");
        assert!(csp.is_solution(&sol));
        assert_eq!(adaptive_consistency(&examples::n_queens(3), &sigma_n(3)), None);
    }

    fn sigma_n(n: usize) -> EliminationOrdering {
        EliminationOrdering::identity(n)
    }
}
