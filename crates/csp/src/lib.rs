//! CSP substrate (§2.2–§2.4): constraint satisfaction problems, relational
//! algebra, join trees, acyclic solving, and end-to-end solving of CSPs from
//! tree decompositions and generalized hypertree decompositions.
//!
//! This is the crate that makes decompositions *useful*: a decomposition of
//! the constraint hypergraph converts the CSP into a solution-equivalent
//! acyclic instance, which [`acyclic::acyclic_solve`] (Fig 2.4) finishes in
//! polynomial time.

pub mod acyclic;
pub mod adaptive;
pub mod csp;
pub mod enumerate;
pub mod naive;
pub mod relation;
pub mod solve;

pub use acyclic::{full_reduce, is_acyclic, solve_acyclic_csp, JoinTree};
pub use adaptive::adaptive_consistency;
pub use csp::{examples, Assignment, Csp};
pub use relation::{Relation, Value};
pub use enumerate::{
    count_solutions_with_ghd, count_solutions_with_ghd_opts, enumerate_solutions_with_ghd,
    enumerate_solutions_with_ghd_opts,
};
pub use solve::{
    solve_with_ghd, solve_with_ghd_opts, solve_with_ghd_stats, solve_with_tree_decomposition,
    SolveError, SolveOptions, SolveStats,
};
