//! The pre-columnar relation engine, kept verbatim as a **reference
//! implementation**: `Vec<Vec<Value>>` tuples, `HashMap<Vec<Value>, _>`
//! join indexes and `HashSet<Vec<Value>>` semijoins — one heap allocation
//! per tuple and per key.
//!
//! It exists for two jobs only:
//!
//! 1. **differential testing** — the columnar kernels in [`crate::relation`]
//!    are checked tuple-for-tuple against this model, and
//! 2. **benchmarking** — `bench_join` times the old engine against the new
//!    one on identical workloads (`BENCH_csp.json`).
//!
//! Production code paths must use [`crate::Relation`].

use crate::relation::Value;

/// A relation with per-tuple heap allocation (the pre-PR representation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaiveRelation {
    scope: Vec<usize>,
    tuples: Vec<Vec<Value>>,
}

impl NaiveRelation {
    /// Creates a relation.
    ///
    /// # Panics
    /// Panics if the scope contains duplicates or a tuple has the wrong
    /// arity.
    pub fn new(scope: Vec<usize>, tuples: Vec<Vec<Value>>) -> Self {
        let mut sorted = scope.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), scope.len(), "duplicate variable in scope");
        for t in &tuples {
            assert_eq!(t.len(), scope.len(), "tuple arity mismatch");
        }
        NaiveRelation { scope, tuples }
    }

    /// Converts from the columnar engine (test/bench bridging).
    pub fn from_relation(r: &crate::Relation) -> Self {
        NaiveRelation {
            scope: r.scope().to_vec(),
            tuples: r.tuples_vec(),
        }
    }

    /// The full relation over `scope` given per-variable domains.
    pub fn full(scope: Vec<usize>, domains: &[Vec<Value>]) -> Self {
        let mut tuples: Vec<Vec<Value>> = vec![Vec::new()];
        for &v in &scope {
            let mut next = Vec::with_capacity(tuples.len() * domains[v].len());
            for t in &tuples {
                for &val in &domains[v] {
                    let mut t2 = t.clone();
                    t2.push(val);
                    next.push(t2);
                }
            }
            tuples = next;
        }
        NaiveRelation { scope, tuples }
    }

    /// The scope (variable ids, in column order).
    pub fn scope(&self) -> &[usize] {
        &self.scope
    }

    /// The tuples.
    pub fn tuples(&self) -> &[Vec<Value>] {
        &self.tuples
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` iff the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Column index of variable `v`, if in scope.
    pub fn column(&self, v: usize) -> Option<usize> {
        self.scope.iter().position(|&x| x == v)
    }

    /// Key of a tuple restricted to the columns `cols` (allocates).
    fn key(t: &[Value], cols: &[usize]) -> Vec<Value> {
        cols.iter().map(|&c| t[c]).collect()
    }

    /// Natural join `self ⋈ other` (hash join with `Vec<Value>` keys).
    pub fn join(&self, other: &NaiveRelation) -> NaiveRelation {
        let shared: Vec<usize> = self
            .scope
            .iter()
            .copied()
            .filter(|&v| other.column(v).is_some())
            .collect();
        let self_cols: Vec<usize> = shared.iter().map(|&v| self.column(v).unwrap()).collect();
        let other_cols: Vec<usize> = shared.iter().map(|&v| other.column(v).unwrap()).collect();
        let extra: Vec<usize> = other
            .scope
            .iter()
            .copied()
            .filter(|&v| self.column(v).is_none())
            .collect();
        let extra_cols: Vec<usize> = extra.iter().map(|&v| other.column(v).unwrap()).collect();

        use std::collections::HashMap;
        let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (i, t) in other.tuples.iter().enumerate() {
            index.entry(Self::key(t, &other_cols)).or_default().push(i);
        }
        let mut scope = self.scope.clone();
        scope.extend(&extra);
        let mut tuples = Vec::new();
        for t in &self.tuples {
            if let Some(matches) = index.get(&Self::key(t, &self_cols)) {
                for &j in matches {
                    let mut row = t.clone();
                    row.extend(extra_cols.iter().map(|&c| other.tuples[j][c]));
                    tuples.push(row);
                }
            }
        }
        NaiveRelation { scope, tuples }
    }

    /// Semijoin `self ⋉ other` (hash set of `Vec<Value>` keys). Returns
    /// `true` if any tuple was removed.
    pub fn semijoin(&mut self, other: &NaiveRelation) -> bool {
        let shared: Vec<usize> = self
            .scope
            .iter()
            .copied()
            .filter(|&v| other.column(v).is_some())
            .collect();
        if shared.is_empty() {
            if other.is_empty() && !self.is_empty() {
                self.tuples.clear();
                return true;
            }
            return false;
        }
        let self_cols: Vec<usize> = shared.iter().map(|&v| self.column(v).unwrap()).collect();
        let other_cols: Vec<usize> = shared.iter().map(|&v| other.column(v).unwrap()).collect();
        use std::collections::HashSet;
        let keys: HashSet<Vec<Value>> = other
            .tuples
            .iter()
            .map(|t| Self::key(t, &other_cols))
            .collect();
        let before = self.tuples.len();
        self.tuples.retain(|t| keys.contains(&Self::key(t, &self_cols)));
        self.tuples.len() != before
    }

    /// Projection `π_vars(self)` with duplicate elimination.
    ///
    /// # Panics
    /// Panics if some requested variable is not in scope.
    pub fn project(&self, vars: &[usize]) -> NaiveRelation {
        let cols: Vec<usize> = vars
            .iter()
            .map(|&v| self.column(v).expect("projection variable not in scope"))
            .collect();
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        let mut tuples = Vec::new();
        for t in &self.tuples {
            let row = Self::key(t, &cols);
            if seen.insert(row.clone()) {
                tuples.push(row);
            }
        }
        NaiveRelation {
            scope: vars.to_vec(),
            tuples,
        }
    }

    /// Keeps only tuples compatible with a partial assignment.
    pub fn filter_assignment(&self, assignment: &[Option<Value>]) -> NaiveRelation {
        let tuples = self
            .tuples
            .iter()
            .filter(|t| {
                self.scope
                    .iter()
                    .zip(t.iter())
                    .all(|(&v, &val)| assignment[v].is_none_or(|a| a == val))
            })
            .cloned()
            .collect();
        NaiveRelation {
            scope: self.scope.clone(),
            tuples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bridge_from_columnar_round_trips() {
        let r = crate::Relation::new(vec![0, 1], vec![vec![1, 2], vec![3, 4]]);
        let n = NaiveRelation::from_relation(&r);
        assert_eq!(n.scope(), r.scope());
        assert_eq!(n.tuples().to_vec(), r.tuples_vec());
    }

    #[test]
    fn naive_join_semijoin_project_basics() {
        let a = NaiveRelation::new(vec![0, 1], vec![vec![1, 2], vec![1, 3], vec![2, 2]]);
        let b = NaiveRelation::new(vec![1, 2], vec![vec![2, 9], vec![3, 8]]);
        let j = a.join(&b);
        assert_eq!(j.len(), 3);
        let mut a2 = a.clone();
        assert!(a2.semijoin(&NaiveRelation::new(vec![1], vec![vec![2]])));
        assert_eq!(a2.len(), 2);
        assert_eq!(a.project(&[0]).len(), 2);
    }
}
