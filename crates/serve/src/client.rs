//! Minimal blocking client for the wire protocol: one request line out,
//! one response line back, in order.

use crate::protocol::{Request, Response};
use crate::server::Stream;
use std::io::{BufRead, BufReader, Write};
use std::io;

/// A connected client. Requests block until the daemon answers — a solve
/// may legitimately take as long as its `--time` budget allows, so no
/// read timeout is imposed here.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
}

impl Client {
    /// Connects to `addr` (`unix:PATH` or a TCP address).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = Stream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Sends one raw line and reads one raw line back (both without the
    /// trailing newline).
    pub fn roundtrip_line(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }

    /// Reads one unsolicited line from the daemon (without the trailing
    /// newline). Used for lines the daemon sends on its own — e.g. the
    /// `busy` shed line written when the connection cap is reached.
    pub fn read_line(&mut self) -> io::Result<String> {
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }

    /// Sends `req` and parses the daemon's response.
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        let reply = self.roundtrip_line(&req.render())?;
        Response::parse(&reply)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad response: {e}")))
    }
}
