//! SIGTERM/SIGINT handling for the daemon, without the `libc` crate.
//!
//! `std` already links the platform C library, so the two symbols needed
//! here — `signal(2)` registration — can be declared directly. The
//! handler is async-signal-safe by construction: it stores into static
//! atomics and nothing else. The accept loop polls [`signal_count`] on
//! its existing idle tick (bounded by its poll interval), so no pipe or
//! thread is needed.
//!
//! Semantics (implemented in the server's accept loop):
//! * first signal — graceful drain, exactly like a `shutdown` request:
//!   in-flight solves finish, the cache log is fsynced, the summary
//!   prints;
//! * second signal — cooperative cancellation of every in-flight solve,
//!   so a drain stuck behind a long search still converges with certified
//!   anytime answers.

use std::sync::atomic::{AtomicUsize, Ordering};

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

/// Signals observed since [`install`]. Written only by the handler.
static SIGNALS: AtomicUsize = AtomicUsize::new(0);

extern "C" {
    /// `signal(2)`. `usize` stands in for the handler function pointer /
    /// `SIG_ERR` sentinel; only registration success matters here.
    fn signal(signum: i32, handler: usize) -> usize;
}

/// The handler: bump a counter. Storing to an atomic is on POSIX's
/// async-signal-safe list; nothing else is done in signal context.
extern "C" fn on_signal(_signum: i32) {
    SIGNALS.fetch_add(1, Ordering::Relaxed);
}

/// Registers the drain handler for SIGTERM and SIGINT. Idempotent;
/// process-global (calling it from a test binary affects the whole test
/// process, so only the daemon entry point should call it).
pub fn install() {
    unsafe {
        signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
    }
}

/// How many SIGTERM/SIGINT deliveries have been observed so far.
pub fn signal_count() -> usize {
    SIGNALS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_starts_clean_and_handler_is_registerable() {
        // `install` must not clobber anything at registration time; the
        // count only moves when a signal is actually delivered.
        let before = signal_count();
        install();
        install(); // idempotent
        assert_eq!(signal_count(), before);
    }
}
