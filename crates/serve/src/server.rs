//! The daemon: socket accept loop, bounded dispatch queue, worker pool,
//! decomposition cache, and graceful drain.
//!
//! ```text
//! client ──line──▶ connection thread ──try_send──▶ bounded queue
//!                        │   ▲                          │
//!                        │   └─── reply channel ◀── worker pool
//!                        ▼                              │
//!                   busy (503)                 cache probe / solve / admit
//! ```
//!
//! One thread per connection reads request lines and *blocks* on the reply
//! channel, so each connection sees responses in request order. The solve
//! queue between connections and workers is a bounded
//! [`std::sync::mpsc::sync_channel`]: when it is full, `try_send` fails
//! immediately and the client gets a `busy` (503) line instead of
//! unbounded buffering — backpressure is explicit and cheap.
//!
//! A `shutdown` request flips the drain flag: new solves are refused
//! (`draining`, 503), in-flight solves finish and are delivered, the
//! accept loop stops once every connection has wound down, and
//! [`Server::run`] returns a one-line summary. Worker panics are contained
//! per request with [`std::panic::catch_unwind`] — a poisoned request
//! yields an error response (code 70), never a dead daemon.

use crate::protocol::{Request, Response};
use crate::{signal, CancelFlag, SolveError, SolveOutcome, Solver};
use ghd_core::canon::log::CacheLog;
use ghd_core::canon::{CachedDecomp, DecompCache};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use std::{fmt, io, thread};

/// How long a connection read blocks before re-checking the drain flag,
/// and how long the accept loop naps when idle. Bounds drain latency.
const POLL: Duration = Duration::from_millis(100);

/// Sizing knobs for [`Server::bind`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Solver threads; `0` = one per core ([`ghd_par::num_threads`]).
    pub workers: usize,
    /// Bounded solve-queue depth; a full queue answers `busy` (503).
    pub queue: usize,
    /// Decomposition-cache byte cap.
    pub cache_bytes: usize,
    /// Append-only cache log: admitted entries are spilled here and
    /// replayed (with verification) at boot. `None` = memory only.
    pub log_path: Option<PathBuf>,
    /// Concurrent-connection cap; connections over it are shed with an
    /// immediate `busy` (503) line instead of an unbounded thread pile.
    pub max_conns: usize,
    /// Idle-connection timeout: a connection with no complete request for
    /// this long is closed. `None` = never.
    pub idle_timeout: Option<Duration>,
    /// Periodic one-line stats snapshot to the access log (stderr):
    /// requests, cache bytes/hits, queue depth, in-flight solves, replays.
    /// `None` = off.
    pub stats_interval: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 0,
            queue: 64,
            cache_bytes: 32 << 20,
            log_path: None,
            max_conns: 256,
            idle_timeout: Some(Duration::from_secs(300)),
            stats_interval: None,
        }
    }
}

/// Aggregate request telemetry, served by the `stats` endpoint.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeStats {
    /// Request lines accepted (solves and control commands).
    pub requests: u64,
    /// Solve requests answered with a body.
    pub completed: u64,
    /// Solve requests answered from the decomposition cache.
    pub cache_hits: u64,
    /// Solve requests rejected because the queue was full.
    pub busy_rejections: u64,
    /// Solve requests that returned an error (bad flags, bad instance,
    /// contained worker panic).
    pub errors: u64,
    /// Worker faults contained inside completed solves.
    pub faults: u64,
    /// Node expansions spent across all completed solves.
    pub nodes_expanded: u64,
    /// Total seconds requests sat in the queue before a worker took them.
    pub queue_wait_s: f64,
    /// Total solve wall-clock seconds.
    pub wall_s: f64,
    /// Solves stopped by a `cancel` request (answered with certified
    /// anytime bounds; counted under `completed` as well).
    pub cancelled: u64,
    /// Connections shed at accept because the connection cap was reached.
    pub conn_rejections: u64,
    /// Connections closed by the per-connection idle timeout.
    pub idle_closed: u64,
    /// Cache-log records replayed (verified) into the cache at boot.
    pub replayed: u64,
    /// Cache-log records that survived their checksum but failed solver
    /// verification at boot (skipped, never admitted).
    pub replay_verify_rejects: u64,
    /// Seconds spent replaying the cache log at boot.
    pub boot_replay_s: f64,
}

/// `unix:PATH` or a TCP host:port, with the bound form reported back.
enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn bind(addr: &str) -> io::Result<Listener> {
        if let Some(path) = addr.strip_prefix("unix:") {
            // a stale socket file from a dead daemon would make bind fail
            let _ = std::fs::remove_file(path);
            Ok(Listener::Unix(UnixListener::bind(path)?, PathBuf::from(path)))
        } else {
            Ok(Listener::Tcp(TcpListener::bind(addr)?))
        }
    }

    fn set_nonblocking(&self, on: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(on),
            Listener::Unix(l, _) => l.set_nonblocking(on),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| {
                // request/response lines are tiny; Nagle+delayed-ACK adds
                // tens of milliseconds per roundtrip for nothing
                let _ = s.set_nodelay(true);
                Stream::Tcp(s)
            }),
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
        }
    }

    fn local_addr(&self) -> String {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unbound>".into()),
            Listener::Unix(_, p) => format!("unix:{}", p.display()),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// A connected peer, TCP or Unix, unified behind `Read`/`Write`.
pub(crate) enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    pub(crate) fn connect(addr: &str) -> io::Result<Stream> {
        if let Some(path) = addr.strip_prefix("unix:") {
            UnixStream::connect(path).map(Stream::Unix)
        } else {
            let s = TcpStream::connect(addr)?;
            let _ = s.set_nodelay(true);
            Ok(Stream::Tcp(s))
        }
    }

    pub(crate) fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }

    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(d),
            Stream::Unix(s) => s.set_read_timeout(d),
        }
    }
}

impl io::Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl io::Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// State shared by the accept loop, connection threads, and workers.
struct Shared {
    solver: Arc<dyn Solver>,
    cache: Mutex<DecompCache>,
    /// The append-only persistence log, when configured.
    log: Mutex<Option<CacheLog>>,
    stats: Mutex<ServeStats>,
    draining: AtomicBool,
    /// Solve jobs accepted but not yet answered; drain waits for zero.
    outstanding: AtomicUsize,
    /// In-flight solves by client-chosen correlation id, for the `cancel`
    /// verb. Ids are client-owned, so duplicates are possible: a cancel
    /// flips *every* matching flag; entries are removed by flag identity.
    inflight: Mutex<Vec<(u64, CancelFlag)>>,
    /// Open connections, for the connection cap.
    conns: AtomicUsize,
    workers: usize,
}

impl Shared {
    /// Spills an admitted entry to the cache log, if one is configured.
    fn log_append(&self, key: &ghd_core::canon::CacheKey, value: &CachedDecomp) {
        let mut log = self.log.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(log) = log.as_mut() {
            if let Err(e) = log.append(key, value) {
                eprintln!("ghd-serve: cache-log append failed: {e}");
            }
        }
    }

    /// Flips the cancel flag of every in-flight solve with correlation id
    /// `target`; returns how many were flipped.
    fn cancel_inflight(&self, target: u64) -> usize {
        let inflight = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
        let mut n = 0;
        for (id, flag) in inflight.iter() {
            if *id == target {
                flag.store(true, Ordering::Relaxed);
                n += 1;
            }
        }
        n
    }

    /// Cancels *every* in-flight solve (second-signal escalation).
    fn cancel_all(&self) -> usize {
        let inflight = self.inflight.lock().unwrap_or_else(|p| p.into_inner());
        for (_, flag) in inflight.iter() {
            flag.store(true, Ordering::Relaxed);
        }
        inflight.len()
    }

    /// One structured stats line on stderr, in the access-log style:
    /// emitted every `--stats-interval` seconds by the accept loop.
    fn snapshot_line(&self) {
        let stats = *self.stats.lock().unwrap_or_else(|p| p.into_inner());
        let (cache_stats, cache_bytes, cache_entries) = {
            let cache = self.cache.lock().unwrap_or_else(|p| p.into_inner());
            (cache.stats(), cache.bytes(), cache.len())
        };
        let queued = self.outstanding.load(Ordering::Acquire);
        let inflight = self.inflight.lock().unwrap_or_else(|p| p.into_inner()).len();
        eprintln!(
            "ghd-serve: snapshot requests={} completed={} errors={} busy={} \
             cache_hits={} cache_entries={cache_entries} cache_bytes={cache_bytes} \
             queue_depth={queued} inflight={inflight} replayed={} conns={}",
            stats.requests,
            stats.completed,
            stats.errors,
            stats.busy_rejections,
            cache_stats.hits,
            stats.replayed,
            self.conns.load(Ordering::Acquire),
        );
    }
}

/// One queued solve: the request, where to send the answer, this solve's
/// cancellation flag, and when it entered the queue (for the
/// `queue_wait_s` telemetry).
struct Job {
    req: Request,
    reply: std::sync::mpsc::Sender<Response>,
    cancel: CancelFlag,
    enqueued: Instant,
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    listener: Listener,
    cfg: ServerConfig,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `addr` (`unix:PATH`, or a TCP address like `127.0.0.1:7171`;
    /// TCP port `0` picks a free port — read it back with
    /// [`local_addr`](Server::local_addr)).
    pub fn bind(addr: &str, cfg: ServerConfig, solver: Arc<dyn Solver>) -> io::Result<Server> {
        let listener = Listener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let workers = if cfg.workers == 0 { ghd_par::num_threads() } else { cfg.workers };
        let mut cache = DecompCache::new(cfg.cache_bytes);
        let mut stats = ServeStats::default();
        let log = match &cfg.log_path {
            None => None,
            Some(path) => {
                let t0 = Instant::now();
                let (log, records, report) =
                    CacheLog::open(path, |r| solver.verify_replay(&r.key))?;
                for r in records {
                    cache.admit(r.key, r.value);
                }
                stats.replayed = report.replayed as u64;
                stats.replay_verify_rejects = report.verify_rejects as u64;
                stats.boot_replay_s = t0.elapsed().as_secs_f64();
                eprintln!(
                    "ghd-serve: cache-log replayed {} entries ({} rejected by verification) \
                     from {} in {:.3}s",
                    report.replayed,
                    report.verify_rejects,
                    path.display(),
                    stats.boot_replay_s,
                );
                if report.truncated() {
                    eprintln!(
                        "ghd-serve: cache-log corrupt tail dropped ({} bytes truncated at \
                         offset {})",
                        report.corrupt_tail_bytes, report.valid_prefix_bytes,
                    );
                }
                Some(log)
            }
        };
        let shared = Arc::new(Shared {
            solver,
            cache: Mutex::new(cache),
            log: Mutex::new(log),
            stats: Mutex::new(stats),
            draining: AtomicBool::new(false),
            outstanding: AtomicUsize::new(0),
            inflight: Mutex::new(Vec::new()),
            conns: AtomicUsize::new(0),
            workers,
        });
        Ok(Server { listener, cfg, shared })
    }

    /// The bound address, in the same syntax [`bind`](Server::bind) takes.
    pub fn local_addr(&self) -> String {
        self.listener.local_addr()
    }

    /// Serves until a `shutdown` request drains the daemon; returns a
    /// one-line summary of the session.
    pub fn run(self) -> String {
        let (tx, rx) = sync_channel::<Job>(self.cfg.queue.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<_> = (0..self.shared.workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let shared = Arc::clone(&self.shared);
                thread::spawn(move || worker_loop(&rx, &shared))
            })
            .collect();

        let mut conns: Vec<thread::JoinHandle<()>> = Vec::new();
        // signals observed before boot (e.g. a stale count from a test
        // process) don't count against this run
        let signal_floor = signal::signal_count();
        let mut signals_handled = 0;
        let mut next_snapshot = self.cfg.stats_interval.map(|iv| Instant::now() + iv);
        loop {
            if let (Some(at), Some(iv)) = (next_snapshot, self.cfg.stats_interval) {
                if Instant::now() >= at {
                    self.shared.snapshot_line();
                    next_snapshot = Some(Instant::now() + iv);
                }
            }
            // first SIGTERM/SIGINT = graceful drain (like `shutdown`);
            // second = cancel all in-flight solves so the drain converges
            let observed = signal::signal_count().saturating_sub(signal_floor);
            if observed > signals_handled {
                signals_handled = observed;
                if signals_handled == 1 {
                    eprintln!("ghd-serve: signal received — draining");
                    self.shared.draining.store(true, Ordering::Release);
                } else {
                    let n = self.shared.cancel_all();
                    eprintln!("ghd-serve: second signal — cancelling {n} in-flight solves");
                }
            }
            match self.listener.accept() {
                Ok(stream) => {
                    if self.shared.draining.load(Ordering::Acquire) {
                        continue; // connection dropped; the daemon is going away
                    }
                    // connection cap: shed with an immediate busy line
                    // rather than piling up threads without bound
                    if self.shared.conns.load(Ordering::Acquire) >= self.cfg.max_conns {
                        self.shared.stats.lock().unwrap_or_else(|p| p.into_inner()).conn_rejections +=
                            1;
                        let mut stream = stream;
                        let shed =
                            Response::fail(None, 503, "busy: connection limit reached");
                        let _ = stream
                            .write_all(shed.render().as_bytes())
                            .and_then(|()| stream.write_all(b"\n"));
                        continue;
                    }
                    self.shared.conns.fetch_add(1, Ordering::AcqRel);
                    let shared = Arc::clone(&self.shared);
                    let tx = tx.clone();
                    let idle = self.cfg.idle_timeout;
                    conns.push(thread::spawn(move || {
                        handle_conn(stream, &shared, &tx, idle);
                        shared.conns.fetch_sub(1, Ordering::AcqRel);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    conns.retain(|h| !h.is_finished());
                    if self.shared.draining.load(Ordering::Acquire) && conns.is_empty() {
                        break;
                    }
                    thread::sleep(POLL / 5);
                }
                Err(_) => {
                    if self.shared.draining.load(Ordering::Acquire) {
                        break;
                    }
                    thread::sleep(POLL / 5);
                }
            }
        }
        for h in conns {
            let _ = h.join();
        }
        drop(tx); // workers drain the queue, then see the hangup and exit
        for w in workers {
            let _ = w.join();
        }
        debug_assert_eq!(self.shared.outstanding.load(Ordering::Acquire), 0);
        // every admitted entry reaches the device before the summary
        // claims a clean drain
        {
            let mut log = self.shared.log.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(log) = log.as_mut() {
                if let Err(e) = log.sync() {
                    eprintln!("ghd-serve: cache-log fsync failed: {e}");
                } else {
                    eprintln!(
                        "ghd-serve: cache-log synced ({} entries appended this session)",
                        log.appends()
                    );
                }
            }
        }
        let stats = *self.shared.stats.lock().unwrap_or_else(|p| p.into_inner());
        let cache = self.shared.cache.lock().unwrap_or_else(|p| p.into_inner());
        format!(
            "ghd-serve: drained clean — {} completed ({} cache hits, {} cancelled), {} errors, \
             {} busy rejections, {} connections shed, cache {} entries / {} bytes\n",
            stats.completed,
            stats.cache_hits,
            stats.cancelled,
            stats.errors,
            stats.busy_rejections,
            stats.conn_rejections,
            cache.len(),
            cache.bytes(),
        )
    }
}

/// Reads request lines off one connection until EOF, drain, or idle
/// timeout, answering each in order. Read timeouts bound how long a drain
/// waits on an idle connection; `idle` bounds how long a silent peer may
/// hold a connection slot.
fn handle_conn(
    stream: Stream,
    shared: &Arc<Shared>,
    tx: &SyncSender<Job>,
    idle: Option<Duration>,
) {
    let _ = stream.set_read_timeout(Some(POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // `read_line` appends, so a line split across read timeouts
    // accumulates here until its newline arrives.
    let mut line = String::new();
    // idle = time since the last complete request (dispatch runs in this
    // thread, so a long solve never counts as idleness)
    let mut last_request = Instant::now();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break, // EOF; a trailing unterminated line is not a request
            Ok(_) => {
                if !line.ends_with('\n') {
                    continue;
                }
                let text = std::mem::take(&mut line);
                if text.trim().is_empty() {
                    continue;
                }
                let resp = dispatch(text.trim(), shared, tx);
                last_request = Instant::now();
                if writer
                    .write_all(resp.render().as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    break; // peer went away; nothing left to deliver
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.draining.load(Ordering::Acquire) {
                    break;
                }
                if let Some(limit) = idle {
                    if last_request.elapsed() >= limit {
                        shared.stats.lock().unwrap_or_else(|p| p.into_inner()).idle_closed += 1;
                        break;
                    }
                }
            }
            Err(_) => break,
        }
    }
}

/// Routes one request line: control commands inline, solves through the
/// bounded queue with a blocking wait for the worker's reply. Every
/// request leaves one structured access-log line on stderr.
fn dispatch(text: &str, shared: &Arc<Shared>, tx: &SyncSender<Job>) -> Response {
    let req = match Request::parse(text) {
        Ok(r) => r,
        Err(e) => {
            let resp = Response::fail(None, 64, format!("bad request: {e}"));
            access_log(&Request::control(None, "<unparseable>"), &resp);
            return resp;
        }
    };
    shared.stats.lock().unwrap_or_else(|p| p.into_inner()).requests += 1;
    let resp = match req.cmd.as_str() {
        "ping" => Response::ok_body(req.id, "pong"),
        "shutdown" => {
            shared.draining.store(true, Ordering::Release);
            Response::ok_body(req.id, "draining")
        }
        "cancel" => match req.target {
            None => Response::fail(req.id, 64, "cancel requires a `target` request id"),
            Some(target) => {
                let flipped = shared.cancel_inflight(target);
                if flipped == 0 {
                    Response::fail(req.id, 69, format!("no in-flight request with id {target}"))
                } else {
                    Response::ok_body(req.id, format!("cancelling {flipped} in-flight solve(s)"))
                }
            }
        },
        "stats" => {
            let stats = *shared.stats.lock().unwrap_or_else(|p| p.into_inner());
            let (cache_stats, cache_bytes) = {
                let cache = shared.cache.lock().unwrap_or_else(|p| p.into_inner());
                (cache.stats(), cache.bytes())
            };
            Response::ok_body(req.id, render_stats(&stats, &cache_stats, cache_bytes, shared.workers))
        }
        "tw" | "ghw" => {
            if shared.draining.load(Ordering::Acquire) {
                let resp = Response::fail(req.id, 503, "draining");
                access_log(&req, &resp);
                return resp;
            }
            let id = req.id;
            let (reply_tx, reply_rx) = std::sync::mpsc::channel();
            let cancel: CancelFlag = Arc::new(AtomicBool::new(false));
            // register for the `cancel` verb before the job can run; ids
            // are client-chosen, so only registered while in flight
            if let Some(rid) = id {
                shared
                    .inflight
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .push((rid, Arc::clone(&cancel)));
            }
            shared.outstanding.fetch_add(1, Ordering::AcqRel);
            let job =
                Job { req: req.clone(), reply: reply_tx, cancel: Arc::clone(&cancel), enqueued: Instant::now() };
            let resp = match tx.try_send(job) {
                Ok(()) => reply_rx
                    .recv()
                    .unwrap_or_else(|_| Response::fail(id, 70, "worker dropped the request")),
                Err(TrySendError::Full(_)) => {
                    shared.stats.lock().unwrap_or_else(|p| p.into_inner()).busy_rejections += 1;
                    Response::fail(id, 503, "busy")
                }
                Err(TrySendError::Disconnected(_)) => Response::fail(id, 503, "draining"),
            };
            shared.outstanding.fetch_sub(1, Ordering::AcqRel);
            if let Some(rid) = id {
                shared
                    .inflight
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .retain(|(i, f)| *i != rid || !Arc::ptr_eq(f, &cancel));
            }
            resp
        }
        other => Response::fail(req.id, 64, format!("unknown command `{other}`")),
    };
    access_log(&req, &resp);
    resp
}

/// One structured line per request on stderr: correlation id, verb, cache
/// disposition, queue/solve timings, and the outcome class.
fn access_log(req: &Request, resp: &Response) {
    let id = req.id.map_or_else(|| "-".into(), |i| i.to_string());
    let cache = match resp.cache_hit {
        Some(true) => "hit",
        Some(false) => "miss",
        None => "-",
    };
    let fmt_s = |v: Option<f64>| v.map_or_else(|| "-".into(), |s| format!("{s:.6}"));
    let outcome = if resp.cancelled == Some(true) {
        "cancelled".to_string()
    } else if resp.ok {
        "ok".to_string()
    } else {
        match (resp.code, resp.error.as_deref()) {
            (Some(503), Some(e)) if e.starts_with("busy") => "busy".to_string(),
            (Some(503), _) => "draining".to_string(),
            (Some(c), _) => format!("error:{c}"),
            (None, _) => "error".to_string(),
        }
    };
    eprintln!(
        "ghd-serve: access id={id} verb={} cache={cache} queue_wait_s={} wall_s={} outcome={outcome}",
        req.cmd,
        fmt_s(resp.queue_wait_s),
        fmt_s(resp.wall_s),
    );
}

/// One worker: take a job, answer from cache or solve, admit the result.
fn worker_loop(rx: &Mutex<Receiver<Job>>, shared: &Arc<Shared>) {
    loop {
        // hold the lock only for the blocking receive; a `recv` error
        // means the accept loop hung up the channel: drain is complete
        let job = match rx.lock().unwrap_or_else(|p| p.into_inner()).recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let resp = answer(&job, shared);
        let _ = job.reply.send(resp);
    }
}

fn answer(job: &Job, shared: &Arc<Shared>) -> Response {
    let wait = job.enqueued.elapsed().as_secs_f64();
    let req = &job.req;
    let key = shared.solver.cache_key(&req.cmd, &req.instance, &req.args);
    if let Some(k) = &key {
        let hit = shared.cache.lock().unwrap_or_else(|p| p.into_inner()).probe(k);
        if let Some(cached) = hit {
            let mut stats = shared.stats.lock().unwrap_or_else(|p| p.into_inner());
            stats.completed += 1;
            stats.cache_hits += 1;
            stats.queue_wait_s += wait;
            return Response {
                id: req.id,
                ok: true,
                body: Some(cached.body),
                cache_hit: Some(true),
                // admission policy: only certified exact results enter
                exact: Some(true),
                certified: Some(true),
                nodes_expanded: Some(0),
                faults: Some(0),
                queue_wait_s: Some(wait),
                wall_s: Some(0.0),
                ..Response::default()
            };
        }
    }
    let start = Instant::now();
    let solver = Arc::clone(&shared.solver);
    let solved: Result<SolveOutcome, SolveError> = match catch_unwind(AssertUnwindSafe(|| {
        solver.solve(&req.cmd, &req.instance, &req.args, &job.cancel)
    })) {
            Ok(r) => r,
            Err(panic) => {
                let what = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                Err(SolveError { code: 70, message: format!("solver panicked: {what}") })
            }
        };
    let wall = start.elapsed().as_secs_f64();
    match solved {
        Ok(outcome) => {
            if let (Some(k), true) = (key, outcome.cacheable && outcome.certified && outcome.exact) {
                let value = CachedDecomp { body: outcome.body.clone(), width: outcome.width };
                // spill before admit: the in-memory cache may evict, the
                // log keeps the entry for the next boot regardless
                shared.log_append(&k, &value);
                shared.cache.lock().unwrap_or_else(|p| p.into_inner()).admit(k, value);
            }
            let mut stats = shared.stats.lock().unwrap_or_else(|p| p.into_inner());
            stats.completed += 1;
            stats.faults += outcome.faults as u64;
            stats.nodes_expanded += outcome.nodes_expanded;
            stats.queue_wait_s += wait;
            stats.wall_s += wall;
            if outcome.cancelled {
                stats.cancelled += 1;
            }
            Response {
                id: req.id,
                ok: true,
                body: Some(outcome.body),
                cache_hit: Some(false),
                exact: Some(outcome.exact),
                certified: Some(outcome.certified),
                cancelled: outcome.cancelled.then_some(true),
                nodes_expanded: Some(outcome.nodes_expanded),
                faults: Some(outcome.faults as u64),
                queue_wait_s: Some(wait),
                wall_s: Some(wall),
                ..Response::default()
            }
        }
        Err(e) => {
            let mut stats = shared.stats.lock().unwrap_or_else(|p| p.into_inner());
            stats.errors += 1;
            stats.queue_wait_s += wait;
            stats.wall_s += wall;
            Response::fail(req.id, e.code, e.message)
        }
    }
}

/// Renders the `stats` endpoint body: one JSON document with the request
/// aggregates and the cache counters.
fn render_stats(
    s: &ServeStats,
    cache: &ghd_core::setcover::CacheStats,
    cache_bytes: usize,
    workers: usize,
) -> String {
    let mut out = String::from("{");
    let mut w = |f: fmt::Arguments| {
        use fmt::Write as _;
        let _ = out.write_fmt(f);
    };
    w(format_args!("\"workers\": {workers}"));
    w(format_args!(", \"requests\": {}", s.requests));
    w(format_args!(", \"completed\": {}", s.completed));
    w(format_args!(", \"errors\": {}", s.errors));
    w(format_args!(", \"busy_rejections\": {}", s.busy_rejections));
    w(format_args!(", \"faults\": {}", s.faults));
    w(format_args!(", \"nodes_expanded\": {}", s.nodes_expanded));
    w(format_args!(", \"queue_wait_s\": {:.6}", s.queue_wait_s));
    w(format_args!(", \"wall_s\": {:.6}", s.wall_s));
    w(format_args!(", \"cancelled\": {}", s.cancelled));
    w(format_args!(", \"conn_rejections\": {}", s.conn_rejections));
    w(format_args!(", \"idle_closed\": {}", s.idle_closed));
    w(format_args!(", \"replayed\": {}", s.replayed));
    w(format_args!(", \"replay_verify_rejects\": {}", s.replay_verify_rejects));
    w(format_args!(", \"boot_replay_s\": {:.6}", s.boot_replay_s));
    w(format_args!(
        ", \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"entries\": {}, \"bytes\": {}}}",
        cache.hits, cache.misses, cache.evictions, cache.entries, cache_bytes
    ));
    out.push('}');
    out
}
