//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, in order. Both
//! sides use the workspace's zero-dependency [`ghd_core::json`] parser;
//! rendering is hand-rolled (the parser is read-only by design).
//!
//! Request: `{"id": 1, "cmd": "tw", "instance": "p edge …", "args":
//! ["--method", "bb"]}` — `id` is an optional client-chosen correlation
//! number echoed back verbatim; `instance` carries the full instance file
//! text; `args` are exactly the flags the one-shot CLI would take.
//! Control commands `ping`, `stats`, and `shutdown` need no instance.
//!
//! Response: `{"id": 1, "ok": true, "body": "…", "cache_hit": false,
//! "exact": true, …}` on success, `{"id": 1, "ok": false, "error": "…",
//! "code": 64}` on failure. `code` follows the CLI's `sysexits` mapping,
//! plus `503` for backpressure (`busy`) and drain (`draining`) rejections.

use ghd_core::json::{escape, Json};
use std::fmt::Write as _;

/// One client request (see the module docs for the wire shape).
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// `tw`, `ghw`, `ping`, `stats`, `cancel`, or `shutdown`.
    pub cmd: String,
    /// Full instance file text (solve commands only).
    pub instance: String,
    /// CLI flags for the solve, e.g. `["--method", "bb"]`.
    pub args: Vec<String>,
    /// For `cancel`: the correlation id of the in-flight solve to stop.
    pub target: Option<u64>,
}

impl Request {
    /// A solve request for `cmd` over `instance` with `args`.
    pub fn solve(id: Option<u64>, cmd: &str, instance: &str, args: &[String]) -> Request {
        Request { id, cmd: cmd.into(), instance: instance.into(), args: args.to_vec(), target: None }
    }

    /// An instance-less control request (`ping` / `stats` / `shutdown`).
    pub fn control(id: Option<u64>, cmd: &str) -> Request {
        Request { id, cmd: cmd.into(), instance: String::new(), args: Vec::new(), target: None }
    }

    /// A `cancel` request against the in-flight solve whose correlation
    /// id is `target`. Sent on a second connection — the submitting
    /// connection is blocked waiting for its answer.
    pub fn cancel(id: Option<u64>, target: u64) -> Request {
        Request {
            id,
            cmd: "cancel".into(),
            instance: String::new(),
            args: Vec::new(),
            target: Some(target),
        }
    }

    /// Renders the request as one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let mut s = String::from("{");
        if let Some(id) = self.id {
            let _ = write!(s, "\"id\": {id}, ");
        }
        let _ = write!(s, "\"cmd\": \"{}\"", escape(&self.cmd));
        if let Some(t) = self.target {
            let _ = write!(s, ", \"target\": {t}");
        }
        if !self.instance.is_empty() {
            let _ = write!(s, ", \"instance\": \"{}\"", escape(&self.instance));
        }
        if !self.args.is_empty() {
            s.push_str(", \"args\": [");
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "\"{}\"", escape(a));
            }
            s.push(']');
        }
        s.push('}');
        s
    }

    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| format!("{} at byte {}", e.message, e.offset))?;
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or("missing `cmd` string")?
            .to_string();
        let id = v.get("id").and_then(Json::as_f64).map(|x| x as u64);
        let instance = v
            .get("instance")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let args = match v.get("args") {
            None => Vec::new(),
            Some(a) => a
                .as_array()
                .ok_or("`args` must be an array of strings")?
                .iter()
                .map(|x| x.as_str().map(String::from).ok_or("`args` must be an array of strings"))
                .collect::<Result<Vec<_>, _>>()?,
        };
        let target = v.get("target").and_then(Json::as_f64).map(|x| x as u64);
        Ok(Request { id, cmd, instance, args, target })
    }
}

/// One server response line (see the module docs for the wire shape).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Response {
    /// The request's correlation id, echoed back.
    pub id: Option<u64>,
    /// `true` iff the request was answered (solve finished, control ran).
    pub ok: bool,
    /// Response payload: the solver's full stdout for solves, a JSON
    /// document for `stats`, a short token for control commands.
    pub body: Option<String>,
    /// Diagnostic when `ok` is `false`.
    pub error: Option<String>,
    /// Error category when `ok` is `false`: the CLI `sysexits` code, or
    /// `503` for `busy` / `draining` rejections.
    pub code: Option<i64>,
    /// `true` iff the body came from the decomposition cache.
    pub cache_hit: Option<bool>,
    /// Mirrors [`SolveOutcome::exact`](crate::SolveOutcome::exact).
    pub exact: Option<bool>,
    /// Mirrors [`SolveOutcome::certified`](crate::SolveOutcome::certified).
    pub certified: Option<bool>,
    /// `true` iff the solve was stopped by a `cancel` request; the body
    /// then carries the certified anytime bounds, like a budget expiry.
    pub cancelled: Option<bool>,
    /// Node expansions this request cost (0 on a cache hit).
    pub nodes_expanded: Option<u64>,
    /// Worker faults contained while solving this request.
    pub faults: Option<u64>,
    /// Seconds the request sat in the accept queue.
    pub queue_wait_s: Option<f64>,
    /// Seconds of solve wall clock (0 on a cache hit).
    pub wall_s: Option<f64>,
}

impl Response {
    /// A successful response carrying only a body.
    pub fn ok_body(id: Option<u64>, body: impl Into<String>) -> Response {
        Response { id, ok: true, body: Some(body.into()), ..Response::default() }
    }

    /// A failed response with an error category code.
    pub fn fail(id: Option<u64>, code: i64, error: impl Into<String>) -> Response {
        Response { id, ok: false, error: Some(error.into()), code: Some(code), ..Response::default() }
    }

    /// Renders the response as one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let mut s = String::from("{");
        if let Some(id) = self.id {
            let _ = write!(s, "\"id\": {id}, ");
        }
        let _ = write!(s, "\"ok\": {}", self.ok);
        if let Some(b) = &self.body {
            let _ = write!(s, ", \"body\": \"{}\"", escape(b));
        }
        if let Some(e) = &self.error {
            let _ = write!(s, ", \"error\": \"{}\"", escape(e));
        }
        if let Some(c) = self.code {
            let _ = write!(s, ", \"code\": {c}");
        }
        if let Some(h) = self.cache_hit {
            let _ = write!(s, ", \"cache_hit\": {h}");
        }
        if let Some(x) = self.exact {
            let _ = write!(s, ", \"exact\": {x}");
        }
        if let Some(c) = self.certified {
            let _ = write!(s, ", \"certified\": {c}");
        }
        if let Some(c) = self.cancelled {
            let _ = write!(s, ", \"cancelled\": {c}");
        }
        if let Some(n) = self.nodes_expanded {
            let _ = write!(s, ", \"nodes_expanded\": {n}");
        }
        if let Some(f) = self.faults {
            let _ = write!(s, ", \"faults\": {f}");
        }
        if let Some(w) = self.queue_wait_s {
            let _ = write!(s, ", \"queue_wait_s\": {w:.6}");
        }
        if let Some(w) = self.wall_s {
            let _ = write!(s, ", \"wall_s\": {w:.6}");
        }
        s.push('}');
        s
    }

    /// Parses one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let v = Json::parse(line).map_err(|e| format!("{} at byte {}", e.message, e.offset))?;
        let ok = v.get("ok").and_then(Json::as_bool).ok_or("missing `ok` boolean")?;
        Ok(Response {
            id: v.get("id").and_then(Json::as_f64).map(|x| x as u64),
            ok,
            body: v.get("body").and_then(Json::as_str).map(String::from),
            error: v.get("error").and_then(Json::as_str).map(String::from),
            code: v.get("code").and_then(Json::as_f64).map(|x| x as i64),
            cache_hit: v.get("cache_hit").and_then(Json::as_bool),
            exact: v.get("exact").and_then(Json::as_bool),
            certified: v.get("certified").and_then(Json::as_bool),
            cancelled: v.get("cancelled").and_then(Json::as_bool),
            nodes_expanded: v.get("nodes_expanded").and_then(Json::as_f64).map(|x| x as u64),
            faults: v.get("faults").and_then(Json::as_f64).map(|x| x as u64),
            queue_wait_s: v.get("queue_wait_s").and_then(Json::as_f64),
            wall_s: v.get("wall_s").and_then(Json::as_f64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_with_escapes() {
        let req = Request::solve(
            Some(7),
            "tw",
            "p edge 2 1\ne 1 2\n",
            &["--method".to_string(), "bb".to_string()],
        );
        let parsed = Request::parse(&req.render()).unwrap();
        assert_eq!(parsed, req);
        let ctrl = Request::control(None, "ping");
        assert_eq!(Request::parse(&ctrl.render()).unwrap(), ctrl);
        let cancel = Request::cancel(Some(8), 42);
        let parsed = Request::parse(&cancel.render()).unwrap();
        assert_eq!(parsed, cancel);
        assert_eq!(parsed.target, Some(42));
    }

    #[test]
    fn response_round_trips() {
        let resp = Response {
            id: Some(3),
            ok: true,
            body: Some("graph: 2 vertices, 1 edges\nwidth = 1 (exact)\n".into()),
            cache_hit: Some(true),
            exact: Some(true),
            certified: Some(true),
            nodes_expanded: Some(0),
            faults: Some(0),
            queue_wait_s: Some(0.000123),
            wall_s: Some(0.0),
            ..Response::default()
        };
        let parsed = Response::parse(&resp.render()).unwrap();
        assert_eq!(parsed, resp);
        let fail = Response::fail(None, 503, "busy");
        assert_eq!(Response::parse(&fail.render()).unwrap(), fail);
        let cancelled = Response {
            id: Some(42),
            ok: true,
            body: Some("4 <= width <= 7 (cancelled)\n".into()),
            exact: Some(false),
            cancelled: Some(true),
            ..Response::default()
        };
        assert_eq!(Response::parse(&cancelled.render()).unwrap(), cancelled);
    }

    #[test]
    fn malformed_lines_are_rejected_with_reasons() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{}").unwrap_err().contains("cmd"));
        assert!(Request::parse("{\"cmd\": \"tw\", \"args\": 3}").unwrap_err().contains("args"));
        assert!(Response::parse("{}").unwrap_err().contains("ok"));
    }
}
