//! `ghd-serve`: a long-running solve daemon with a canonical-form
//! decomposition cache.
//!
//! The one-shot CLI pays instance parsing, search setup, *and the whole
//! search* on every invocation — even for an instance it solved a second
//! ago. This crate keeps a daemon resident: clients submit instances over
//! a Unix or TCP socket in newline-delimited JSON
//! ([`protocol`]), a fixed worker pool solves them, and self-certified
//! exact answers are admitted to an LRU [`DecompCache`] keyed by the
//! *canonical* form of the instance ([`ghd_core::canon`]) — a re-submitted
//! instance, even reformatted or re-commented, returns its verified
//! `(width, ordering, decomposition)` without expanding a single node.
//!
//! The daemon is deliberately decoupled from the solver: it dispatches
//! through the [`Solver`] trait, and the `ghd` CLI supplies the
//! implementation backed by its own solve functions. That keeps the
//! dependency arrow pointing one way (`cli` → `serve`) while guaranteeing
//! the byte-identity contract — daemon answers *are* one-shot CLI answers,
//! produced by the same code path.
//!
//! Operational properties (see [`server`] for the mechanics):
//! * **Backpressure**: the solve queue is bounded; a full queue answers
//!   `busy` (503) instead of buffering without limit.
//! * **Graceful drain**: `shutdown` refuses new solves, finishes and
//!   delivers in-flight ones, then exits with a summary.
//! * **Fault containment**: a panicking solve poisons one request
//!   (error 70), never the daemon; worker faults *inside* the parallel
//!   searches are already contained by `ghd_par` and surface as degraded
//!   single answers.
//! * **Telemetry**: the `stats` endpoint reports per-session aggregates
//!   (cache hits/misses, queue wait, solve wall clock, faults).
//!
//! [`DecompCache`]: ghd_core::canon::DecompCache

pub mod client;
pub mod protocol;
pub mod server;
pub mod signal;

pub use client::Client;
pub use ghd_core::canon::CacheKey;
pub use protocol::{Request, Response};
pub use server::{ServeStats, Server, ServerConfig};

/// The shared per-request cancellation flag the daemon hands a solve.
///
/// A plain `Arc<AtomicBool>` rather than a search-crate type, so the
/// [`Solver`] trait does not force a `ghd-search` dependency onto this
/// crate; the CLI's solver wraps it in a `CancelToken` on its side.
pub type CancelFlag = std::sync::Arc<std::sync::atomic::AtomicBool>;

/// A solved request, as the [`Solver`] reports it to the daemon.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// Complete response body — byte-identical to the one-shot CLI's
    /// stdout for the same instance text and flags.
    pub body: String,
    /// The certified width the body reports.
    pub width: usize,
    /// `true` iff the width is proven optimal.
    pub exact: bool,
    /// `true` iff the answer was independently re-verified.
    pub certified: bool,
    /// `true` iff the answer may enter the decomposition cache (the
    /// daemon additionally requires `exact && certified`).
    pub cacheable: bool,
    /// Node expansions spent.
    pub nodes_expanded: u64,
    /// Worker faults contained during the solve.
    pub faults: usize,
    /// `true` iff the solve was stopped by cooperative cancellation; the
    /// body then reports certified anytime bounds (never cacheable).
    pub cancelled: bool,
}

/// A failed solve: `sysexits`-style category code plus a one-liner.
#[derive(Clone, Debug)]
pub struct SolveError {
    /// Error category (64 usage, 65 data, 70 internal, …).
    pub code: i64,
    /// Human-readable diagnostic.
    pub message: String,
}

/// What the daemon needs from a solver backend.
///
/// Implementations must be deterministic: the same `(cmd, instance,
/// args)` must produce the same `body`, or caching (and the byte-identity
/// contract) is meaningless.
pub trait Solver: Send + Sync + 'static {
    /// The cache identity of this request, or `None` when the request
    /// must never be cached (unparseable instance, non-reproducible
    /// output such as `--stats` bodies with embedded wall-clock times).
    fn cache_key(&self, cmd: &str, instance: &str, args: &[String]) -> Option<CacheKey>;

    /// Solves the request. Called on a daemon worker thread; panics are
    /// contained per request. `cancel` is this request's cooperative
    /// cancellation flag — implementations should observe it (e.g. by
    /// threading it into their search budget) and report `cancelled`
    /// outcomes with certified anytime bounds.
    fn solve(
        &self,
        cmd: &str,
        instance: &str,
        args: &[String],
        cancel: &CancelFlag,
    ) -> Result<SolveOutcome, SolveError>;

    /// Whether a cache-log record replayed at boot is a valid entry for
    /// *this* solver: the stored canonical text must re-derive the stored
    /// hash and canonical form (the on-disk analogue of verify-on-probe).
    /// The checksum already proved the bytes intact; this proves they
    /// mean what they claim. Defaults to rejecting everything, so a
    /// backend that cannot re-verify never admits stale state.
    fn verify_replay(&self, _key: &CacheKey) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghd_core::canon::CacheKey;
    use ghd_prng::hash::fx_hash_words;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    /// A deterministic scriptable solver: `solve:X` answers `solved:X`,
    /// `sleep:MS` stalls (for backpressure/drain tests), `wait-cancel`
    /// spins until its cancel flag flips (then answers with anytime
    /// bounds), `panic` panics, `fail` returns a usage error. Everything
    /// else is "exact + certified" so cache admission is exercised.
    struct MockSolver {
        solves: AtomicU64,
    }

    impl MockSolver {
        fn new() -> Arc<MockSolver> {
            Arc::new(MockSolver { solves: AtomicU64::new(0) })
        }
    }

    impl Solver for MockSolver {
        fn cache_key(&self, cmd: &str, instance: &str, _args: &[String]) -> Option<CacheKey> {
            if instance.starts_with("nocache:") {
                return None;
            }
            Some(CacheKey {
                hash: fx_hash_words(&[instance.len() as u64]),
                canon: instance.to_string(),
                signature: cmd.to_string(),
            })
        }

        fn solve(
            &self,
            _cmd: &str,
            instance: &str,
            _args: &[String],
            cancel: &CancelFlag,
        ) -> Result<SolveOutcome, SolveError> {
            self.solves.fetch_add(1, Ordering::SeqCst);
            if let Some(ms) = instance.strip_prefix("sleep:") {
                thread::sleep(Duration::from_millis(ms.parse().unwrap()));
            }
            if instance == "wait-cancel" {
                // a "hard search" that only the cancel verb can stop
                while !cancel.load(Ordering::Relaxed) {
                    thread::sleep(Duration::from_millis(5));
                }
                return Ok(SolveOutcome {
                    body: "2 <= width <= 5 (cancelled)\n".into(),
                    width: 5,
                    exact: false,
                    certified: true,
                    cacheable: false,
                    nodes_expanded: 3,
                    faults: 0,
                    cancelled: true,
                });
            }
            if instance == "panic" {
                panic!("scripted solver panic");
            }
            if instance == "fail" {
                return Err(SolveError { code: 64, message: "scripted failure".into() });
            }
            Ok(SolveOutcome {
                body: format!("solved:{instance}\n"),
                width: 2,
                exact: true,
                certified: true,
                cacheable: true,
                nodes_expanded: 10,
                faults: 0,
                cancelled: false,
            })
        }

        fn verify_replay(&self, key: &CacheKey) -> bool {
            // the same discipline the CLI solver applies: the stored
            // canonical text must re-derive the stored hash
            key.hash == fx_hash_words(&[key.canon.len() as u64])
                && !key.canon.starts_with("nocache:")
        }
    }

    /// Boots a daemon on a free TCP port, runs `f` against its address,
    /// then shuts it down and returns (summary, solver).
    fn with_server<R>(
        cfg: ServerConfig,
        f: impl FnOnce(&str) -> R,
    ) -> (R, String, Arc<MockSolver>) {
        let solver = MockSolver::new();
        let server = Server::bind("127.0.0.1:0", cfg, Arc::clone(&solver) as Arc<dyn Solver>)
            .expect("bind a free port");
        let addr = server.local_addr();
        let handle = thread::spawn(move || server.run());
        let out = f(&addr);
        let mut c = Client::connect(&addr).expect("connect for shutdown");
        let resp = c.request(&Request::control(None, "shutdown")).expect("shutdown");
        assert!(resp.ok);
        let summary = handle.join().expect("server thread");
        (out, summary, solver)
    }

    #[test]
    fn solve_roundtrip_and_cache_hit() {
        let (_, summary, solver) = with_server(ServerConfig::default(), |addr| {
            let mut c = Client::connect(addr).unwrap();
            let req = Request::solve(Some(1), "tw", "instance-a", &[]);
            let cold = c.request(&req).unwrap();
            assert!(cold.ok, "{cold:?}");
            assert_eq!(cold.body.as_deref(), Some("solved:instance-a\n"));
            assert_eq!(cold.cache_hit, Some(false));
            assert_eq!(cold.nodes_expanded, Some(10));
            assert_eq!(cold.id, Some(1));
            // warm probe: identical body, zero work, cache_hit flagged
            let warm = c.request(&req).unwrap();
            assert_eq!(warm.body, cold.body);
            assert_eq!(warm.cache_hit, Some(true));
            assert_eq!(warm.nodes_expanded, Some(0));
            assert_eq!(warm.exact, Some(true));
            // a different signature (cmd) misses
            let other = c.request(&Request::solve(None, "ghw", "instance-a", &[])).unwrap();
            assert_eq!(other.cache_hit, Some(false));
        });
        assert_eq!(solver.solves.load(Ordering::SeqCst), 2, "warm probe never solves");
        assert!(summary.contains("3 completed (1 cache hits"), "{summary}");
    }

    #[test]
    fn ping_stats_and_malformed_lines() {
        with_server(ServerConfig::default(), |addr| {
            let mut c = Client::connect(addr).unwrap();
            let pong = c.request(&Request::control(Some(9), "ping")).unwrap();
            assert_eq!((pong.ok, pong.body.as_deref(), pong.id), (true, Some("pong"), Some(9)));
            // garbage is answered (code 64), not a dropped connection
            let bad = c.roundtrip_line("this is not json").unwrap();
            let bad = Response::parse(&bad).unwrap();
            assert_eq!((bad.ok, bad.code), (false, Some(64)));
            let unknown = c.request(&Request::control(None, "frobnicate")).unwrap();
            assert_eq!(unknown.code, Some(64));
            // solve twice (one hit), then read the stats endpoint
            let req = Request::solve(None, "tw", "stats-probe", &[]);
            assert!(c.request(&req).unwrap().ok);
            assert!(c.request(&req).unwrap().ok);
            let stats = c.request(&Request::control(None, "stats")).unwrap();
            let body = stats.body.expect("stats body");
            let v = ghd_core::json::Json::parse(&body).expect("stats is JSON");
            use ghd_core::json::Json;
            assert_eq!(v.get("completed").and_then(Json::as_f64), Some(2.0));
            let cache = v.get("cache").expect("cache object");
            assert_eq!(cache.get("hits").and_then(Json::as_f64), Some(1.0));
            assert_eq!(cache.get("entries").and_then(Json::as_f64), Some(1.0));
            assert!(v.get("queue_wait_s").and_then(Json::as_f64).is_some());
        });
    }

    #[test]
    fn full_queue_answers_busy_instead_of_buffering() {
        let cfg = ServerConfig { workers: 1, queue: 1, ..ServerConfig::default() };
        let ((), summary, _) = with_server(cfg, |addr| {
            // occupy the single worker with a slow solve…
            let slow_addr = addr.to_string();
            let slow = thread::spawn(move || {
                let mut c = Client::connect(&slow_addr).unwrap();
                c.request(&Request::solve(None, "tw", "sleep:600", &[])).unwrap()
            });
            thread::sleep(Duration::from_millis(150));
            // …fill the queue depth of 1…
            let fill_addr = addr.to_string();
            let fill = thread::spawn(move || {
                let mut c = Client::connect(&fill_addr).unwrap();
                c.request(&Request::solve(None, "tw", "sleep:100", &[])).unwrap()
            });
            thread::sleep(Duration::from_millis(150));
            // …so the next submission bounces with `busy`, immediately
            let mut c = Client::connect(addr).unwrap();
            let busy = c.request(&Request::solve(Some(3), "tw", "bounced", &[])).unwrap();
            assert_eq!((busy.ok, busy.code), (false, Some(503)), "{busy:?}");
            assert_eq!(busy.error.as_deref(), Some("busy"));
            assert_eq!(busy.id, Some(3));
            // the in-flight requests still complete normally
            assert!(slow.join().unwrap().ok);
            assert!(fill.join().unwrap().ok);
        });
        assert!(summary.contains("1 busy rejections"), "{summary}");
    }

    #[test]
    fn drain_finishes_inflight_work_and_refuses_new_solves() {
        let cfg = ServerConfig { workers: 2, ..ServerConfig::default() };
        let solver = MockSolver::new();
        let server = Server::bind("127.0.0.1:0", cfg, Arc::clone(&solver) as _).unwrap();
        let addr = server.local_addr();
        let handle = thread::spawn(move || server.run());
        // a solve that is still running when shutdown arrives
        let inflight_addr = addr.clone();
        let inflight = thread::spawn(move || {
            let mut c = Client::connect(&inflight_addr).unwrap();
            c.request(&Request::solve(Some(1), "tw", "sleep:400", &[])).unwrap()
        });
        thread::sleep(Duration::from_millis(150));
        let mut c = Client::connect(&addr).unwrap();
        assert!(c.request(&Request::control(None, "shutdown")).unwrap().ok);
        // post-shutdown solves are refused with `draining`
        let refused = c.request(&Request::solve(None, "tw", "late", &[])).unwrap();
        assert_eq!((refused.ok, refused.code), (false, Some(503)));
        assert_eq!(refused.error.as_deref(), Some("draining"));
        drop(c);
        // the in-flight answer is still delivered in full
        let done = inflight.join().unwrap();
        assert!(done.ok, "{done:?}");
        assert_eq!(done.body.as_deref(), Some("solved:sleep:400\n"));
        let summary = handle.join().unwrap();
        assert!(summary.contains("drained clean"), "{summary}");
    }

    #[test]
    fn solver_panic_poisons_one_request_not_the_daemon() {
        with_server(ServerConfig::default(), |addr| {
            let mut c = Client::connect(addr).unwrap();
            let poisoned = c.request(&Request::solve(Some(5), "tw", "panic", &[])).unwrap();
            assert_eq!((poisoned.ok, poisoned.code), (false, Some(70)), "{poisoned:?}");
            assert!(poisoned.error.unwrap().contains("scripted solver panic"));
            // scripted errors keep their category code
            let failed = c.request(&Request::solve(None, "tw", "fail", &[])).unwrap();
            assert_eq!(failed.code, Some(64));
            // the daemon keeps serving on the same connection
            let alive = c.request(&Request::solve(None, "tw", "after-panic", &[])).unwrap();
            assert!(alive.ok, "{alive:?}");
        });
    }

    #[test]
    fn cancel_verb_stops_an_inflight_solve_and_daemon_stays_healthy() {
        let cfg = ServerConfig { workers: 1, ..ServerConfig::default() };
        with_server(cfg, |addr| {
            // a solve only cancellation can finish, on its own connection
            let solve_addr = addr.to_string();
            let inflight = thread::spawn(move || {
                let mut c = Client::connect(&solve_addr).unwrap();
                c.request(&Request::solve(Some(42), "tw", "wait-cancel", &[])).unwrap()
            });
            thread::sleep(Duration::from_millis(200));
            let mut c = Client::connect(addr).unwrap();
            // wrong target: diagnosed, nothing cancelled
            let miss = c.request(&Request::cancel(Some(1), 999)).unwrap();
            assert_eq!((miss.ok, miss.code), (false, Some(69)), "{miss:?}");
            // a cancel with no target is a usage error
            let mut bad = Request::control(Some(2), "cancel");
            bad.target = None;
            let bad = c.request(&bad).unwrap();
            assert_eq!(bad.code, Some(64));
            // the real cancel lands
            let hit = c.request(&Request::cancel(Some(3), 42)).unwrap();
            assert!(hit.ok, "{hit:?}");
            let done = inflight.join().unwrap();
            assert!(done.ok, "{done:?}");
            assert_eq!(done.cancelled, Some(true));
            assert_eq!(done.exact, Some(false));
            assert!(done.body.unwrap().contains("(cancelled)"));
            // the id is gone from the registry once answered…
            let gone = c.request(&Request::cancel(None, 42)).unwrap();
            assert_eq!(gone.code, Some(69));
            // …and the daemon keeps solving exactly
            let after = c.request(&Request::solve(None, "tw", "after-cancel", &[])).unwrap();
            assert_eq!((after.ok, after.exact), (true, Some(true)), "{after:?}");
        });
    }

    #[test]
    fn connection_cap_sheds_with_busy_line() {
        let cfg = ServerConfig { max_conns: 2, ..ServerConfig::default() };
        with_server(cfg, |addr| {
            let _a = Client::connect(addr).unwrap();
            let _b = Client::connect(addr).unwrap();
            thread::sleep(Duration::from_millis(100)); // both accepted
            let mut over = Client::connect(addr).unwrap();
            // the shed line arrives unprompted, before any request
            let line = over.read_line().unwrap();
            let resp = Response::parse(&line).unwrap();
            assert_eq!((resp.ok, resp.code), (false, Some(503)), "{resp:?}");
            assert!(resp.error.unwrap().starts_with("busy"));
            // an accepted connection still works while the cap holds
            let mut a = _a;
            let ok = a.request(&Request::solve(None, "tw", "capped", &[])).unwrap();
            assert!(ok.ok, "{ok:?}");
        });
    }

    #[test]
    fn idle_connections_are_closed_and_counted() {
        let cfg = ServerConfig {
            idle_timeout: Some(Duration::from_millis(250)),
            ..ServerConfig::default()
        };
        with_server(cfg, |addr| {
            let mut idle = Client::connect(addr).unwrap();
            assert!(idle.request(&Request::control(None, "ping")).unwrap().ok);
            thread::sleep(Duration::from_millis(700));
            // the daemon hung up; the next roundtrip fails on read or write
            let dead = idle.request(&Request::control(None, "ping"));
            assert!(dead.is_err(), "idle connection should be closed: {dead:?}");
            let mut fresh = Client::connect(addr).unwrap();
            let stats = fresh.request(&Request::control(None, "stats")).unwrap();
            let body = stats.body.unwrap();
            let v = ghd_core::json::Json::parse(&body).unwrap();
            use ghd_core::json::Json;
            assert!(
                v.get("idle_closed").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0,
                "{body}"
            );
        });
    }

    #[test]
    fn cache_log_persists_admissions_across_a_daemon_restart() {
        let path = std::env::temp_dir()
            .join(format!("ghd-serve-persist-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = ServerConfig { log_path: Some(path.clone()), ..ServerConfig::default() };

        // first life: two admissions (one instance is not cacheable)
        let (_, _, _) = with_server(cfg.clone(), |addr| {
            let mut c = Client::connect(addr).unwrap();
            assert!(c.request(&Request::solve(None, "tw", "persist-a", &[])).unwrap().ok);
            assert!(c.request(&Request::solve(None, "ghw", "persist-b", &[])).unwrap().ok);
            assert!(c.request(&Request::solve(None, "tw", "nocache:x", &[])).unwrap().ok);
        });

        // second life, same log: the warm entries replay as verified hits
        let (_, _, solver) = with_server(cfg, |addr| {
            let mut c = Client::connect(addr).unwrap();
            let stats = c.request(&Request::control(None, "stats")).unwrap();
            let body = stats.body.unwrap();
            use ghd_core::json::Json;
            let v = Json::parse(&body).unwrap();
            assert_eq!(v.get("replayed").and_then(Json::as_f64), Some(2.0), "{body}");
            assert_eq!(v.get("replay_verify_rejects").and_then(Json::as_f64), Some(0.0));
            let warm = c.request(&Request::solve(Some(7), "tw", "persist-a", &[])).unwrap();
            assert_eq!(warm.cache_hit, Some(true), "{warm:?}");
            assert_eq!(warm.nodes_expanded, Some(0));
            assert_eq!(warm.body.as_deref(), Some("solved:persist-a\n"));
            let warm2 = c.request(&Request::solve(None, "ghw", "persist-b", &[])).unwrap();
            assert_eq!(warm2.cache_hit, Some(true));
        });
        assert_eq!(solver.solves.load(Ordering::SeqCst), 0, "warm boot never re-solves");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unix_socket_transport_works_and_cleans_up() {
        let path = std::env::temp_dir()
            .join(format!("ghd-serve-test-{}.sock", std::process::id()));
        let addr = format!("unix:{}", path.display());
        let solver = MockSolver::new();
        let server = Server::bind(&addr, ServerConfig::default(), solver as _).unwrap();
        assert_eq!(server.local_addr(), addr);
        let handle = thread::spawn(move || server.run());
        let mut c = Client::connect(&addr).unwrap();
        let resp = c.request(&Request::solve(None, "ghw", "via-unix", &[])).unwrap();
        assert_eq!(resp.body.as_deref(), Some("solved:via-unix\n"));
        assert!(c.request(&Request::control(None, "shutdown")).unwrap().ok);
        handle.join().unwrap();
        assert!(!path.exists(), "socket file removed on drop");
    }
}
