//! Dependency-free parallel runtime for the GHD search stack.
//!
//! The offline build environment forbids `rayon`/`crossbeam`, so this crate
//! provides the primitives the workspace needs, on plain `std`:
//!
//! * [`parallel_map`] — deterministic fork-join map over a slice: results
//!   come back **in input order** regardless of scheduling, so callers that
//!   reduce with order-sensitive operators (first-minimum tie-breaks) get
//!   identical answers sequentially and in parallel.
//! * [`parallel_map_contained`] / [`for_each_mut_contained`] — the
//!   *fault-contained* variants: every task runs inside
//!   [`std::panic::catch_unwind`], a panicking task is converted into a
//!   structured [`WorkerFault`] record while its worker thread survives and
//!   keeps draining the queue, and the caller receives all non-faulted
//!   results in input order. This is the foundation of the search
//!   portfolio's "one poisoned subtree does not abort the run" guarantee.
//! * [`for_each_mut`] — in-place fork-join over disjoint `&mut` items (used
//!   by SAIGA's island evolution, where every island owns its generator).
//! * [`ThreadPool`] — a small queue-of-closures pool for `'static` jobs
//!   (used by long-lived services; the fork-join helpers use scoped threads
//!   and need no pool).
//! * [`fault`] — a deterministic fault-injection hook (test/bench-only):
//!   an installed [`fault::FaultPlan`] kills the nth task (one-shot) or
//!   injects seeded delays, so integration tests can prove graceful
//!   degradation without OS-level tricks.
//!
//! Work distribution uses an atomic cursor (work stealing by chunk), so
//! uneven item costs — ubiquitous in branch-and-bound root splitting — do
//! not serialise the run.
//!
//! # Unwind-safety of containment
//!
//! The contained variants wrap tasks in `AssertUnwindSafe`. That is sound
//! for every call site in this workspace because a faulted task's partial
//! state is discarded wholesale (its result slot stays empty and its owned
//! search state is dropped during unwinding), and all *shared* state is
//! mutated exclusively through atomics (incumbent bounds, budget pools),
//! which cannot be observed in a torn intermediate state. RAII guards run
//! during the unwind, so a dying worker still returns its unspent budget
//! credits.
//!
//! # Example
//!
//! ```
//! // Square 100 numbers on all available cores; order is preserved.
//! let xs: Vec<u64> = (0..100).collect();
//! let squares = ghd_par::parallel_map(&xs, 0, |&x| x * x);
//! assert_eq!(squares[17], 17 * 17);
//!
//! // Fork-join two closures.
//! let (a, b) = ghd_par::join(|| 2 + 2, || "done");
//! assert_eq!((a, b), (4, "done"));
//!
//! // A tiny pool for fire-and-forget 'static jobs.
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//! let pool = ghd_par::ThreadPool::new(2);
//! let hits = Arc::new(AtomicUsize::new(0));
//! for _ in 0..8 {
//!     let hits = Arc::clone(&hits);
//!     pool.execute(move || {
//!         hits.fetch_add(1, Ordering::Relaxed);
//!     });
//! }
//! pool.wait_idle();
//! assert_eq!(hits.load(Ordering::Relaxed), 8);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

pub mod fault;
pub mod steal;

/// Structured record of one contained task panic: which worker thread was
/// executing which task (input index) and the stringified panic payload.
///
/// Produced by [`parallel_map_contained`] / [`for_each_mut_contained`] /
/// [`run_contained`] and surfaced by the search layer through
/// `SearchStats::faults` so a production caller can tell "the run finished"
/// apart from "the run finished *despite* a dead worker".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerFault {
    /// Index of the worker thread that executed the task (or
    /// [`RETRY_WORKER`] for a caller-thread retry).
    pub worker: usize,
    /// Index of the task in the input slice.
    pub task: usize,
    /// The panic payload, stringified (`&str`/`String` payloads verbatim;
    /// anything else a placeholder).
    pub payload: String,
}

impl std::fmt::Display for WorkerFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker {} faulted on task {}: {}",
            self.worker, self.task, self.payload
        )
    }
}

/// Sentinel worker id used by [`run_contained`] callers retrying a faulted
/// task on the coordinating thread.
pub const RETRY_WORKER: usize = usize::MAX;

/// Stringifies a panic payload (`&str` / `String` verbatim, placeholder
/// otherwise).
fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one task fault-contained: the [`fault`] hook fires first (so
/// injected faults never tear caller state), then `f` runs inside
/// `catch_unwind`. A panic becomes an `Err(WorkerFault)`; the caller's
/// thread survives.
pub fn run_contained<U>(
    worker: usize,
    task: usize,
    f: impl FnOnce() -> U,
) -> Result<U, WorkerFault> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        fault::fault_point(worker, task);
        f()
    }))
    .map_err(|p| WorkerFault {
        worker,
        task,
        payload: payload_string(p.as_ref()),
    })
}

/// Outcome of a fault-contained fork-join map: per-item results in input
/// order (`None` where the task faulted) plus the fault records, sorted by
/// task index so reports are deterministic regardless of scheduling.
#[derive(Debug)]
pub struct Contained<U> {
    /// One slot per input item; `None` iff that task panicked.
    pub results: Vec<Option<U>>,
    /// Fault records, sorted by task index.
    pub faults: Vec<WorkerFault>,
}

impl<U> Contained<U> {
    /// `true` iff no task faulted.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Number of worker threads to use: the `GHD_THREADS` environment variable
/// when set to a positive integer, otherwise `std::thread::available_parallelism`.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("GHD_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves a requested thread count: `0` means [`num_threads`], and the
/// result never exceeds `work_items` (no point spawning idle workers).
#[inline]
fn effective_threads(requested: usize, work_items: usize) -> usize {
    let t = if requested == 0 { num_threads() } else { requested };
    t.clamp(1, work_items.max(1))
}

/// Fault-contained fork-join map: applies `f` to every element of `items`
/// on up to `threads` workers (`0` = auto), running each task through
/// [`run_contained`]. A panicking task leaves its result slot `None` and
/// adds a [`WorkerFault`]; the worker thread survives and keeps draining
/// the queue, so all other results arrive **in input order** as usual.
///
/// Because every task is wrapped in `catch_unwind`, no worker thread ever
/// unwinds through the scope and no result-slot mutex is ever poisoned.
pub fn parallel_map_contained<T, U, F>(items: &[T], threads: usize, f: F) -> Contained<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = effective_threads(threads, items.len());
    let n = items.len();
    if threads <= 1 || n <= 1 {
        let mut results = Vec::with_capacity(n);
        let mut faults = Vec::new();
        for (i, item) in items.iter().enumerate() {
            match run_contained(0, i, || f(item)) {
                Ok(v) => results.push(Some(v)),
                Err(fault) => {
                    results.push(None);
                    faults.push(fault);
                }
            }
        }
        return Contained { results, faults };
    }
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let slots: Vec<Mutex<&mut Option<U>>> = out.iter_mut().map(Mutex::new).collect();
    let cursor = AtomicUsize::new(0);
    let faults: Mutex<Vec<WorkerFault>> = Mutex::new(Vec::new());
    thread::scope(|scope| {
        for w in 0..threads {
            let (slots, cursor, faults, f) = (&slots, &cursor, &faults, &f);
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                match run_contained(w, i, || f(&items[i])) {
                    Ok(value) => {
                        **slots[i].lock().expect("result slot poisoned") = Some(value);
                    }
                    Err(fault) => faults
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(fault),
                }
            });
        }
    });
    drop(slots);
    let mut faults = faults
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    faults.sort_by_key(|f| f.task);
    Contained {
        results: out,
        faults,
    }
}

/// Applies `f` to every element of `items` on up to `threads` workers
/// (`0` = auto) and returns the results **in input order**.
///
/// Scheduling is dynamic (atomic cursor), results are written to each item's
/// own slot, so the output is deterministic whenever `f` itself is — the
/// foundation of the "width-identical in parallel mode" guarantee of the
/// search portfolio.
///
/// Panics in `f` propagate to the caller (the scope joins all workers
/// first; the re-raised payload is the stringified [`WorkerFault`]). Callers
/// that need to *survive* a panicking task use [`parallel_map_contained`].
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let out = parallel_map_contained(items, threads, f);
    if let Some(fault) = out.faults.first() {
        panic!("{fault}");
    }
    out.results
        .into_iter()
        .map(|v| v.expect("every index visited exactly once"))
        .collect()
}

/// Fault-contained in-place fork-join: like [`for_each_mut`] but a
/// panicking task is recorded instead of aborting the run. Returns the
/// fault records sorted by task index.
///
/// An item whose task faulted is left exactly as `f` left it before the
/// panic; injected faults from the [`fault`] hook fire *before* `f` runs,
/// so they never tear item state.
pub fn for_each_mut_contained<T, F>(items: &mut [T], threads: usize, f: F) -> Vec<WorkerFault>
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = effective_threads(threads, items.len());
    let n = items.len();
    if threads <= 1 || n <= 1 {
        let mut faults = Vec::new();
        for (i, item) in items.iter_mut().enumerate() {
            if let Err(fault) = run_contained(0, i, || f(i, item)) {
                faults.push(fault);
            }
        }
        return faults;
    }
    let slots: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
    let cursor = AtomicUsize::new(0);
    let faults: Mutex<Vec<WorkerFault>> = Mutex::new(Vec::new());
    thread::scope(|scope| {
        for w in 0..threads {
            let (slots, cursor, faults, f) = (&slots, &cursor, &faults, &f);
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let mut guard = slots[i].lock().expect("item slot poisoned");
                if let Err(fault) = run_contained(w, i, || f(i, &mut guard)) {
                    drop(guard);
                    faults
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .push(fault);
                }
            });
        }
    });
    let mut faults = faults
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    faults.sort_by_key(|f| f.task);
    faults
}

/// Runs `f` on every element of a mutable slice in parallel (up to
/// `threads` workers; `0` = auto). Items are disjoint, so each worker gets
/// exclusive access to the items it claims via the shared cursor.
///
/// Panics in `f` propagate (stringified); use [`for_each_mut_contained`]
/// to survive them.
pub fn for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let faults = for_each_mut_contained(items, threads, f);
    if let Some(fault) = faults.first() {
        panic!("{fault}");
    }
}

/// Runs the two closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if num_threads() <= 1 {
        return (a(), b());
    }
    thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().expect("joined task panicked");
        (ra, rb)
    })
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    in_flight: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when work arrives or shutdown begins.
    work: Condvar,
    /// Signalled when the pool drains (queue empty, nothing in flight).
    idle: Condvar,
}

/// A fixed-size thread pool for `'static` jobs with a [`ThreadPool::wait_idle`]
/// barrier. Workers are joined on drop.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads` workers (`0` = auto).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 { num_threads() } else { threads };
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                in_flight: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("ghd-par-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        let mut st = self.shared.state.lock().expect("pool state poisoned");
        assert!(!st.shutdown, "execute after shutdown");
        st.queue.push_back(Box::new(job));
        drop(st);
        self.shared.work.notify_one();
    }

    /// Blocks until the queue is empty and no job is running.
    pub fn wait_idle(&self) {
        let mut st = self.shared.state.lock().expect("pool state poisoned");
        while !st.queue.is_empty() || st.in_flight > 0 {
            st = self.shared.idle.wait(st).expect("pool state poisoned");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state poisoned");
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.in_flight += 1;
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work.wait(st).expect("pool state poisoned");
            }
        };
        job();
        let mut st = shared.state.lock().expect("pool state poisoned");
        st.in_flight -= 1;
        if st.queue.is_empty() && st.in_flight == 0 {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_map_preserves_order() {
        // serialize with fault-plan-installing tests (process-global hook)
        let _guard = fault::install(fault::FaultPlan::new());
        let xs: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8] {
            let ys = parallel_map(&xs, threads, |&x| x * 3);
            assert_eq!(ys, xs.iter().map(|&x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_singleton() {
        // serialize with fault-plan-installing tests (process-global hook)
        let _guard = fault::install(fault::FaultPlan::new());
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[9], 4, |&x| x + 1), vec![10]);
    }

    #[test]
    fn parallel_matches_sequential_for_uneven_work() {
        // serialize with fault-plan-installing tests (process-global hook)
        let _guard = fault::install(fault::FaultPlan::new());
        let xs: Vec<u64> = (0..64).collect();
        let seq = parallel_map(&xs, 1, |&x| (0..(x % 7) * 1000).sum::<u64>() + x);
        let par = parallel_map(&xs, 4, |&x| (0..(x % 7) * 1000).sum::<u64>() + x);
        assert_eq!(seq, par);
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        // serialize with fault-plan-installing tests (process-global hook)
        let _guard = fault::install(fault::FaultPlan::new());
        let mut xs = vec![0u32; 100];
        for_each_mut(&mut xs, 4, |i, x| *x += i as u32 + 1);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(x, i as u32 + 1);
        }
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two".len());
        assert_eq!((a, b), (2, 3));
    }

    #[test]
    fn pool_runs_all_jobs_and_drains() {
        let pool = ThreadPool::new(3);
        assert_eq!(pool.threads(), 3);
        let sum = Arc::new(AtomicU64::new(0));
        for i in 1..=100u64 {
            let sum = Arc::clone(&sum);
            pool.execute(move || {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
        // pool is reusable after an idle barrier
        let sum2 = Arc::clone(&sum);
        pool.execute(move || {
            sum2.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(sum.load(Ordering::Relaxed), 5051);
    }

    #[test]
    fn contained_map_records_faults_and_keeps_other_results() {
        // serialize with fault-plan-installing tests (process-global hook)
        let _guard = fault::install(fault::FaultPlan::new());
        let xs: Vec<usize> = (0..32).collect();
        for threads in [1, 2, 4] {
            let out = parallel_map_contained(&xs, threads, |&x| {
                assert!(x != 5 && x != 20, "boom on {x}");
                x * 2
            });
            assert_eq!(out.faults.len(), 2, "threads={threads}");
            assert!(!out.is_clean());
            assert_eq!(out.faults[0].task, 5);
            assert_eq!(out.faults[1].task, 20);
            assert!(out.faults[0].payload.contains("boom on 5"));
            for (i, slot) in out.results.iter().enumerate() {
                if i == 5 || i == 20 {
                    assert!(slot.is_none());
                } else {
                    assert_eq!(*slot, Some(i * 2));
                }
            }
        }
    }

    #[test]
    fn contained_for_each_mut_survives_a_panicking_item() {
        // serialize with fault-plan-installing tests (process-global hook)
        let _guard = fault::install(fault::FaultPlan::new());
        for threads in [1, 3] {
            let mut xs = vec![0u32; 16];
            let faults = for_each_mut_contained(&mut xs, threads, |i, x| {
                assert!(i != 7, "island 7 down");
                *x = i as u32 + 1;
            });
            assert_eq!(faults.len(), 1);
            assert_eq!(faults[0].task, 7);
            for (i, &x) in xs.iter().enumerate() {
                assert_eq!(x, if i == 7 { 0 } else { i as u32 + 1 });
            }
        }
    }

    #[test]
    fn injected_kill_is_contained_and_retry_succeeds() {
        let _scope = fault::install(fault::FaultPlan::new().kill_task(3));
        let xs: Vec<u64> = (0..8).collect();
        let out = parallel_map_contained(&xs, 2, |&x| x + 100);
        assert_eq!(out.faults.len(), 1);
        assert_eq!(out.faults[0].task, 3);
        assert!(out.faults[0].payload.contains("injected fault"));
        assert!(out.results[3].is_none());
        // One-shot: retrying the faulted task on the caller thread succeeds.
        let retried = run_contained(RETRY_WORKER, 3, || xs[3] + 100);
        assert_eq!(retried, Ok(103));
    }

    #[test]
    fn injected_delays_change_nothing_but_timing() {
        let xs: Vec<u64> = (0..24).collect();
        let clean = parallel_map(&xs, 4, |&x| x * x);
        let _scope = fault::install(fault::FaultPlan::new().delay(42, 200));
        let delayed = parallel_map_contained(&xs, 4, |&x| x * x);
        assert!(delayed.is_clean());
        let delayed: Vec<u64> = delayed.results.into_iter().map(Option::unwrap).collect();
        assert_eq!(clean, delayed);
    }

    #[test]
    fn uncontained_map_still_propagates_panics() {
        // serialize with fault-plan-installing tests (process-global hook)
        let _guard = fault::install(fault::FaultPlan::new());
        let err = std::panic::catch_unwind(|| {
            parallel_map(&[1u8, 2, 3], 2, |&x| {
                assert!(x != 2, "no twos");
                x
            })
        });
        assert!(err.is_err());
    }

    #[test]
    fn threads_env_override_is_respected() {
        // effective_threads never exceeds the work size and never hits 0
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(5, 0), 1);
        assert!(effective_threads(0, 64) >= 1);
    }
}
