//! Dependency-free parallel runtime for the GHD search stack.
//!
//! The offline build environment forbids `rayon`/`crossbeam`, so this crate
//! provides the three primitives the workspace needs, on plain `std`:
//!
//! * [`parallel_map`] — deterministic fork-join map over a slice: results
//!   come back **in input order** regardless of scheduling, so callers that
//!   reduce with order-sensitive operators (first-minimum tie-breaks) get
//!   identical answers sequentially and in parallel.
//! * [`for_each_mut`] — in-place fork-join over disjoint `&mut` items (used
//!   by SAIGA's island evolution, where every island owns its generator).
//! * [`ThreadPool`] — a small queue-of-closures pool for `'static` jobs
//!   (used by long-lived services; the fork-join helpers use scoped threads
//!   and need no pool).
//!
//! Work distribution uses an atomic cursor (work stealing by chunk), so
//! uneven item costs — ubiquitous in branch-and-bound root splitting — do
//! not serialise the run.
//!
//! # Example
//!
//! ```
//! // Square 100 numbers on all available cores; order is preserved.
//! let xs: Vec<u64> = (0..100).collect();
//! let squares = ghd_par::parallel_map(&xs, 0, |&x| x * x);
//! assert_eq!(squares[17], 17 * 17);
//!
//! // Fork-join two closures.
//! let (a, b) = ghd_par::join(|| 2 + 2, || "done");
//! assert_eq!((a, b), (4, "done"));
//!
//! // A tiny pool for fire-and-forget 'static jobs.
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//! let pool = ghd_par::ThreadPool::new(2);
//! let hits = Arc::new(AtomicUsize::new(0));
//! for _ in 0..8 {
//!     let hits = Arc::clone(&hits);
//!     pool.execute(move || {
//!         hits.fetch_add(1, Ordering::Relaxed);
//!     });
//! }
//! pool.wait_idle();
//! assert_eq!(hits.load(Ordering::Relaxed), 8);
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// Number of worker threads to use: the `GHD_THREADS` environment variable
/// when set to a positive integer, otherwise `std::thread::available_parallelism`.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("GHD_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolves a requested thread count: `0` means [`num_threads`], and the
/// result never exceeds `work_items` (no point spawning idle workers).
#[inline]
fn effective_threads(requested: usize, work_items: usize) -> usize {
    let t = if requested == 0 { num_threads() } else { requested };
    t.clamp(1, work_items.max(1))
}

/// Applies `f` to every element of `items` on up to `threads` workers
/// (`0` = auto) and returns the results **in input order**.
///
/// Scheduling is dynamic (atomic cursor), results are written to each item's
/// own slot, so the output is deterministic whenever `f` itself is — the
/// foundation of the "width-identical in parallel mode" guarantee of the
/// search portfolio.
///
/// Panics in `f` propagate to the caller (the scope joins all workers
/// first).
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let n = items.len();
    let mut out: Vec<Option<U>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    let slots: Vec<Mutex<&mut Option<U>>> = out.iter_mut().map(Mutex::new).collect();
    let cursor = AtomicUsize::new(0);
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(&items[i]);
                **slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    drop(slots);
    out.into_iter()
        .map(|v| v.expect("every index visited exactly once"))
        .collect()
}

/// Runs `f` on every element of a mutable slice in parallel (up to
/// `threads` workers; `0` = auto). Items are disjoint, so each worker gets
/// exclusive access to the items it claims via the shared cursor.
pub fn for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let threads = effective_threads(threads, items.len());
    if threads <= 1 || items.len() <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let slots: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
    let cursor = AtomicUsize::new(0);
    let n = slots.len();
    thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let mut guard = slots[i].lock().expect("item slot poisoned");
                f(i, &mut guard);
            });
        }
    });
}

/// Runs the two closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if num_threads() <= 1 {
        return (a(), b());
    }
    thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        let rb = hb.join().expect("joined task panicked");
        (ra, rb)
    })
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<Job>,
    in_flight: usize,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when work arrives or shutdown begins.
    work: Condvar,
    /// Signalled when the pool drains (queue empty, nothing in flight).
    idle: Condvar,
}

/// A fixed-size thread pool for `'static` jobs with a [`ThreadPool::wait_idle`]
/// barrier. Workers are joined on drop.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawns `threads` workers (`0` = auto).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 { num_threads() } else { threads };
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                in_flight: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("ghd-par-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        let mut st = self.shared.state.lock().expect("pool state poisoned");
        assert!(!st.shutdown, "execute after shutdown");
        st.queue.push_back(Box::new(job));
        drop(st);
        self.shared.work.notify_one();
    }

    /// Blocks until the queue is empty and no job is running.
    pub fn wait_idle(&self) {
        let mut st = self.shared.state.lock().expect("pool state poisoned");
        while !st.queue.is_empty() || st.in_flight > 0 {
            st = self.shared.idle.wait(st).expect("pool state poisoned");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state poisoned");
            loop {
                if let Some(job) = st.queue.pop_front() {
                    st.in_flight += 1;
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work.wait(st).expect("pool state poisoned");
            }
        };
        job();
        let mut st = shared.state.lock().expect("pool state poisoned");
        st.in_flight -= 1;
        if st.queue.is_empty() && st.in_flight == 0 {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_map_preserves_order() {
        let xs: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 3, 8] {
            let ys = parallel_map(&xs, threads, |&x| x * 3);
            assert_eq!(ys, xs.iter().map(|&x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parallel_map_handles_empty_and_singleton() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(parallel_map(&[9], 4, |&x| x + 1), vec![10]);
    }

    #[test]
    fn parallel_matches_sequential_for_uneven_work() {
        let xs: Vec<u64> = (0..64).collect();
        let seq = parallel_map(&xs, 1, |&x| (0..(x % 7) * 1000).sum::<u64>() + x);
        let par = parallel_map(&xs, 4, |&x| (0..(x % 7) * 1000).sum::<u64>() + x);
        assert_eq!(seq, par);
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let mut xs = vec![0u32; 100];
        for_each_mut(&mut xs, 4, |i, x| *x += i as u32 + 1);
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(x, i as u32 + 1);
        }
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two".len());
        assert_eq!((a, b), (2, 3));
    }

    #[test]
    fn pool_runs_all_jobs_and_drains() {
        let pool = ThreadPool::new(3);
        assert_eq!(pool.threads(), 3);
        let sum = Arc::new(AtomicU64::new(0));
        for i in 1..=100u64 {
            let sum = Arc::clone(&sum);
            pool.execute(move || {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
        // pool is reusable after an idle barrier
        let sum2 = Arc::clone(&sum);
        pool.execute(move || {
            sum2.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait_idle();
        assert_eq!(sum.load(Ordering::Relaxed), 5051);
    }

    #[test]
    fn threads_env_override_is_respected() {
        // effective_threads never exceeds the work size and never hits 0
        assert_eq!(effective_threads(8, 3), 3);
        assert_eq!(effective_threads(2, 100), 2);
        assert_eq!(effective_threads(5, 0), 1);
        assert!(effective_threads(0, 64) >= 1);
    }
}
