//! Deterministic fault injection for the contained fork-join helpers.
//!
//! Production builds never install a plan, so [`fault_point`] is a single
//! relaxed atomic load on the hot path. Tests and benches install a
//! [`FaultPlan`] via [`install`] to make the *n*th task panic (one-shot:
//! each kill target fires at most once, so a retry of the same task
//! succeeds deterministically) or to inject seeded, bounded delays that
//! shuffle scheduling without changing any result.
//!
//! Installation is guarded by a process-wide scope lock: two tests that
//! both install plans serialise instead of observing each other's faults.
//! Dropping the returned [`FaultScope`] clears the plan.
//!
//! ```
//! use ghd_par::fault::{self, FaultPlan};
//!
//! let _scope = fault::install(FaultPlan::new().kill_task(3));
//! let out = ghd_par::parallel_map_contained(&[0u32, 1, 2, 3, 4], 2, |&x| x);
//! assert_eq!(out.faults.len(), 1);
//! assert_eq!(out.faults[0].task, 3);
//! assert!(out.results[3].is_none());
//! ```

use ghd_prng::{Rng, SplitMix64};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// A declarative fault schedule: which task indices to kill (one-shot) and
/// an optional seeded delay jitter applied to every task.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    kills: Vec<usize>,
    delay: Option<(u64, u64)>,
}

impl FaultPlan {
    /// An empty plan (injects nothing until configured).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Kill (panic) the task with input index `task`. One-shot: the target
    /// is consumed when it fires, so retrying the same task index succeeds.
    #[must_use]
    pub fn kill_task(mut self, task: usize) -> Self {
        self.kills.push(task);
        self
    }

    /// Sleep a deterministic, seeded duration in `0..max_micros` µs before
    /// each task, perturbing the schedule without changing results.
    #[must_use]
    pub fn delay(mut self, seed: u64, max_micros: u64) -> Self {
        self.delay = Some((seed, max_micros));
        self
    }
}

/// What [`fault_point`] decided to do for one task.
enum Action {
    Nothing,
    Sleep(Duration),
    Kill,
}

struct ActivePlan {
    kills: Vec<usize>,
    delay: Option<(u64, u64)>,
    fired: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static ACTIVE: Mutex<Option<ActivePlan>> = Mutex::new(None);
static SCOPE: Mutex<()> = Mutex::new(());

/// Locks a mutex, shrugging off poison: the fault module must keep working
/// after a worker it killed unwound past one of these guards.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// RAII guard returned by [`install`]; the plan stays active until this is
/// dropped. Holding it also holds the process-wide scope lock, serialising
/// concurrent installers across tests.
pub struct FaultScope {
    _scope: MutexGuard<'static, ()>,
}

impl FaultScope {
    /// How many faults (kills) the installed plan has fired so far.
    pub fn fired(&self) -> u64 {
        lock_unpoisoned(&ACTIVE).as_ref().map_or(0, |p| p.fired)
    }
}

impl Drop for FaultScope {
    fn drop(&mut self) {
        *lock_unpoisoned(&ACTIVE) = None;
        ARMED.store(false, Ordering::Release);
    }
}

/// Installs `plan` process-wide and returns the guard keeping it active.
/// Blocks until any previously installed plan is dropped.
pub fn install(plan: FaultPlan) -> FaultScope {
    let scope = lock_unpoisoned(&SCOPE);
    *lock_unpoisoned(&ACTIVE) = Some(ActivePlan {
        kills: plan.kills,
        delay: plan.delay,
        fired: 0,
    });
    ARMED.store(true, Ordering::Release);
    FaultScope { _scope: scope }
}

/// The hook the contained helpers call before running each task. With no
/// plan installed this is one relaxed atomic load. With a plan: decides
/// under the lock, **drops the lock**, then sleeps or panics — so the
/// unwinding never poisons the plan state.
pub(crate) fn fault_point(worker: usize, task: usize) {
    if !ARMED.load(Ordering::Acquire) {
        return;
    }
    let action = {
        let mut guard = lock_unpoisoned(&ACTIVE);
        match guard.as_mut() {
            None => Action::Nothing,
            Some(plan) => {
                if let Some(pos) = plan.kills.iter().position(|&k| k == task) {
                    plan.kills.swap_remove(pos);
                    plan.fired += 1;
                    Action::Kill
                } else if let Some((seed, max_micros)) = plan.delay {
                    if max_micros == 0 {
                        Action::Nothing
                    } else {
                        // Per-task stream: same (seed, task) → same delay,
                        // independent of scheduling.
                        let mut rng = SplitMix64::new(
                            seed ^ (task as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        );
                        Action::Sleep(Duration::from_micros(rng.next_u64() % max_micros))
                    }
                } else {
                    Action::Nothing
                }
            }
        }
        // guard dropped here, before any panic/sleep
    };
    match action {
        Action::Nothing => {}
        Action::Sleep(d) => std::thread::sleep(d),
        Action::Kill => panic!("injected fault: worker {worker} task {task}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_fault_point_is_a_noop() {
        // No plan installed (and the scope lock ensures no concurrent test
        // installed one for us to trip over).
        let _scope = lock_unpoisoned(&SCOPE);
        ARMED.store(false, Ordering::Release);
        fault_point(0, 0);
        fault_point(7, 123);
    }

    #[test]
    fn kill_targets_are_one_shot() {
        let scope = install(FaultPlan::new().kill_task(2));
        let first = std::panic::catch_unwind(|| fault_point(0, 2));
        assert!(first.is_err(), "first visit to task 2 must panic");
        assert_eq!(scope.fired(), 1);
        // Second visit (the retry) passes clean.
        fault_point(0, 2);
        assert_eq!(scope.fired(), 1);
    }

    #[test]
    fn delays_are_deterministic_per_task() {
        let mut a = SplitMix64::new(9 ^ 5u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut b = SplitMix64::new(9 ^ 5u64.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        assert_eq!(a.next_u64(), b.next_u64());
        // And the hook itself survives a delay plan without panicking.
        let _scope = install(FaultPlan::new().delay(9, 50));
        fault_point(1, 5);
    }
}
