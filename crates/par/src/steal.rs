//! Chase–Lev-style work-stealing deques over `u32` task ids.
//!
//! Each worker owns one [`WorkDeque`]: the owner pushes and pops at the
//! *bottom* (LIFO, so a worker keeps drilling into the subtree it just
//! split), while any other worker steals from the *top* (FIFO, so thieves
//! take the oldest — largest — published subproblem). The implementation
//! follows Chase & Lev, "Dynamic Circular Work-Stealing Deque" (SPAA '05),
//! restricted to a fixed-capacity power-of-two ring of [`AtomicU32`] slots:
//!
//! * built on `std::sync::atomic` only — no dependencies, no `unsafe`;
//! * `top` is a monotonically increasing counter, so the thief CAS is
//!   ABA-free;
//! * a slot at ring index `b & mask` is only rewritten once the entry
//!   `capacity` positions earlier has been consumed (enforced by the
//!   fullness check in [`WorkDeque::push`]), so payload loads are never
//!   torn or recycled mid-read;
//! * when the ring is full, `push` returns `false` and the owner executes
//!   the task inline instead of publishing it.
//!
//! # Ownership contract
//!
//! All methods take `&self` and are memory-safe from any thread, but the
//! *scheduling* contract is single-owner: exactly one thread may call
//! [`WorkDeque::push`]/[`WorkDeque::pop`] on a given deque; every other
//! thread must go through [`WorkDeque::steal`]. Violating this cannot cause
//! undefined behaviour (there is no `unsafe` here) but can lose or
//! duplicate task ids, which breaks the caller's pending-task accounting.
//!
//! `SeqCst` is used throughout. The deque sits on the task *publishing*
//! path, which is orders of magnitude colder than node expansion in the
//! branch-and-bound searches; correctness-by-inspection is worth more here
//! than the handful of cycles weaker orderings would save.

use std::sync::atomic::{AtomicIsize, AtomicU32, Ordering::SeqCst};

/// Outcome of a [`WorkDeque::steal`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; retrying may succeed.
    Retry,
    /// Took the oldest published task id.
    Taken(u32),
}

/// A fixed-capacity Chase–Lev deque of `u32` task ids.
pub struct WorkDeque {
    /// Next slot a thief will claim; only ever incremented (CAS).
    top: AtomicIsize,
    /// One past the owner's most recent push; only the owner writes it.
    bottom: AtomicIsize,
    slots: Box<[AtomicU32]>,
    mask: isize,
}

impl WorkDeque {
    /// A deque holding at most `cap` ids (rounded up to a power of two,
    /// minimum 8).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(8).next_power_of_two();
        let slots: Vec<AtomicU32> = (0..cap).map(|_| AtomicU32::new(0)).collect();
        WorkDeque {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            slots: slots.into_boxed_slice(),
            mask: cap as isize - 1,
        }
    }

    /// Maximum number of ids the ring can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Snapshot of the current length. Racy by nature: only a hint for
    /// victim selection, never a correctness signal.
    #[inline]
    pub fn len(&self) -> usize {
        let b = self.bottom.load(SeqCst);
        let t = self.top.load(SeqCst);
        (b - t).max(0) as usize
    }

    /// `true` iff the deque was observed empty (racy hint, like [`len`]).
    ///
    /// [`len`]: WorkDeque::len
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-only: publishes `id` at the bottom. Returns `false` (without
    /// publishing) if the ring is full — the caller should execute the task
    /// inline instead.
    pub fn push(&self, id: u32) -> bool {
        let b = self.bottom.load(SeqCst);
        let t = self.top.load(SeqCst);
        if b - t >= self.slots.len() as isize {
            return false;
        }
        self.slots[(b & self.mask) as usize].store(id, SeqCst);
        self.bottom.store(b + 1, SeqCst);
        true
    }

    /// Owner-only: takes the most recently pushed id (LIFO), racing thieves
    /// for the final element.
    pub fn pop(&self) -> Option<u32> {
        let b = self.bottom.load(SeqCst) - 1;
        self.bottom.store(b, SeqCst);
        let t = self.top.load(SeqCst);
        if t > b {
            // Already empty; restore the canonical empty state.
            self.bottom.store(b + 1, SeqCst);
            return None;
        }
        let id = self.slots[(b & self.mask) as usize].load(SeqCst);
        if t == b {
            // Final element: race any concurrent thief for it.
            let won = self.top.compare_exchange(t, t + 1, SeqCst, SeqCst).is_ok();
            self.bottom.store(b + 1, SeqCst);
            return if won { Some(id) } else { None };
        }
        Some(id)
    }

    /// Thief: attempts to take the oldest id from the top.
    pub fn steal(&self) -> Steal {
        let t = self.top.load(SeqCst);
        let b = self.bottom.load(SeqCst);
        if t >= b {
            return Steal::Empty;
        }
        let id = self.slots[(t & self.mask) as usize].load(SeqCst);
        if self.top.compare_exchange(t, t + 1, SeqCst, SeqCst).is_ok() {
            Steal::Taken(id)
        } else {
            Steal::Retry
        }
    }

    /// Thief convenience: retries [`steal`] until it yields a task or the
    /// deque is observed empty.
    ///
    /// [`steal`]: WorkDeque::steal
    pub fn steal_persistent(&self) -> Option<u32> {
        loop {
            match self.steal() {
                Steal::Taken(id) => return Some(id),
                Steal::Empty => return None,
                Steal::Retry => std::hint::spin_loop(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn owner_sees_lifo_order() {
        let d = WorkDeque::with_capacity(16);
        for id in 0..10 {
            assert!(d.push(id));
        }
        assert_eq!(d.len(), 10);
        for id in (0..10).rev() {
            assert_eq!(d.pop(), Some(id));
        }
        assert_eq!(d.pop(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn thief_sees_fifo_order_and_races_resolve() {
        let d = WorkDeque::with_capacity(8);
        for id in [7u32, 8, 9] {
            assert!(d.push(id));
        }
        assert_eq!(d.steal(), Steal::Taken(7));
        assert_eq!(d.pop(), Some(9));
        assert_eq!(d.steal(), Steal::Taken(8));
        assert_eq!(d.steal(), Steal::Empty);
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn full_ring_rejects_push_without_clobbering() {
        let d = WorkDeque::with_capacity(8);
        for id in 0..8 {
            assert!(d.push(id));
        }
        assert!(!d.push(99), "ring is full");
        // Drain one slot from the top and the push succeeds again.
        assert_eq!(d.steal(), Steal::Taken(0));
        assert!(d.push(99));
        let mut seen = Vec::new();
        while let Some(id) = d.pop() {
            seen.push(id);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2, 3, 4, 5, 6, 7, 99]);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(WorkDeque::with_capacity(0).capacity(), 8);
        assert_eq!(WorkDeque::with_capacity(9).capacity(), 16);
        assert_eq!(WorkDeque::with_capacity(64).capacity(), 64);
    }

    /// Stress: one owner pushing/popping, several thieves stealing; every
    /// published id must be consumed exactly once, by exactly one thread.
    #[test]
    fn concurrent_consumption_is_exactly_once() {
        const TOTAL: usize = 20_000;
        const THIEVES: usize = 3;
        let d = WorkDeque::with_capacity(64);
        let claimed: Vec<AtomicBool> = (0..TOTAL).map(|_| AtomicBool::new(false)).collect();
        let consumed = AtomicUsize::new(0);

        let claim = |id: u32| {
            let first = !claimed[id as usize].swap(true, Ordering::SeqCst);
            assert!(first, "task {id} consumed twice");
            consumed.fetch_add(1, Ordering::SeqCst);
        };

        std::thread::scope(|s| {
            for _ in 0..THIEVES {
                s.spawn(|| loop {
                    match d.steal() {
                        Steal::Taken(id) => claim(id),
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if consumed.load(Ordering::SeqCst) == TOTAL {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
            // Owner: publish everything, popping locally whenever the ring
            // fills up (the "execute inline" path of the scheduler).
            for id in 0..TOTAL as u32 {
                while !d.push(id) {
                    if let Some(local) = d.pop() {
                        claim(local);
                    }
                }
                // Occasionally work locally too, to mix pop into the race.
                if id % 7 == 0 {
                    if let Some(local) = d.pop() {
                        claim(local);
                    }
                }
            }
            while let Some(local) = d.pop() {
                claim(local);
            }
            while consumed.load(Ordering::SeqCst) != TOTAL {
                std::thread::yield_now();
            }
        });
        assert_eq!(consumed.load(Ordering::SeqCst), TOTAL);
        assert!(claimed.iter().all(|c| c.load(Ordering::SeqCst)));
    }
}
