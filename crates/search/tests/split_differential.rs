//! Differential tests for the safe-separator split layer: with splitting
//! enabled the exact searches must report the *same* widths, orderings,
//! and certificates as the monolithic searches — for any thread count,
//! under cancellation, and with a worker fault injected into one block.

use ghd_core::bucket::ghd_from_ordering;
use ghd_core::eval::TwEvaluator;
use ghd_core::{CoverMethod, EliminationOrdering};
use ghd_hypergraph::generators::{graphs, hypergraphs};
use ghd_hypergraph::{Graph, Hypergraph};
use ghd_search::{
    bb_ghw, bb_tw, split_ghw, split_tw, BbConfig, BbGhwConfig, CancelToken, SearchLimits,
};

fn tw_cfg() -> BbConfig {
    BbConfig { limits: SearchLimits::unlimited(), ..BbConfig::default() }
}

fn ghw_cfg() -> BbGhwConfig {
    BbGhwConfig { limits: SearchLimits::unlimited(), ..BbGhwConfig::default() }
}

/// The certificate check the CLI applies before printing any width.
fn certify_tw(g: &Graph, ordering: &[usize], width: usize) {
    let sigma = EliminationOrdering::new(ordering.to_vec()).expect("permutation");
    assert_eq!(TwEvaluator::new(g).width(&sigma), width, "certificate width");
}

fn certify_ghw(h: &Hypergraph, ordering: &[usize], width: usize) {
    let sigma = EliminationOrdering::new(ordering.to_vec()).expect("permutation");
    let ghd = ghd_from_ordering(h, &sigma, CoverMethod::Exact);
    ghd.verify(h).expect("valid GHD");
    assert_eq!(ghd.width(), width, "certificate width");
}

/// Three Mycielski(3) blocks glued on an edge and a cut vertex plus a
/// disjoint grid: survives preprocessing and splits into several blocks.
fn structured(variant: usize) -> Graph {
    let m = graphs::mycielski(3);
    let mn = m.num_vertices(); // 11
    let mut g = Graph::new(46);
    for (u, v) in m.edges() {
        g.add_edge(u, v);
    }
    // second copy glued on the edge {0, 1}
    let bm: Vec<usize> = (0..mn).map(|i| if i < 2 { i } else { 9 + i }).collect();
    for (u, v) in m.edges() {
        g.add_edge(bm[u], bm[v]);
    }
    // third copy at a cut vertex (varies per instance)
    let cut = variant % mn;
    let cm: Vec<usize> = (0..mn).map(|i| if i == 0 { cut } else { 19 + i }).collect();
    for (u, v) in m.edges() {
        g.add_edge(cm[u], cm[v]);
    }
    // disjoint grid component on the remaining 16 vertices
    for (u, v) in graphs::grid(4).edges() {
        g.add_edge(30 + u, 30 + v);
    }
    g
}

#[test]
fn random_batch_split_on_off_identical() {
    for seed in 0..6u64 {
        let g = graphs::gnm_random(16, 34, seed);
        let mono = bb_tw(&g, &tw_cfg());
        let mono_order = mono.ordering.clone().expect("ordering");
        certify_tw(&g, &mono_order, mono.upper_bound);
        for threads in [1, 2, 4] {
            let s = split_tw(&g, &tw_cfg(), threads, None);
            assert_eq!(s.result.upper_bound, mono.upper_bound, "seed {seed} t{threads}");
            assert_eq!(s.result.lower_bound, mono.lower_bound, "seed {seed} t{threads}");
            assert!(s.result.exact, "seed {seed} t{threads}");
            let order = s.result.ordering.expect("ordering");
            assert_eq!(order, mono_order, "seed {seed} t{threads}");
            certify_tw(&g, &order, s.result.upper_bound);
        }
    }
}

#[test]
fn structured_batch_split_on_off_identical() {
    for variant in [0, 3, 7] {
        let g = structured(variant);
        let mono = bb_tw(&g, &tw_cfg());
        let mono_order = mono.ordering.clone().expect("ordering");
        for threads in [1, 2, 4] {
            let s = split_tw(&g, &tw_cfg(), threads, None);
            assert!(s.report.split, "variant {variant} must split");
            assert_eq!(s.result.upper_bound, mono.upper_bound, "variant {variant} t{threads}");
            assert!(s.result.exact);
            let order = s.result.ordering.expect("ordering");
            assert_eq!(order, mono_order, "variant {variant} t{threads}");
            certify_tw(&g, &order, s.result.upper_bound);
        }
    }
}

#[test]
fn ghw_batch_split_on_off_identical() {
    // two structured hypergraphs plus seeded random circuits
    let mut cases: Vec<Hypergraph> = vec![hypergraphs::grid2d(3), hypergraphs::bridge(3)];
    for seed in 0..3u64 {
        // two disjoint circuits in one instance: splits into components
        let a = hypergraphs::random_circuit(8, 10, seed);
        let b = hypergraphs::random_circuit(9, 11, seed + 100);
        let n = a.num_vertices() + b.num_vertices();
        let edges: Vec<Vec<usize>> = a
            .edges()
            .iter()
            .map(ghd_hypergraph::BitSet::to_vec)
            .chain(
                b.edges()
                    .iter()
                    .map(|e| e.iter().map(|v| v + a.num_vertices()).collect()),
            )
            .collect();
        cases.push(Hypergraph::from_edges(n, edges));
    }
    for (i, h) in cases.iter().enumerate() {
        let mono = bb_ghw(h, &ghw_cfg());
        let mono_order = mono.ordering.clone().expect("ordering");
        certify_ghw(h, &mono_order, mono.upper_bound);
        for threads in [1, 2, 4] {
            let s = split_ghw(h, &ghw_cfg(), threads, None);
            assert_eq!(s.result.upper_bound, mono.upper_bound, "case {i} t{threads}");
            assert!(s.result.exact, "case {i} t{threads}");
            let order = s.result.ordering.expect("ordering");
            assert_eq!(order, mono_order, "case {i} t{threads}");
            certify_ghw(h, &order, s.result.upper_bound);
        }
    }
}

#[test]
fn cancel_mid_block_stays_sound() {
    // cancel fires while block solves are in flight: the result must
    // still be a sound, certified anytime answer
    let g = structured(0);
    let token = CancelToken::arm();
    let limits = SearchLimits::unlimited().with_cancel(token.clone());
    let cfg = BbConfig { limits, ..BbConfig::default() };
    let stop = token.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(2));
        stop.cancel();
    });
    let s = split_tw(&g, &cfg, 2, None);
    canceller.join().expect("canceller");
    assert!(s.result.lower_bound <= s.result.upper_bound);
    let order = s.result.ordering.expect("anytime ordering");
    let sigma = EliminationOrdering::new(order).expect("permutation");
    assert!(
        TwEvaluator::new(&g).width(&sigma) <= s.result.upper_bound,
        "ordering must realise the claimed bound"
    );
}

#[test]
fn worker_fault_in_one_block_is_contained() {
    // kill the first block's worker once: the one-shot retry must recover
    // and the final answer must still match the monolithic search bit for
    // bit (the fault is recorded, not silently swallowed)
    let g = structured(0);
    let mono = bb_tw(&g, &tw_cfg());
    let mono_order = mono.ordering.clone().expect("ordering");
    let _scope = ghd_par::fault::install(ghd_par::fault::FaultPlan::new().kill_task(0));
    let s = split_tw(&g, &tw_cfg(), 2, None);
    assert!(s.report.split);
    assert_eq!(s.result.faults.len(), 1, "the injected fault is reported");
    assert_eq!(s.result.faults[0].task, 0);
    assert_eq!(s.result.upper_bound, mono.upper_bound);
    assert!(s.result.exact);
    let order = s.result.ordering.expect("ordering");
    assert_eq!(order, mono_order, "retry restores bit-identity");
    certify_tw(&g, &order, s.result.upper_bound);
}
