//! Regression test for the release-mode id-packing overflow: a worker
//! shard that exhausts its local id space must be *detected* and degrade
//! soundly (fold into the expiry floor like a second fault), never wrap
//! its ids into another worker's range.
//!
//! The real capacity is `2^LOCAL_BITS` (~134M states per shard) — far past
//! what a test can intern — so the test shrinks it via the scope-locked
//! hook in `ghd_search::sharded`.

use ghd_search::bb_ghw::{bb_ghw, bb_ghw_parallel};
use ghd_search::sharded::shrink_local_capacity_for_tests;
use ghd_search::{BbGhwConfig, SearchLimits};
use ghd_hypergraph::generators::hypergraphs;

#[test]
fn shard_overflow_degrades_soundly_instead_of_wrapping() {
    // An instance hard enough to intern well past the shrunken capacity
    // (the greedy alive-cover memo interns one key per expanded node).
    // The true width is computed once at full capacity.
    let h = hypergraphs::random_hypergraph(14, 11, 4, 1);
    let full = bb_ghw(&h, &BbGhwConfig::default());
    assert!(full.exact, "reference run completes");
    let w = full.upper_bound;

    let cfg = BbGhwConfig {
        limits: SearchLimits::unlimited().stats(true),
        ..BbGhwConfig::default()
    };
    let _scope = shrink_local_capacity_for_tests(2);
    let r = bb_ghw_parallel(&h, &cfg, 2);

    // Detection: the overflow is surfaced, not silent.
    let stats = r.stats.as_ref().expect("stats requested");
    assert!(
        stats.interner_overflow,
        "id-space exhaustion must be reported in SearchStats"
    );
    // Soundness: the degraded run keeps certified anytime bounds around
    // the true width and withdraws the exactness claim (the overflowed
    // shard abandoned part of the tree into the expiry floor).
    assert!(!r.exact, "an overflowed run may not claim exactness");
    assert!(r.lower_bound <= w, "lower bound stays sound: {} > {w}", r.lower_bound);
    assert!(r.upper_bound >= w, "upper bound stays sound: {} < {w}", r.upper_bound);
    assert!(r.lower_bound <= r.upper_bound);
}

#[test]
fn full_capacity_runs_stay_clean_and_exact() {
    let h = hypergraphs::random_hypergraph(10, 7, 4, 1);
    let cfg = BbGhwConfig {
        limits: SearchLimits::unlimited().stats(true),
        ..BbGhwConfig::default()
    };
    let seq = bb_ghw(&h, &cfg);
    let par = bb_ghw_parallel(&h, &cfg, 2);
    assert!(seq.exact && par.exact);
    assert_eq!(seq.upper_bound, par.upper_bound);
    for r in [&seq, &par] {
        let stats = r.stats.as_ref().expect("stats requested");
        assert!(!stats.interner_overflow);
        assert!(!stats.queue_degraded);
    }
}
