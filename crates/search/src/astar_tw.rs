//! Algorithm A\*-tw (Chapter 5, Fig 5.1): best-first search over the
//! elimination-ordering tree, with min-fill upper bound, the combined
//! minor-min-width / minor-γ_R lower bound, reductions and PR2.
//!
//! The search state machinery follows §5.2: a single elimination graph is
//! transformed between visited states by restoring to the common prefix of
//! the two elimination paths (§5.2.1); visited states keep only their parent
//! link and vertex for path reconstruction, and their child lists are freed
//! after expansion (§5.2.3). Visiting order is (f ascending, depth
//! descending) per §5.3, and the maximum f-value of visited states is an
//! anytime treewidth lower bound.

use crate::common::{Budget, SearchLimits, SearchResult, Telemetry};
use crate::interner::StateInterner;
use crate::queue::BucketQueue;
use crate::rules::{find_reduction_tw, pr2_allowed_children, swappable_tw};
use ghd_bounds::lower::{tw_lower_bound, tw_lower_bound_elim, LbScratch};
use ghd_bounds::upper::tw_upper_bound;
use ghd_hypergraph::{EliminationGraph, Graph};

pub(crate) struct Node {
    pub parent: u32,
    pub vertex: u32,
    pub g: u32,
    pub f: u32,
    pub depth: u32,
    pub reduced: bool,
    /// Candidate vertices to eliminate next; freed after expansion (§5.2.3).
    pub children: Vec<u32>,
}

/// Rebuilds the elimination path (root → node) of `id` into `path`
/// (a reusable scratch buffer — states store only `(parent, vertex)`).
pub(crate) fn path_of_into(nodes: &[Node], mut id: u32, path: &mut Vec<u32>) {
    path.clear();
    while id != 0 {
        path.push(nodes[id as usize].vertex);
        id = nodes[id as usize].parent;
    }
    path.reverse();
}

/// Transforms `eg` from the state reached via `current` to the state of
/// `target` by restoring to the common prefix and eliminating the rest.
pub(crate) fn transform(eg: &mut EliminationGraph, current: &mut Vec<u32>, target: &[u32]) {
    let common = current
        .iter()
        .zip(target)
        .take_while(|(a, b)| a == b)
        .count();
    while current.len() > common {
        eg.restore();
        current.pop();
    }
    for &v in &target[common..] {
        eg.eliminate(v as usize);
        current.push(v);
    }
}

/// Computes the treewidth of `g` with A\*. Exact when it terminates within
/// limits; otherwise an anytime lower bound (§5.3) plus the heuristic upper
/// bound are reported.
pub fn astar_tw(g: &Graph, limits: SearchLimits) -> SearchResult {
    let n = g.num_vertices();
    let budget = Budget::new(&limits);
    let mut ticker = budget.worker();
    let mut telemetry = Telemetry::new(limits.collect_stats);
    let root_lb = tw_lower_bound::<ghd_prng::rngs::StdRng>(g, None);
    let (ub, ub_order) = tw_upper_bound::<ghd_prng::rngs::StdRng>(g, None);
    telemetry.sample(budget.elapsed(), ub, root_lb.min(ub));
    if root_lb >= ub || n <= 1 {
        return SearchResult {
            upper_bound: ub,
            lower_bound: ub,
            exact: true,
            ordering: Some(ub_order.into_vec()),
            nodes_expanded: 0,
            elapsed: budget.elapsed(),
            cover_cache: None,
            stats: telemetry.finish(),
            faults: Vec::new(),
        };
    }

    let mut eg = EliminationGraph::new(g);
    let mut nodes: Vec<Node> = Vec::new();
    let mut queue = BucketQueue::new();
    let mut lb = root_lb;
    let mut lb_scratch = LbScratch::new();
    // duplicate detection: two states with the same eliminated set have the
    // same residual graph; the one with smaller g dominates (an improvement
    // over the thesis' A*, see DESIGN.md). The alive bitset's blocks are
    // hash-consed into `seen` (probes hash the borrowed `&[u64]`, the
    // canonical copy lands once in the bump arena) and the best g per state
    // lives in the dense side table `seen_g` (`u32::MAX` = unvisited).
    let mut seen = StateInterner::for_vertices(n);
    let mut seen_g: Vec<u32> = Vec::new();

    // root state
    let root_children: Vec<u32> = match find_reduction_tw(&eg, root_lb) {
        Some(w) => vec![w as u32],
        None => eg.alive().iter().map(|v| v as u32).collect(),
    };
    let root_reduced = root_children.len() == 1 && n > 1;
    nodes.push(Node {
        parent: 0,
        vertex: u32::MAX,
        g: 0,
        f: root_lb as u32,
        depth: 0,
        reduced: root_reduced,
        children: root_children,
    });
    queue.push(root_lb, 0, 0);

    let mut current_path: Vec<u32> = Vec::new();
    let mut target_path: Vec<u32> = Vec::new();

    while let Some(entry_id) = queue.pop() {
        let entry_f = nodes[entry_id as usize].f;
        if !ticker.tick() {
            // anytime: report the best proven lower bound (§5.3). A
            // degraded queue (below-floor push, detected and clamped)
            // voids the visited-f argument: fall back to the root bound.
            let qd = queue.degraded();
            telemetry.note(|s| s.queue_degraded |= qd);
            let lower_bound = if qd {
                root_lb.min(ub)
            } else {
                lb.max(entry_f as usize).min(ub)
            };
            telemetry.sample(budget.elapsed(), ub, lower_bound);
            return SearchResult {
                upper_bound: ub,
                lower_bound,
                exact: !qd && lb.max(entry_f as usize) >= ub,
                ordering: Some(ub_order.into_vec()),
                nodes_expanded: ticker.nodes(),
                elapsed: budget.elapsed(),
                cover_cache: None,
                stats: telemetry.finish(),
                faults: Vec::new(),
            };
        }
        let s_id = entry_id as usize;
        path_of_into(&nodes, entry_id, &mut target_path);
        transform(&mut eg, &mut current_path, &target_path);

        // new lower bound found: the visited f-sequence is nondecreasing
        if (nodes[s_id].f as usize) > lb {
            lb = nodes[s_id].f as usize;
            telemetry.sample(budget.elapsed(), ub, lb.min(ub));
        }

        // goal: the partial solution already dominates the rest
        if nodes[s_id].g as usize >= eg.num_alive().saturating_sub(1) {
            let mut order: Vec<usize> = {
                let in_path: std::collections::HashSet<u32> = target_path.iter().copied().collect();
                (0..n).filter(|&v| !in_path.contains(&(v as u32))).collect()
            };
            order.extend(target_path.iter().rev().map(|&v| v as usize));
            let width = nodes[s_id].g as usize;
            // optimality of the first goal relies on the proven pop order;
            // a degraded queue can only claim the ordering as an upper bound
            let qd = queue.degraded();
            telemetry.note(|s| s.queue_degraded |= qd);
            let lower_bound = if qd { root_lb.min(width) } else { width };
            telemetry.sample(budget.elapsed(), width, lower_bound);
            return SearchResult {
                upper_bound: width,
                lower_bound,
                exact: !qd,
                ordering: Some(order),
                nodes_expanded: ticker.nodes(),
                elapsed: budget.elapsed(),
                cover_cache: None,
                stats: telemetry.finish(),
                faults: Vec::new(),
            };
        }

        // expand: evaluate children of s
        let s_children = std::mem::take(&mut nodes[s_id].children); // §5.2.3
        let s_reduced = nodes[s_id].reduced;
        if s_reduced {
            telemetry.prune(|p| p.simplicial += 1);
        }
        let (s_g, s_f, s_depth) = (nodes[s_id].g, nodes[s_id].f, nodes[s_id].depth);
        for &v in &s_children {
            let v_us = v as usize;
            // PR2 grandchild filter evaluated in G^s (before eliminating v)
            let pr2_set = if !s_reduced {
                Some(pr2_allowed_children(&eg, v_us, swappable_tw))
            } else {
                None
            };
            let d = eg.eliminate(v_us) as u32;
            let t_g = s_g.max(d);
            let mut t_f = t_g.max(s_f);
            if (t_f as usize) < ub {
                let h =
                    tw_lower_bound_elim::<ghd_prng::rngs::StdRng>(&eg, None, &mut lb_scratch)
                        as u32;
                t_f = t_f.max(h);
            }
            let dominated = (t_f as usize) < ub && {
                let (key, _) = seen.intern(eg.alive().blocks());
                let k = key as usize;
                if seen_g.len() <= k {
                    seen_g.resize(k + 1, u32::MAX);
                }
                if seen_g[k] <= t_g {
                    true
                } else {
                    seen_g[k] = t_g;
                    false
                }
            };
            if (t_f as usize) >= ub {
                telemetry.prune(|p| p.f_prunes += 1);
            } else if dominated {
                telemetry.prune(|p| p.dominance_hits += 1);
            }
            if (t_f as usize) < ub && !dominated {
                let (children, reduced) = match find_reduction_tw(&eg, t_f as usize) {
                    Some(w) => (vec![w as u32], true),
                    None => {
                        let set: Vec<u32> = match &pr2_set {
                            Some(s) => s.iter().map(|x| x as u32).collect(),
                            None => eg.alive().iter().map(|x| x as u32).collect(),
                        };
                        if let (true, Some(s)) = (telemetry.on(), &pr2_set) {
                            let cut = eg.num_alive().saturating_sub(s.len()) as u64;
                            telemetry.prune(|p| p.pr2_filtered += cut);
                        }
                        (set, false)
                    }
                };
                let id = nodes.len() as u32;
                nodes.push(Node {
                    parent: entry_id,
                    vertex: v,
                    g: t_g,
                    f: t_f,
                    depth: s_depth + 1,
                    reduced,
                    children,
                });
                queue.push(t_f as usize, (s_depth + 1) as usize, id);
            }
            eg.restore();
        }
        if telemetry.on() {
            telemetry.peaks(
                queue.len(),
                seen.len(),
                queue.bytes(),
                seen.bytes() + seen_g.capacity() * std::mem::size_of::<u32>(),
            );
        }
    }

    // queue exhausted: every state with f < ub was visited → tw = ub
    // (unless a detected below-floor push voided the visit order)
    let qd = queue.degraded();
    telemetry.note(|s| s.queue_degraded |= qd);
    let lower_bound = if qd { root_lb.min(ub) } else { ub };
    telemetry.sample(budget.elapsed(), ub, lower_bound);
    SearchResult {
        upper_bound: ub,
        lower_bound,
        exact: !qd,
        ordering: Some(ub_order.into_vec()),
        nodes_expanded: ticker.nodes(),
        elapsed: budget.elapsed(),
        cover_cache: None,
        stats: telemetry.finish(),
        faults: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bb_tw::{bb_tw, BbConfig};
    use ghd_core::eval::TwEvaluator;
    use ghd_core::EliminationOrdering;
    use ghd_hypergraph::generators::graphs;

    fn exact_tw(g: &Graph) -> usize {
        let r = astar_tw(g, SearchLimits::unlimited());
        assert!(r.exact, "A* did not complete");
        r.upper_bound
    }

    #[test]
    fn basic_families() {
        assert_eq!(exact_tw(&graphs::path(8)), 1);
        assert_eq!(exact_tw(&graphs::cycle(9)), 2);
        assert_eq!(exact_tw(&graphs::complete(7)), 6);
        assert_eq!(exact_tw(&graphs::mycielski(3)), 5); // Table 5.1: myciel3
    }

    #[test]
    fn grids_match_table_5_2() {
        for n in 2..=4 {
            assert_eq!(exact_tw(&graphs::grid(n)), n, "grid{n}");
        }
    }

    #[test]
    fn agrees_with_branch_and_bound_on_random_graphs() {
        for seed in 0..8u64 {
            let g = graphs::gnm_random(13, 30, seed);
            let a = astar_tw(&g, SearchLimits::unlimited());
            let b = bb_tw(&g, &BbConfig::default());
            assert!(a.exact && b.exact);
            assert_eq!(a.upper_bound, b.upper_bound, "seed {seed}");
        }
    }

    #[test]
    fn goal_ordering_realises_width() {
        let g = graphs::grid(4);
        let r = astar_tw(&g, SearchLimits::unlimited());
        if let Some(o) = r.ordering {
            let sigma = EliminationOrdering::new(o).unwrap();
            let w = TwEvaluator::new(&g).width(&sigma);
            assert!(w <= r.upper_bound);
        }
    }

    #[test]
    fn anytime_lower_bound_is_sound() {
        let g = graphs::queen(5); // tw = 18, too hard for 200 expansions
        let r = astar_tw(&g, SearchLimits::with_nodes(200));
        assert!(r.lower_bound <= 18);
        assert!(r.lower_bound >= 1);
        assert!(r.upper_bound >= 18);
        assert!(r.nodes_expanded <= 200, "budget overrun: {}", r.nodes_expanded);
    }

    #[test]
    fn stats_collection_is_behaviourally_free() {
        for (g, limits) in [
            (graphs::grid(4), SearchLimits::unlimited()),
            (graphs::queen(5), SearchLimits::with_nodes(200)),
        ] {
            let off = astar_tw(&g, limits.clone());
            let on = astar_tw(&g, limits.stats(true));
            assert_eq!(on.upper_bound, off.upper_bound);
            assert_eq!(on.lower_bound, off.lower_bound);
            assert_eq!(on.ordering, off.ordering);
            assert_eq!(on.nodes_expanded, off.nodes_expanded);
            assert!(off.stats.is_none());
            let stats = on.stats.expect("stats requested");
            assert!(!stats.incumbents.is_empty());
            if on.nodes_expanded > 1 {
                assert!(stats.open_peak > 0, "heap high-water mark recorded");
                assert!(stats.seen_peak > 0, "seen-set high-water mark recorded");
            }
        }
    }

    #[test]
    fn transform_walks_between_arbitrary_states() {
        let g = graphs::grid(3);
        let mut eg = EliminationGraph::new(&g);
        let snapshot = eg.to_graph();
        let mut cur: Vec<u32> = Vec::new();
        transform(&mut eg, &mut cur, &[0, 1, 2]);
        assert_eq!(eg.num_alive(), 6);
        transform(&mut eg, &mut cur, &[0, 5]);
        assert_eq!(eg.num_alive(), 7);
        assert_eq!(cur, vec![0, 5]);
        transform(&mut eg, &mut cur, &[]);
        assert_eq!(eg.to_graph(), snapshot);
    }
}
