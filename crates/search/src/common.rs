//! Shared plumbing for the exact anytime algorithms: **global** resource
//! budgets, the per-worker ticking view onto them, the search telemetry
//! layer, and the uniform result type.
//!
//! # Budget semantics
//!
//! A [`SearchLimits`] describes *one* budget for *one* search run — not one
//! budget per worker. [`Budget`] is the shared realisation: a single
//! wall-clock deadline plus a single atomic pool of node credits that every
//! worker draws from. `bb_tw_parallel`/`bb_ghw_parallel` hand each
//! root-split worker a [`Ticker`] view onto the *same* budget, so a
//! `time_limit` of T finishes in O(T) wall-clock and a `max_nodes` of N
//! expands at most N states **in total**, for any thread count. (Before
//! this layer each worker owned a private ticker, silently inflating the
//! budget by the number of root children.)
//!
//! # Telemetry
//!
//! [`SearchStats`] carries the anytime trajectory ((elapsed, ub, lb)
//! incumbent samples), per-rule prune counters, A\* heap/seen high-water
//! marks and per-worker cover-cache stats. Collection is gated by
//! [`SearchLimits::collect_stats`] and is *behaviourally free*: the
//! collectors only record — they never influence expansion order, bounds or
//! node accounting — and the no-op path is a single branch on a dead
//! `Option`. Tests assert bit-identical `upper_bound` / `lower_bound` /
//! `ordering` / `nodes_expanded` with stats on and off.

use ghd_core::setcover::CacheStats;
use ghd_par::WorkerFault;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation handle threaded into a search [`Budget`].
///
/// The default token is *inert*: it can never fire, costs nothing to
/// check, and keeps `SearchLimits::default()` meaning "run to
/// completion". An armed token wraps a shared flag that any holder — a
/// daemon's `cancel` verb, a signal handler, a test — can flip;
/// in-flight searches observe it on the **existing** periodic deadline
/// check (every 16th expansion), so cancellation adds zero new hot-path
/// cost. Like budget expiry, cancellation is sticky and global: one
/// observation stops every worker at its next check, and the search
/// reports its certified anytime bounds exactly as if the clock had run
/// out.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Option<Arc<AtomicBool>>);

impl CancelToken {
    /// A token that can actually be cancelled.
    pub fn arm() -> Self {
        CancelToken(Some(Arc::new(AtomicBool::new(false))))
    }

    /// Wraps an existing shared flag (e.g. a daemon's per-request flag),
    /// so callers outside this crate can own the storage.
    pub fn from_flag(flag: Arc<AtomicBool>) -> Self {
        CancelToken(Some(flag))
    }

    /// Requests cancellation. A no-op on an inert token.
    pub fn cancel(&self) {
        if let Some(flag) = &self.0 {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// `true` once cancellation was requested (always `false` for inert).
    pub fn is_cancelled(&self) -> bool {
        self.0.as_ref().is_some_and(|f| f.load(Ordering::Relaxed))
    }
}

/// Resource limits for a search run. Both algorithm families in the thesis
/// are *anytime*: when a limit is hit they report the best upper bound found
/// and a proven lower bound (§5.3).
///
/// The limits are **global per run**: parallel searches share one deadline
/// and one node pool across all workers (see [`Budget`]).
#[derive(Clone, Debug, Default)]
pub struct SearchLimits {
    /// Wall-clock budget (the thesis used one hour per run).
    pub time_limit: Option<Duration>,
    /// Cap on search-state expansions, **summed over all workers**
    /// (deterministic alternative to time).
    pub max_nodes: Option<u64>,
    /// Collect [`SearchStats`] telemetry (incumbent timeline, prune
    /// counters, high-water marks). Off by default; results are
    /// bit-identical either way.
    pub collect_stats: bool,
    /// Cooperative cancellation handle. Inert by default; when armed, a
    /// cancel stops the run exactly like a wall-clock expiry (anytime
    /// bounds reported, sticky across all workers).
    pub cancel: CancelToken,
}

impl SearchLimits {
    /// No limits: run to completion (exact result guaranteed).
    pub fn unlimited() -> Self {
        SearchLimits::default()
    }

    /// Wall-clock limit only.
    pub fn with_time(d: Duration) -> Self {
        SearchLimits {
            time_limit: Some(d),
            ..SearchLimits::default()
        }
    }

    /// Node-expansion limit only.
    pub fn with_nodes(n: u64) -> Self {
        SearchLimits {
            max_nodes: Some(n),
            ..SearchLimits::default()
        }
    }

    /// Same limits with telemetry collection switched on/off.
    pub fn stats(mut self, on: bool) -> Self {
        self.collect_stats = on;
        self
    }

    /// Same limits with a cancellation token attached.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }
}

/// Node credits a [`Ticker`] reserves from the shared pool per refill.
/// Small enough that a worker cannot strand a meaningful slice of the
/// budget, large enough that the atomic is off the per-node hot path.
const CREDIT_BATCH: u64 = 64;

/// One shared budget for a whole search run: a single start instant /
/// deadline and a single atomic node pool. Workers interact with it through
/// [`Budget::worker`] tickers; expiry is sticky and global, so one worker
/// hitting the deadline stops every other worker at its next check.
pub struct Budget {
    start: Instant,
    deadline: Option<Instant>,
    /// Remaining node credits (absent = unlimited).
    pool: Option<AtomicU64>,
    /// Sticky global expiry flag (any cause; for reporting).
    expired: AtomicBool,
    /// Sticky wall-clock expiry. Separate from `expired` because a deadline
    /// must stop *every* worker immediately, while pool exhaustion only
    /// stops workers once they cannot refill — a worker still holding batch
    /// credits is entitled to spend them (the pool already accounted them).
    deadline_hit: AtomicBool,
    /// Cooperative cancellation handle (inert unless the caller armed it).
    cancel: CancelToken,
    /// Sticky record that expiry was *caused* by cancellation, so callers
    /// can label the outcome `cancelled` rather than `budget expired`.
    cancelled: AtomicBool,
    /// Telemetry collection flag, carried alongside the budget so searches
    /// need only the limits to configure themselves.
    collect_stats: bool,
}

impl Budget {
    /// A fresh budget; the clock starts now.
    pub fn new(limits: &SearchLimits) -> Self {
        let start = Instant::now();
        Budget {
            start,
            deadline: limits.time_limit.map(|t| start + t),
            pool: limits.max_nodes.map(AtomicU64::new),
            expired: AtomicBool::new(false),
            deadline_hit: AtomicBool::new(false),
            cancel: limits.cancel.clone(),
            cancelled: AtomicBool::new(false),
            collect_stats: limits.collect_stats,
        }
    }

    /// A per-worker ticking view onto this budget.
    pub fn worker(&self) -> Ticker<'_> {
        Ticker {
            budget: self,
            nodes: 0,
            credits: 0,
            check_mask: 0xF,
            expired: false,
        }
    }

    /// Whether telemetry collection was requested.
    pub fn collect_stats(&self) -> bool {
        self.collect_stats
    }

    /// Time elapsed since the budget was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// `true` once any worker observed expiry.
    pub fn expired(&self) -> bool {
        self.expired.load(Ordering::Relaxed)
    }

    /// `true` iff the run was stopped by cancellation (a cancelled run is
    /// also [`expired`](Budget::expired); the converse does not hold).
    pub fn cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Checks the sticky stop flags, the cancel token, and the clock
    /// itself; marks a hit globally (stopping every worker at its next
    /// check). Cancellation rides the wall-clock path — a cancel must
    /// stop every worker immediately, exactly like a deadline, not just
    /// starve refills like pool exhaustion.
    fn check_deadline(&self) -> bool {
        if self.deadline_hit.load(Ordering::Relaxed) {
            return true;
        }
        if self.cancel.is_cancelled() {
            self.cancelled.store(true, Ordering::Relaxed);
            self.deadline_hit.store(true, Ordering::Relaxed);
            self.expired.store(true, Ordering::Relaxed);
            return true;
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.deadline_hit.store(true, Ordering::Relaxed);
                self.expired.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Reserves up to `want` node credits; 0 means the pool is exhausted
    /// (expiry is then marked globally).
    fn acquire(&self, want: u64) -> u64 {
        let Some(pool) = &self.pool else {
            return want;
        };
        let got = pool
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |left| {
                Some(left - left.min(want))
            })
            .map_or(0, |left| left.min(want));
        if got == 0 {
            self.expired.store(true, Ordering::Relaxed);
        }
        got
    }

    /// Returns unused credits to the pool (worker finished its subtree).
    fn release(&self, credits: u64) {
        if credits > 0 {
            if let Some(pool) = &self.pool {
                pool.fetch_add(credits, Ordering::Relaxed);
            }
        }
    }
}

/// A per-worker view onto a shared [`Budget`]: counts this worker's
/// expansions, draws node credits from the global pool in batches, and
/// checks the wall clock only every few events to keep `Instant::now` off
/// the hot path.
pub struct Ticker<'a> {
    budget: &'a Budget,
    nodes: u64,
    credits: u64,
    check_mask: u64,
    expired: bool,
}

impl Ticker<'_> {
    /// Registers one expansion; returns `true` while within budget. A
    /// rejected expansion is **not counted**: after expiry [`Ticker::nodes`]
    /// never exceeds the node budget (summed across workers).
    pub fn tick(&mut self) -> bool {
        if self.expired {
            return false;
        }
        // periodic check: sticky deadline flag + wall clock
        if self.nodes & self.check_mask == 0 && self.budget.check_deadline() {
            self.expired = true;
            return false;
        }
        // node credits: refill from the shared pool in batches
        if self.budget.pool.is_some() {
            if self.credits == 0 {
                self.credits = self.budget.acquire(CREDIT_BATCH);
                if self.credits == 0 {
                    self.expired = true;
                    return false;
                }
            }
            self.credits -= 1;
        }
        self.nodes += 1;
        true
    }

    /// `true` once this worker observed expiry.
    pub fn expired(&self) -> bool {
        self.expired
    }

    /// Expansions performed by **this worker** (counted ticks only).
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// Time elapsed since the shared budget was created.
    pub fn elapsed(&self) -> Duration {
        self.budget.elapsed()
    }
}

impl Drop for Ticker<'_> {
    fn drop(&mut self) {
        // hand unused credits back so sibling workers can spend them
        self.budget.release(self.credits);
        self.credits = 0;
    }
}

/// One point of the anytime trajectory: the bounds held at `elapsed`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IncumbentSample {
    /// Time since the search (budget) started.
    pub elapsed: Duration,
    /// Best upper bound held at that moment.
    pub upper_bound: usize,
    /// Best proven lower bound held at that moment.
    pub lower_bound: usize,
}

/// Per-rule prune counters. Which fields a search populates depends on the
/// algorithm (BB vs A\*) and the width measure (tw vs ghw); unused fields
/// stay 0.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneCounters {
    /// Simplicial / strongly-almost-simplicial reductions applied (§8.2 /
    /// §4.4.3): states whose child list collapsed to one forced vertex.
    pub simplicial: u64,
    /// Children excluded by pruning rule 2 (non-adjacent swaps, §4.4.4 /
    /// §8.3), summed over all expansions.
    pub pr2_filtered: u64,
    /// Subtrees closed by PR1 (§4.4.5) or its GHW analogue (residual vertex
    /// set coverable within the current cost).
    pub pr1_closures: u64,
    /// Children cut because their f-value reached the incumbent.
    pub f_prunes: u64,
    /// A\* duplicate-detection hits (state dominated by a cheaper visit of
    /// the same eliminated set).
    pub dominance_hits: u64,
    /// Bag covers whose internal branch-and-bound exhausted its budget
    /// (result degraded to an upper estimate).
    pub capped_covers: u64,
}

impl PruneCounters {
    fn absorb(&mut self, o: &PruneCounters) {
        self.simplicial += o.simplicial;
        self.pr2_filtered += o.pr2_filtered;
        self.pr1_closures += o.pr1_closures;
        self.f_prunes += o.f_prunes;
        self.dominance_hits += o.dominance_hits;
        self.capped_covers += o.capped_covers;
    }
}

/// Telemetry of one search run (see [`SearchLimits::collect_stats`]).
///
/// For parallel searches the counters are summed over workers, incumbent
/// samples are merged in elapsed order (all workers share the budget's
/// clock), high-water marks take the max, and `worker_caches` keeps one
/// entry per worker (in root-child order) so the merged
/// [`SearchResult::cover_cache`] gauge semantics stay auditable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Incumbent timeline: a sample at the root (the heuristic bounds) plus
    /// one per improvement of either bound.
    pub incumbents: Vec<IncumbentSample>,
    /// Per-rule prune counters.
    pub prunes: PruneCounters,
    /// A\* open-list high-water mark (0 for the BB searches).
    pub open_peak: u64,
    /// A\* seen-set high-water mark (0 for the BB searches).
    pub seen_peak: u64,
    /// Peak bytes reserved by the A\* open list (bucket queue; 0 for BB).
    pub open_peak_bytes: u64,
    /// Peak bytes reserved by the A\* closed set (state interner plus its
    /// dense g-side-table; 0 for BB).
    pub seen_peak_bytes: u64,
    /// Per-worker cover-cache stats (parallel BB-ghw; empty elsewhere).
    pub worker_caches: Vec<CacheStats>,
    /// Per-worker work-stealing counters (parallel BB searches; empty
    /// elsewhere), one entry per worker in worker order.
    pub worker_steals: Vec<StealCounters>,
    /// `true` iff a bucket queue observed a push below its advancing floor
    /// (a broken pathmax-monotonicity invariant, detected in release builds
    /// too). The push is clamped so it still pops, but pop order is no
    /// longer proven heap-equivalent: the search withdraws its exactness
    /// claim and reports the conservative root lower bound.
    pub queue_degraded: bool,
    /// `true` iff an interner shard exhausted its worker-local id space
    /// (`2^LOCAL_BITS` states) and its worker degraded soundly — folding
    /// into the expiry floor like a second fault — instead of silently
    /// wrapping ids into another worker's range.
    pub interner_overflow: bool,
    /// Contained worker panics observed during the run (parallel searches
    /// only; each record names the worker, the root-split task index and the
    /// stringified panic payload). Mirrors [`SearchResult::faults`], which
    /// is populated even when telemetry is off.
    pub faults: Vec<WorkerFault>,
}

/// Per-worker counters of the work-stealing scheduler. All counters are
/// attributed to the **executing** worker: a task published by worker 0 but
/// run by worker 3 counts in worker 3's `executed`/`stolen`, never twice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StealCounters {
    /// Subproblems this worker split off onto its own deque.
    pub published: u64,
    /// Tasks this worker ran to completion (own, stolen and retried alike).
    pub executed: u64,
    /// Of `executed`, tasks taken from another worker's deque.
    pub stolen: u64,
    /// Of `executed`, second attempts at a task whose first run faulted.
    pub retried: u64,
}

impl SearchStats {
    /// Merges per-worker stats into one run-level record: counters summed,
    /// samples interleaved by elapsed time, peaks maxed.
    pub fn merge<I: IntoIterator<Item = SearchStats>>(parts: I) -> SearchStats {
        let mut out = SearchStats::default();
        for p in parts {
            out.prunes.absorb(&p.prunes);
            out.incumbents.extend(p.incumbents);
            out.open_peak = out.open_peak.max(p.open_peak);
            out.seen_peak = out.seen_peak.max(p.seen_peak);
            out.open_peak_bytes = out.open_peak_bytes.max(p.open_peak_bytes);
            out.seen_peak_bytes = out.seen_peak_bytes.max(p.seen_peak_bytes);
            out.worker_caches.extend(p.worker_caches);
            out.worker_steals.extend(p.worker_steals);
            out.queue_degraded |= p.queue_degraded;
            out.interner_overflow |= p.interner_overflow;
            out.faults.extend(p.faults);
        }
        out.incumbents.sort_by_key(|s| s.elapsed);
        out.faults.sort_by_key(|f| f.task);
        out
    }
}

/// Internal telemetry collector: a dead `Option` when disabled, so the
/// enabled-check is one branch and the disabled path allocates nothing.
/// Recording never feeds back into the search (bit-identical results on or
/// off).
pub(crate) struct Telemetry {
    inner: Option<Box<SearchStats>>,
}

impl Telemetry {
    pub fn new(enabled: bool) -> Self {
        Telemetry {
            inner: enabled.then(|| Box::new(SearchStats::default())),
        }
    }

    /// Whether collection is enabled (gate for non-trivial measurements).
    #[inline]
    pub fn on(&self) -> bool {
        self.inner.is_some()
    }

    /// Records an incumbent sample `(elapsed, ub, lb)`.
    #[inline]
    pub fn sample(&mut self, elapsed: Duration, ub: usize, lb: usize) {
        if let Some(s) = &mut self.inner {
            s.incumbents.push(IncumbentSample {
                elapsed,
                upper_bound: ub,
                lower_bound: lb,
            });
        }
    }

    /// Bumps a prune counter.
    #[inline]
    pub fn prune(&mut self, f: impl FnOnce(&mut PruneCounters)) {
        if let Some(s) = &mut self.inner {
            f(&mut s.prunes);
        }
    }

    /// Updates the A\* high-water marks (entry counts and reserved bytes).
    /// The byte figures can cost a structure walk to compute, so callers
    /// should evaluate them only under an [`Telemetry::on`] gate.
    #[inline]
    pub fn peaks(&mut self, open: usize, seen: usize, open_bytes: usize, seen_bytes: usize) {
        if let Some(s) = &mut self.inner {
            s.open_peak = s.open_peak.max(open as u64);
            s.seen_peak = s.seen_peak.max(seen as u64);
            s.open_peak_bytes = s.open_peak_bytes.max(open_bytes as u64);
            s.seen_peak_bytes = s.seen_peak_bytes.max(seen_bytes as u64);
        }
    }

    /// Appends one worker's cover-cache stats.
    #[inline]
    pub fn cache(&mut self, stats: CacheStats) {
        if let Some(s) = &mut self.inner {
            s.worker_caches.push(stats);
        }
    }

    /// Applies an arbitrary update (degradation flags and similar one-off
    /// markers) when collection is enabled.
    #[inline]
    pub fn note(&mut self, f: impl FnOnce(&mut SearchStats)) {
        if let Some(s) = &mut self.inner {
            f(s);
        }
    }

    /// Finalises into the result's optional stats.
    pub fn finish(self) -> Option<SearchStats> {
        self.inner.map(|b| *b)
    }
}

/// Completes a best suffix into a full elimination ordering (front:
/// not-yet-eliminated vertices in index order, back: the suffix reversed).
/// Falls back to `fallback` when no suffix was recorded.
pub(crate) fn complete_ordering(n: usize, best_suffix: &[usize], fallback: Vec<usize>) -> Vec<usize> {
    if best_suffix.is_empty() {
        return fallback;
    }
    let mut in_suffix = vec![false; n];
    for &v in best_suffix {
        in_suffix[v] = true;
    }
    let mut order: Vec<usize> = (0..n).filter(|&v| !in_suffix[v]).collect();
    order.extend(best_suffix.iter().rev());
    order
}

/// The anytime lower bound after an expiry: everything explored is bounded
/// by `ub`, everything still open by the expiry floor (the minimum f-value
/// left on the frontier), and the root heuristic bound always holds.
pub(crate) fn anytime_lb(root_lb: usize, expiry_floor: usize, ub: usize) -> usize {
    root_lb.max(expiry_floor.min(ub))
}

/// The outcome of a width search (treewidth or generalized hypertree width).
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// Best width achieved by a complete elimination ordering.
    pub upper_bound: usize,
    /// Proven lower bound on the optimal width.
    pub lower_bound: usize,
    /// `true` iff `upper_bound == lower_bound` was *proven* (search finished
    /// or the bounds met) — then `upper_bound` is the exact width.
    pub exact: bool,
    /// An elimination ordering realising `upper_bound`, when one was
    /// materialised.
    pub ordering: Option<Vec<usize>>,
    /// Search states expanded (summed over workers; never exceeds
    /// [`SearchLimits::max_nodes`]).
    pub nodes_expanded: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Set-cover transposition cache counters, for searches that ran one
    /// (`None` for cache-less searches, e.g. the treewidth algorithms).
    /// For parallel runs this is the cross-worker merge: `hits`, `misses`
    /// and `evictions` are true counters and are **summed**; `entries` is a
    /// gauge and reports the **maximum** across workers (per-worker values
    /// live in [`SearchStats::worker_caches`]).
    pub cover_cache: Option<CacheStats>,
    /// Telemetry, when requested via [`SearchLimits::collect_stats`].
    pub stats: Option<SearchStats>,
    /// Contained worker panics (always populated, telemetry on or off).
    /// Empty for a clean run; a non-empty list means the result is still
    /// valid — every faulted root-split task was retried on the caller
    /// thread or its bound degraded soundly — but the process hosted a
    /// panicking worker and should say so.
    pub faults: Vec<WorkerFault>,
}

impl SearchResult {
    /// The exact width if proven.
    pub fn width(&self) -> Option<usize> {
        self.exact.then_some(self.upper_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticker_of(budget: &Budget) -> Ticker<'_> {
        budget.worker()
    }

    #[test]
    fn node_limit_expires_without_overcount() {
        let budget = Budget::new(&SearchLimits::with_nodes(3));
        let mut t = ticker_of(&budget);
        assert!(t.tick());
        assert!(t.tick());
        assert!(t.tick());
        assert!(!t.tick());
        assert!(t.expired());
        // the rejected expansion is NOT counted: the report never exceeds
        // the budget
        assert_eq!(t.nodes(), 3);
        assert!(budget.expired());
    }

    #[test]
    fn unlimited_never_expires_quickly() {
        let budget = Budget::new(&SearchLimits::unlimited());
        let mut t = ticker_of(&budget);
        for _ in 0..10_000 {
            assert!(t.tick());
        }
    }

    #[test]
    fn zero_time_budget_expires() {
        let budget = Budget::new(&SearchLimits::with_time(Duration::ZERO));
        let mut t = ticker_of(&budget);
        // expiry is detected on a check boundary
        let mut ok = true;
        for _ in 0..1000 {
            ok = t.tick();
            if !ok {
                break;
            }
        }
        assert!(!ok);
        assert_eq!(t.nodes() & 0xF, 0, "expiry happens on a check boundary");
    }

    #[test]
    fn workers_share_one_node_pool() {
        let budget = Budget::new(&SearchLimits::with_nodes(100));
        let mut a = budget.worker();
        let mut b = budget.worker();
        let mut total = 0u64;
        loop {
            let mut progressed = false;
            if a.tick() {
                total += 1;
                progressed = true;
            }
            if b.tick() {
                total += 1;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        assert_eq!(total, 100, "the pool is global, not per worker");
        assert_eq!(a.nodes() + b.nodes(), 100);
    }

    #[test]
    fn dropped_worker_returns_unused_credits() {
        let budget = Budget::new(&SearchLimits::with_nodes(CREDIT_BATCH * 2));
        {
            let mut a = budget.worker();
            assert!(a.tick()); // reserves a batch, spends 1
        } // drop returns BATCH-1 credits
        let mut b = budget.worker();
        let mut n = 0;
        while b.tick() {
            n += 1;
        }
        assert_eq!(n, CREDIT_BATCH * 2 - 1);
    }

    #[test]
    fn one_expired_worker_stops_the_others() {
        let budget = Budget::new(&SearchLimits::with_time(Duration::ZERO));
        let mut a = budget.worker();
        while a.tick() {}
        // a fresh worker sees the sticky flag on its first check boundary
        let mut b = budget.worker();
        assert!(!b.tick());
        assert_eq!(b.nodes(), 0);
    }

    #[test]
    fn cancel_stops_every_worker_and_is_distinguishable_from_expiry() {
        let token = CancelToken::arm();
        let budget = Budget::new(&SearchLimits::unlimited().with_cancel(token.clone()));
        let mut a = budget.worker();
        for _ in 0..100 {
            assert!(a.tick());
        }
        assert!(!budget.cancelled());
        token.cancel();
        // observed on the next check boundary, then sticky for everyone
        let mut stopped = false;
        for _ in 0..16 {
            if !a.tick() {
                stopped = true;
                break;
            }
        }
        assert!(stopped, "cancel observed within one check period");
        let mut b = budget.worker();
        assert!(!b.tick(), "fresh workers see the sticky flag immediately");
        assert!(budget.expired(), "a cancelled run reports as expired");
        assert!(budget.cancelled(), "...and remembers the cause");
    }

    #[test]
    fn inert_token_never_fires_and_deadline_is_not_a_cancel() {
        let inert = CancelToken::default();
        inert.cancel(); // no-op
        assert!(!inert.is_cancelled());
        let budget = Budget::new(&SearchLimits::with_time(Duration::ZERO));
        let mut t = budget.worker();
        while t.tick() {}
        assert!(budget.expired());
        assert!(!budget.cancelled(), "wall-clock expiry is not cancellation");
    }

    #[test]
    fn armed_token_clones_share_one_flag() {
        let token = CancelToken::arm();
        let clone = token.clone();
        clone.cancel();
        assert!(token.is_cancelled(), "clones observe each other's cancel");
    }

    #[test]
    fn stats_merge_sums_counters_and_orders_samples() {
        let mk = |t_ms: u64, ub: usize, f: u64| SearchStats {
            incumbents: vec![IncumbentSample {
                elapsed: Duration::from_millis(t_ms),
                upper_bound: ub,
                lower_bound: 1,
            }],
            prunes: PruneCounters {
                f_prunes: f,
                ..PruneCounters::default()
            },
            open_peak: f,
            seen_peak: 10 - f,
            open_peak_bytes: f * 100,
            seen_peak_bytes: (10 - f) * 100,
            ..SearchStats::default()
        };
        let m = SearchStats::merge([mk(5, 8, 2), mk(1, 9, 3)]);
        assert_eq!(m.prunes.f_prunes, 5);
        assert_eq!(m.open_peak, 3);
        assert_eq!(m.seen_peak, 8);
        assert_eq!(m.open_peak_bytes, 300, "byte peaks merged as max");
        assert_eq!(m.seen_peak_bytes, 800);
        assert_eq!(
            m.incumbents.iter().map(|s| s.upper_bound).collect::<Vec<_>>(),
            vec![9, 8],
            "samples interleaved by elapsed time"
        );
    }

    #[test]
    fn telemetry_disabled_records_nothing() {
        let mut t = Telemetry::new(false);
        t.sample(Duration::ZERO, 5, 1);
        t.prune(|p| p.f_prunes += 1);
        t.peaks(10, 10, 100, 100);
        assert!(!t.on());
        assert!(t.finish().is_none());
    }

    #[test]
    fn width_only_when_exact() {
        let r = SearchResult {
            upper_bound: 5,
            lower_bound: 4,
            exact: false,
            ordering: None,
            nodes_expanded: 0,
            elapsed: Duration::ZERO,
            cover_cache: None,
            stats: None,
            faults: Vec::new(),
        };
        assert_eq!(r.width(), None);
        let r2 = SearchResult { exact: true, lower_bound: 5, ..r };
        assert_eq!(r2.width(), Some(5));
    }
}
