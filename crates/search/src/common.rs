//! Shared plumbing for the exact anytime algorithms: resource limits and the
//! uniform result type.

use std::time::{Duration, Instant};

/// Resource limits for a search run. Both algorithms in the thesis are
/// *anytime*: when a limit is hit they report the best upper bound found and
/// a proven lower bound (§5.3).
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchLimits {
    /// Wall-clock budget (the thesis used one hour per run).
    pub time_limit: Option<Duration>,
    /// Cap on search-state expansions (deterministic alternative to time).
    pub max_nodes: Option<u64>,
}

impl SearchLimits {
    /// No limits: run to completion (exact result guaranteed).
    pub fn unlimited() -> Self {
        SearchLimits::default()
    }

    /// Wall-clock limit only.
    pub fn with_time(d: Duration) -> Self {
        SearchLimits {
            time_limit: Some(d),
            max_nodes: None,
        }
    }

    /// Node-expansion limit only.
    pub fn with_nodes(n: u64) -> Self {
        SearchLimits {
            time_limit: None,
            max_nodes: Some(n),
        }
    }
}

/// Internal ticking clock; checks the wall clock only every few hundred
/// events to keep `Instant::now` off the hot path.
pub(crate) struct Ticker {
    start: Instant,
    limits: SearchLimits,
    nodes: u64,
    check_mask: u64,
    expired: bool,
}

impl Ticker {
    pub fn new(limits: SearchLimits) -> Self {
        Ticker {
            start: Instant::now(),
            limits,
            nodes: 0,
            check_mask: 0xF,
            expired: false,
        }
    }

    /// Registers one expansion; returns `true` while within budget.
    pub fn tick(&mut self) -> bool {
        self.nodes += 1;
        if let Some(max) = self.limits.max_nodes {
            if self.nodes > max {
                self.expired = true;
            }
        }
        if !self.expired && self.nodes & self.check_mask == 0 {
            if let Some(t) = self.limits.time_limit {
                if self.start.elapsed() >= t {
                    self.expired = true;
                }
            }
        }
        !self.expired
    }

    #[allow(dead_code)]
    pub fn expired(&self) -> bool {
        self.expired
    }

    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

/// The outcome of a width search (treewidth or generalized hypertree width).
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// Best width achieved by a complete elimination ordering.
    pub upper_bound: usize,
    /// Proven lower bound on the optimal width.
    pub lower_bound: usize,
    /// `true` iff `upper_bound == lower_bound` was *proven* (search finished
    /// or the bounds met) — then `upper_bound` is the exact width.
    pub exact: bool,
    /// An elimination ordering realising `upper_bound`, when one was
    /// materialised.
    pub ordering: Option<Vec<usize>>,
    /// Search states expanded.
    pub nodes_expanded: u64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Set-cover transposition cache counters, for searches that ran one
    /// (`None` for cache-less searches, e.g. the treewidth algorithms).
    pub cover_cache: Option<ghd_core::setcover::CacheStats>,
}

impl SearchResult {
    /// The exact width if proven.
    pub fn width(&self) -> Option<usize> {
        self.exact.then_some(self.upper_bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_limit_expires() {
        let mut t = Ticker::new(SearchLimits::with_nodes(3));
        assert!(t.tick());
        assert!(t.tick());
        assert!(t.tick());
        assert!(!t.tick());
        assert!(t.expired());
        assert_eq!(t.nodes(), 4);
    }

    #[test]
    fn unlimited_never_expires_quickly() {
        let mut t = Ticker::new(SearchLimits::unlimited());
        for _ in 0..10_000 {
            assert!(t.tick());
        }
    }

    #[test]
    fn zero_time_budget_expires() {
        let mut t = Ticker::new(SearchLimits::with_time(Duration::ZERO));
        // expiry is detected on a check boundary
        let mut ok = true;
        for _ in 0..1000 {
            ok = t.tick();
            if !ok {
                break;
            }
        }
        assert!(!ok);
    }

    #[test]
    fn width_only_when_exact() {
        let r = SearchResult {
            upper_bound: 5,
            lower_bound: 4,
            exact: false,
            ordering: None,
            nodes_expanded: 0,
            elapsed: Duration::ZERO,
            cover_cache: None,
        };
        assert_eq!(r.width(), None);
        let r2 = SearchResult { exact: true, lower_bound: 5, ..r };
        assert_eq!(r2.width(), Some(5));
    }
}
