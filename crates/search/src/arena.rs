//! Bump arena of fixed-width `u64` rows — the backing store for interned
//! search states (§5.2.1's append-only state storage, flattened).
//!
//! Every state key in one search has the same width (`⌈n/64⌉` blocks of the
//! alive bitset), so rows live contiguously in a single `Vec<u64>` and a
//! dense `u32` id addresses a row by offset arithmetic. Rows are immutable
//! once pushed; the arena only ever grows, which is what makes borrowed
//! `&[u64]` row views safe to hand out between pushes.

/// A bump arena of immutable rows, each exactly `width` words long.
pub struct WordArena {
    words: Vec<u64>,
    width: usize,
    rows: u32,
}

impl WordArena {
    /// An empty arena for rows of `width` words.
    pub fn new(width: usize) -> Self {
        WordArena {
            words: Vec::new(),
            width,
            rows: 0,
        }
    }

    /// Words per row.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.rows as usize
    }

    /// `true` iff no row was pushed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Appends a row, returning its dense id (ids count up from 0).
    #[inline]
    pub fn push(&mut self, row: &[u64]) -> u32 {
        debug_assert_eq!(row.len(), self.width);
        debug_assert!(self.rows < u32::MAX, "arena id space exhausted");
        let id = self.rows;
        self.words.extend_from_slice(row);
        self.rows += 1;
        id
    }

    /// Borrows row `id`.
    #[inline]
    pub fn row(&self, id: u32) -> &[u64] {
        let start = id as usize * self.width;
        &self.words[start..start + self.width]
    }

    /// Bytes currently reserved by the backing allocation.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_roundtrip_and_ids_are_dense() {
        let mut a = WordArena::new(2);
        assert!(a.is_empty());
        assert_eq!(a.push(&[1, 2]), 0);
        assert_eq!(a.push(&[3, 4]), 1);
        assert_eq!(a.push(&[1, 2]), 2, "the arena does not deduplicate");
        assert_eq!(a.len(), 3);
        assert_eq!(a.row(0), &[1, 2]);
        assert_eq!(a.row(1), &[3, 4]);
        assert_eq!(a.row(2), &[1, 2]);
        assert!(a.bytes() >= 3 * 2 * 8);
    }

    #[test]
    fn zero_width_rows_are_legal() {
        let mut a = WordArena::new(0);
        assert_eq!(a.push(&[]), 0);
        assert_eq!(a.push(&[]), 1);
        assert_eq!(a.row(1), &[] as &[u64]);
        assert_eq!(a.len(), 2);
    }
}
