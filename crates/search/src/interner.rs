//! Hash-consed interning of search-state keys.
//!
//! The A\*/BB closed sets and the set-cover transposition cache all key on
//! vertex-set bit patterns (`&[u64]` blocks of a [`BitSet`]). Before this
//! module each table boxed its own copy of every key (`Box<[u64]>` per
//! entry); the interner stores each distinct key exactly once in a
//! [`WordArena`] and hands out dense `u32` ids, so
//!
//! * lookups hash the **borrowed** words (FxHash, no allocation, no copy),
//! * each key is materialised at most once, when first seen,
//! * side tables become plain `Vec`s indexed by id instead of hash maps.
//!
//! [`BitSet`]: ghd_hypergraph::BitSet

use crate::arena::WordArena;
use ghd_prng::hash::fx_hash_words;

const EMPTY: u32 = u32::MAX;

/// An open-addressing hash-consing table over fixed-width word rows.
///
/// Ids are dense and allocated in first-seen order, so a `Vec` indexed by id
/// is the natural associated storage (see the closed sets in `astar_tw` /
/// `astar_ghw` and the dense path of `ghd_core::setcover::CoverCache`).
pub struct StateInterner {
    arena: WordArena,
    /// Power-of-two open-addressing table of row ids (`EMPTY` = vacant),
    /// linear probing, grown at ¾ load.
    table: Vec<u32>,
    mask: usize,
    /// Hard cap on the id space: [`StateInterner::try_intern`] refuses to
    /// create fresh keys once `len() == limit` (existing keys still
    /// resolve). Sharded interners set this to their worker-local id range
    /// so a packed id can never spill into another worker's bits.
    limit: u32,
}

impl StateInterner {
    /// An interner for keys of `width` words, with an effectively unbounded
    /// id space (`u32::MAX - 1`; the arena would exhaust memory far first).
    pub fn new(width: usize) -> Self {
        // EMPTY (u32::MAX) is the vacant-slot sentinel, so the last usable
        // id is u32::MAX - 1.
        Self::with_limit(width, u32::MAX - 1)
    }

    /// An interner for keys of `width` words whose id space is capped at
    /// `limit` distinct keys.
    pub fn with_limit(width: usize, limit: u32) -> Self {
        let cap = 64;
        StateInterner {
            arena: WordArena::new(width),
            table: vec![EMPTY; cap],
            mask: cap - 1,
            limit,
        }
    }

    /// An interner sized for the block keys of vertex sets over `0..n`.
    pub fn for_vertices(n: usize) -> Self {
        Self::new(n.div_ceil(64))
    }

    /// `true` once the id space is exhausted: every further
    /// [`StateInterner::try_intern`] of an unseen key returns `None`.
    #[inline]
    pub fn at_capacity(&self) -> bool {
        self.arena.len() as u64 >= self.limit as u64
    }

    /// Number of distinct keys interned so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.arena.len()
    }

    /// `true` iff nothing was interned yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.arena.is_empty()
    }

    /// Borrows the canonical storage of key `id`.
    #[inline]
    pub fn get(&self, id: u32) -> &[u64] {
        self.arena.row(id)
    }

    /// Bytes reserved by the arena and the probe table.
    pub fn bytes(&self) -> usize {
        self.arena.bytes() + self.table.capacity() * std::mem::size_of::<u32>()
    }

    /// Interns `key`, returning `(id, fresh)`: the dense id of its canonical
    /// copy, and whether this call created it. Lookup of an already-interned
    /// key allocates nothing.
    ///
    /// Panics if the id space is exhausted — callers that can degrade
    /// gracefully (the sharded parallel searches) use
    /// [`StateInterner::try_intern`] instead. With the default limit this
    /// is unreachable in practice.
    pub fn intern(&mut self, key: &[u64]) -> (u32, bool) {
        self.try_intern(key)
            .expect("state interner id space exhausted")
    }

    /// Interns `key` like [`StateInterner::intern`], but returns `None`
    /// instead of creating a fresh key once the id-space limit is reached.
    /// Already-interned keys still resolve (`Some((id, false))`) at
    /// capacity, so hits keep working after overflow.
    pub fn try_intern(&mut self, key: &[u64]) -> Option<(u32, bool)> {
        if self.arena.len() * 4 >= self.table.len() * 3 {
            self.grow();
        }
        let mut i = (fx_hash_words(key) as usize) & self.mask;
        loop {
            let slot = self.table[i];
            if slot == EMPTY {
                if self.at_capacity() {
                    return None;
                }
                let id = self.arena.push(key);
                self.table[i] = id;
                return Some((id, true));
            }
            if self.arena.row(slot) == key {
                return Some((slot, false));
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let cap = self.table.len() * 2;
        let mask = cap - 1;
        let mut table = vec![EMPTY; cap];
        for id in 0..self.arena.len() as u32 {
            let mut i = (fx_hash_words(self.arena.row(id)) as usize) & mask;
            while table[i] != EMPTY {
                i = (i + 1) & mask;
            }
            table[i] = id;
        }
        self.table = table;
        self.mask = mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghd_prng::rngs::StdRng;
    use ghd_prng::RngExt;
    use std::collections::HashMap;

    #[test]
    fn interning_matches_a_hashmap_model() {
        // differential test across enough keys to force several table grows
        let mut rng = StdRng::seed_from_u64(42);
        let mut interner = StateInterner::new(3);
        let mut model: HashMap<Vec<u64>, u32> = HashMap::new();
        for _ in 0..5000 {
            // small word values so duplicates are frequent
            let key = [
                rng.random_range(0..8),
                rng.random_range(0..4),
                rng.random_range(0..4),
            ];
            let (id, fresh) = interner.intern(&key);
            match model.get(key.as_slice()) {
                Some(&expect) => {
                    assert_eq!((id, fresh), (expect, false));
                }
                None => {
                    assert!(fresh);
                    assert_eq!(id as usize, model.len(), "ids are dense, first-seen order");
                    model.insert(key.to_vec(), id);
                }
            }
            assert_eq!(interner.get(id), key);
        }
        assert_eq!(interner.len(), model.len());
        assert!(interner.len() > 48, "grow path exercised");
    }

    #[test]
    fn distinct_keys_get_distinct_ids() {
        let mut interner = StateInterner::for_vertices(130);
        assert_eq!(interner.arena_width(), 3);
        let (a, fa) = interner.intern(&[1, 0, 0]);
        let (b, fb) = interner.intern(&[0, 1, 0]);
        let (a2, fa2) = interner.intern(&[1, 0, 0]);
        assert!(fa && fb && !fa2);
        assert_ne!(a, b);
        assert_eq!(a, a2);
        assert!(interner.bytes() > 0);
    }

    impl StateInterner {
        fn arena_width(&self) -> usize {
            self.arena.width()
        }
    }

    /// At the id-space limit, fresh keys are refused (`None`) while
    /// already-interned keys keep resolving — the behaviour the sharded
    /// overflow degrade path relies on.
    #[test]
    fn capacity_limit_refuses_fresh_keys_but_keeps_hits() {
        let mut interner = StateInterner::with_limit(1, 3);
        assert!(!interner.at_capacity());
        let ids: Vec<u32> = (0..3u64)
            .map(|w| {
                let (id, fresh) = interner.try_intern(&[w]).expect("under the limit");
                assert!(fresh);
                id
            })
            .collect();
        assert!(interner.at_capacity());
        assert_eq!(interner.try_intern(&[99]), None, "fresh key refused at capacity");
        assert_eq!(interner.try_intern(&[1]), Some((ids[1], false)), "hits still resolve");
        assert_eq!(interner.len(), 3, "no id was created past the limit");
        for (w, id) in ids.iter().enumerate() {
            assert_eq!(interner.get(*id), &[w as u64]);
        }
    }
}
