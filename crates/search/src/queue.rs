//! Monotone bucket queue for the A\* open lists.
//!
//! The f-values of both A\* variants are widths bounded by `n`, and thanks
//! to pathmax (`t_f = max(t_g, h, s_f)`) every push carries an f no smaller
//! than the last popped f. That makes a bucket queue with an advancing floor
//! exact: `pop` scans from the floor upward and never has to look back.
//!
//! The pop order replicates the previous `BinaryHeap<HeapEntry>` ordering
//! bit for bit: **f ascending, depth descending, id ascending**. Buckets are
//! indexed by f; inside a bucket, lanes are indexed by depth and drained
//! from the highest occupied lane down; inside a lane, ids leave in FIFO
//! order, which *is* ascending id order because node ids are allocated (and
//! pushed, exactly once each) in globally increasing order.

/// One FIFO lane of node ids for a fixed `(f, depth)` cell.
#[derive(Default)]
struct Lane {
    ids: Vec<u32>,
    head: usize,
}

/// All lanes of one f-value.
#[derive(Default)]
struct Bucket {
    lanes: Vec<Lane>,
    /// Highest depth that may hold entries (re-raised on every push; lanes
    /// above it are empty). Only meaningful while `len > 0`.
    ceil: usize,
    len: usize,
}

/// A monotone priority queue of `(f, depth, id)` entries with O(1) push and
/// amortised O(1) pop.
#[derive(Default)]
pub struct BucketQueue {
    buckets: Vec<Bucket>,
    /// Lowest f that may hold entries; advanced lazily by `pop`.
    floor: usize,
    len: usize,
    /// Sticky: a push landed below the advancing floor and was clamped to
    /// it. Pathmax makes this unreachable from the A\* searches; if it ever
    /// fires, pop order is no longer proven heap-equivalent and callers
    /// must withdraw exactness claims (see [`BucketQueue::degraded`]).
    degraded: bool,
}

impl BucketQueue {
    pub fn new() -> Self {
        BucketQueue::default()
    }

    /// Entries currently queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` iff a below-floor push was ever detected (and clamped). Sticky
    /// for the lifetime of the queue.
    #[inline]
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Enqueues `id` at priority `(f, depth)`.
    ///
    /// Monotonicity contract: `f` must be at least the f of the last popped
    /// entry (the advancing floor). Pathmax guarantees this for both A\*
    /// searches. A violating push is detected in **all** build modes (one
    /// branch that the well-behaved path takes anyway) and routed soundly:
    /// the entry is clamped to the floor bucket — it still pops, merely
    /// earlier than its claimed priority — and the queue turns sticky
    /// [`BucketQueue::degraded`], which callers surface through
    /// `SearchStats` and use to withdraw exactness claims. Lowering the
    /// floor instead would silently revisit buckets whose lane storage
    /// `pop` already released.
    pub fn push(&mut self, mut f: usize, depth: usize, id: u32) {
        if f < self.floor {
            f = self.floor;
            self.degraded = true;
        }
        if self.buckets.len() <= f {
            self.buckets.resize_with(f + 1, Bucket::default);
        }
        let bucket = &mut self.buckets[f];
        if bucket.lanes.len() <= depth {
            bucket.lanes.resize_with(depth + 1, Lane::default);
        }
        bucket.lanes[depth].ids.push(id);
        bucket.ceil = if bucket.len == 0 { depth } else { bucket.ceil.max(depth) };
        bucket.len += 1;
        self.len += 1;
    }

    /// Dequeues the id with minimum f, ties broken by maximum depth, then
    /// minimum id.
    pub fn pop(&mut self) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        while self.buckets[self.floor].len == 0 {
            // monotonicity means the floor never looks back: release the
            // drained bucket's lane storage (ids and lanes alike) instead of
            // carrying empty capacity to the end of the run — long searches
            // sweep through many f-values and the open-list gauge
            // (`open_peak_bytes`) should reflect live frontier, not history
            let drained = &mut self.buckets[self.floor];
            drained.lanes = Vec::new();
            drained.ceil = 0;
            self.floor += 1;
        }
        let bucket = &mut self.buckets[self.floor];
        loop {
            let lane = &mut bucket.lanes[bucket.ceil];
            if lane.head < lane.ids.len() {
                let id = lane.ids[lane.head];
                lane.head += 1;
                if lane.head == lane.ids.len() {
                    lane.ids.clear();
                    lane.head = 0;
                }
                bucket.len -= 1;
                self.len -= 1;
                return Some(id);
            }
            debug_assert!(bucket.ceil > 0, "non-empty bucket with all lanes empty");
            bucket.ceil -= 1;
        }
    }

    /// Bytes reserved by every bucket, lane and id slot. Walks the structure
    /// (cheap: both dimensions are bounded by n), so call it only under an
    /// enabled-telemetry gate.
    pub fn bytes(&self) -> usize {
        let mut bytes = self.buckets.capacity() * std::mem::size_of::<Bucket>();
        for bucket in &self.buckets {
            bytes += bucket.lanes.capacity() * std::mem::size_of::<Lane>();
            for lane in &bucket.lanes {
                bytes += lane.ids.capacity() * std::mem::size_of::<u32>();
            }
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghd_prng::rngs::StdRng;
    use ghd_prng::RngExt;
    use std::collections::BinaryHeap;

    /// The ordering previously used by the searches' `BinaryHeap`.
    #[derive(PartialEq, Eq)]
    struct ModelEntry {
        f: u32,
        depth: u32,
        id: u32,
    }

    impl Ord for ModelEntry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other
                .f
                .cmp(&self.f)
                .then(self.depth.cmp(&other.depth))
                .then(other.id.cmp(&self.id))
        }
    }

    impl PartialOrd for ModelEntry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    /// Differential test against the heap model under the searches' real
    /// usage pattern: ids pushed in increasing order, every pushed f at
    /// least the last popped f (pathmax monotonicity).
    #[test]
    fn matches_binary_heap_order_on_monotone_workloads() {
        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut queue = BucketQueue::new();
            let mut model: BinaryHeap<ModelEntry> = BinaryHeap::new();
            let mut next_id = 0u32;
            let push = |q: &mut BucketQueue,
                            m: &mut BinaryHeap<ModelEntry>,
                            rng: &mut StdRng,
                            next_id: &mut u32,
                            f_min: u32| {
                let f = f_min + rng.random_range(0..4) as u32;
                let depth = rng.random_range(0..6) as u32;
                q.push(f as usize, depth as usize, *next_id);
                m.push(ModelEntry { f, depth, id: *next_id });
                *next_id += 1;
            };
            push(&mut queue, &mut model, &mut rng, &mut next_id, 0);
            for _ in 0..500 {
                let expected = model.pop().unwrap();
                let got = queue.pop().unwrap();
                assert_eq!(got, expected.id, "seed {seed}");
                assert_eq!(queue.len(), model.len());
                // children of the popped state: pushes with f >= popped f
                for _ in 0..rng.random_range(0..4) {
                    push(&mut queue, &mut model, &mut rng, &mut next_id, expected.f);
                }
                if model.is_empty() {
                    break;
                }
            }
            while let Some(expected) = model.pop() {
                assert_eq!(queue.pop(), Some(expected.id), "seed {seed} drain");
            }
            assert!(queue.is_empty());
            assert_eq!(queue.pop(), None);
        }
    }

    #[test]
    fn ties_leave_depth_descending_then_id_ascending() {
        let mut q = BucketQueue::new();
        q.push(3, 0, 0);
        q.push(3, 2, 1);
        q.push(3, 2, 2);
        q.push(2, 1, 3);
        q.push(3, 1, 4);
        assert_eq!(q.pop(), Some(3), "smallest f first");
        assert_eq!(q.pop(), Some(1), "deepest lane first, FIFO inside");
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
        assert!(q.bytes() > 0);
    }

    /// Advancing the floor must release the drained buckets' lane storage,
    /// not just empty it: a long search sweeps through many f-values and
    /// would otherwise retain every historical bucket's capacity.
    #[test]
    fn advancing_the_floor_releases_drained_bucket_capacity() {
        let mut q = BucketQueue::new();
        for id in 0..512u32 {
            q.push(1, (id % 8) as usize, id);
        }
        q.push(5, 0, 512);
        let loaded = q.bytes();
        for _ in 0..512 {
            q.pop();
        }
        // popping the f=5 entry advances the floor past the drained f=1
        // bucket and frees its lanes
        assert_eq!(q.pop(), Some(512));
        assert!(
            q.bytes() < loaded / 2,
            "drained capacity retained: {} of {loaded} bytes",
            q.bytes()
        );
        // the queue stays fully usable for later (higher-f) pushes
        q.push(6, 3, 513);
        assert_eq!(q.pop(), Some(513));
        assert!(q.is_empty());
    }

    /// A push below the advancing floor violates the monotonicity contract.
    /// It must be *detected* (not silently mis-filed) in every build mode:
    /// the entry is clamped to the floor bucket — so it still pops — and the
    /// queue turns sticky-degraded.
    #[test]
    fn below_floor_push_is_clamped_and_flagged() {
        let mut q = BucketQueue::new();
        q.push(4, 0, 0);
        q.push(7, 1, 1);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1)); // floor advanced to 7
        assert!(!q.degraded(), "well-behaved workload stays clean");

        q.push(2, 0, 2); // below the floor: invariant break
        assert!(q.degraded(), "violation detected, not silent");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(2), "clamped entry still pops");
        assert!(q.is_empty());

        // the flag is sticky and later well-formed pushes still work
        q.push(9, 2, 3);
        assert_eq!(q.pop(), Some(3));
        assert!(q.degraded());
    }
}
