//! Work-stealing scheduler for the branch-and-bound searches.
//!
//! The root-splitting parallelism of earlier revisions assigned one worker
//! per root child and ran strictly sequentially below, so one heavy subtree
//! serialised the whole run. Here *any* worker can split off unexplored
//! siblings above a depth cutoff as stealable subproblems:
//!
//! * each worker owns a [`ghd_par::steal::WorkDeque`] (Chase–Lev ring of
//!   `u32` task ids): the owner pushes/pops LIFO at the bottom, idle
//!   workers steal FIFO from the top, taking the oldest — shallowest, hence
//!   largest — published subtree;
//! * task payloads live in a global append-only slab guarded by a [`Mutex`]
//!   (touched once per published task, which is orders of magnitude colder
//!   than node expansion); ids are slab indices, so task numbering follows
//!   creation order and the seed task is always id 0 — the contract the
//!   fault-injection tests pin with `FaultPlan::kill_task(n)`;
//! * a task is `(prefix, g, f)`: the elimination prefix from the root, the
//!   g-cost after it, and the pathmax f-bound. The executing worker replays
//!   the prefix on its own [`EliminationGraph`] and searches the subtree,
//!   republishing children that are still above the cutoff;
//! * termination is an atomic pending-task count: workers spin (yielding)
//!   until every published task has been completed or permanently faulted.
//!
//! # Fault and expiry semantics
//!
//! Task execution is wrapped in [`ghd_par::run_contained`]; a faulted task
//! is re-enqueued **once**, on the retry list of the worker that published
//! it (the thief's victim), and a second fault completes the task with its
//! `f` folded into the expiry floor — the run degrades to an anytime
//! result instead of aborting. After budget expiry, draining a task costs
//! one failed `Ticker::tick` which likewise folds its `f` into the expiry
//! floor, so certified anytime bounds need no special casing.
//!
//! [`EliminationGraph`]: ghd_hypergraph::EliminationGraph

use ghd_par::steal::{Steal, WorkDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Default depth cutoff below which subtrees are no longer split off. Depth
/// 3 keeps the task pool far larger than any realistic worker count while
/// the per-task replay cost (≤ 3 eliminations) stays negligible against the
/// subtree searched beneath it.
pub const DEFAULT_STEAL_DEPTH: usize = 3;

/// Ring capacity of each worker's deque; overflow falls back to searching
/// the child inline, which bounds the open-task memory.
const DEQUE_CAPACITY: usize = 1024;

/// Tuning knobs of the work-stealing runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StealConfig {
    /// Publish children as stealable tasks while the elimination depth is
    /// at most this value; deeper subtrees are searched inline.
    pub depth: usize,
}

impl Default for StealConfig {
    fn default() -> Self {
        StealConfig {
            depth: DEFAULT_STEAL_DEPTH,
        }
    }
}

/// One stealable subproblem (see the module docs).
struct TaskBody {
    /// Vertices eliminated between the root and this subtree, in order.
    prefix: Box<[u32]>,
    /// g-cost after eliminating the prefix.
    g: u32,
    /// Pathmax f-bound of the subtree.
    f: u32,
    /// Worker that published the task (retries go back to it).
    owner: u32,
    /// A fault was already retried once; the next one is permanent.
    retried: bool,
}

/// A task handed to a worker by [`Scheduler::next`].
pub(crate) struct TaskRun {
    pub id: u32,
    pub prefix: Box<[u32]>,
    pub g: usize,
    pub f: usize,
    /// Taken from another worker's deque.
    pub stolen: bool,
    /// Second attempt after a contained fault.
    pub retry: bool,
}

pub(crate) struct Scheduler {
    deques: Vec<WorkDeque>,
    slab: Mutex<Vec<TaskBody>>,
    /// Per-worker retry lists for once-faulted tasks (owner drains its own).
    retries: Vec<Mutex<Vec<u32>>>,
    /// Published tasks not yet completed or permanently faulted.
    pending: AtomicUsize,
}

/// A worker panics only inside `run_contained` (never while holding a
/// scheduler lock), so the guarded state cannot be torn: recover the guard
/// instead of propagating poison.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Scheduler {
    pub fn new(workers: usize) -> Self {
        Scheduler {
            deques: (0..workers)
                .map(|_| WorkDeque::with_capacity(DEQUE_CAPACITY))
                .collect(),
            slab: Mutex::new(Vec::new()),
            retries: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
            pending: AtomicUsize::new(0),
        }
    }

    /// Publishes a subproblem onto `worker`'s own deque. Returns `false`
    /// without publishing when the deque is full — the caller searches the
    /// child inline instead. Only `worker` itself may call this (it is the
    /// deque owner), which also makes the room check stable: thieves only
    /// ever *remove* entries.
    pub fn publish(&self, worker: usize, prefix: &[usize], g: usize, f: usize) -> bool {
        let deque = &self.deques[worker];
        if deque.len() >= deque.capacity() {
            return false;
        }
        let id = {
            let mut slab = lock(&self.slab);
            let id = u32::try_from(slab.len()).expect("task slab outgrew u32 ids");
            slab.push(TaskBody {
                prefix: prefix.iter().map(|&v| v as u32).collect(),
                g: g as u32,
                f: f.min(u32::MAX as usize) as u32,
                owner: worker as u32,
                retried: false,
            });
            id
        };
        self.pending.fetch_add(1, Ordering::SeqCst);
        let pushed = deque.push(id);
        debug_assert!(pushed, "room was checked under deque ownership");
        true
    }

    fn task(&self, id: u32, stolen: bool, retry: bool) -> TaskRun {
        let slab = lock(&self.slab);
        let t = &slab[id as usize];
        TaskRun {
            id,
            prefix: t.prefix.clone(),
            g: t.g as usize,
            f: t.f as usize,
            stolen,
            retry,
        }
    }

    /// Blocks (yielding) until a task is available for `worker` or every
    /// published task has been completed; `None` means the run is over.
    /// Priority: own retries, then own deque (LIFO), then stealing from the
    /// other workers round-robin.
    pub fn next(&self, worker: usize) -> Option<TaskRun> {
        loop {
            if let Some(id) = lock(&self.retries[worker]).pop() {
                return Some(self.task(id, false, true));
            }
            if let Some(id) = self.deques[worker].pop() {
                return Some(self.task(id, false, false));
            }
            let n = self.deques.len();
            let mut contended = false;
            for k in 1..n {
                match self.deques[(worker + k) % n].steal() {
                    Steal::Taken(id) => return Some(self.task(id, true, false)),
                    Steal::Retry => contended = true,
                    Steal::Empty => {}
                }
            }
            if !contended && self.pending.load(Ordering::SeqCst) == 0 {
                return None;
            }
            std::thread::yield_now();
        }
    }

    /// Marks a task finished (successfully searched, pruned, or drained
    /// after expiry).
    pub fn complete(&self, _id: u32) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
    }

    /// Records a contained fault on `id`. The first fault re-enqueues the
    /// task on its publisher's retry list and returns `true`; a second
    /// fault completes the task permanently and returns `false` (the caller
    /// folds its `f` into the expiry floor).
    pub fn fault(&self, id: u32) -> bool {
        let owner = {
            let mut slab = lock(&self.slab);
            let t = &mut slab[id as usize];
            if t.retried {
                None
            } else {
                t.retried = true;
                Some(t.owner as usize)
            }
        };
        match owner {
            Some(owner) => {
                lock(&self.retries[owner]).push(id);
                true
            }
            None => {
                self.pending.fetch_sub(1, Ordering::SeqCst);
                false
            }
        }
    }

    /// Total tasks ever published (the slab is append-only).
    pub fn published(&self) -> usize {
        lock(&self.slab).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_task_gets_id_zero_and_creation_order_ids() {
        let s = Scheduler::new(2);
        assert!(s.publish(0, &[], 0, 3));
        assert!(s.publish(0, &[5], 1, 3));
        assert!(s.publish(1, &[5, 7], 2, 4));
        assert_eq!(s.published(), 3);
        // worker 1 drains its own deque first
        let t = s.next(1).unwrap();
        assert_eq!((t.id, t.stolen), (2, false));
        assert_eq!(&*t.prefix, &[5, 7]);
        assert_eq!((t.g, t.f), (2, 4));
        s.complete(t.id);
        // then steals worker 0's oldest task — the seed, id 0
        let t = s.next(1).unwrap();
        assert_eq!((t.id, t.stolen), (0, true));
        assert!(t.prefix.is_empty());
        s.complete(t.id);
        let t = s.next(0).unwrap();
        assert_eq!((t.id, t.stolen), (1, false));
        s.complete(t.id);
        assert!(s.next(0).is_none(), "all tasks completed");
        assert!(s.next(1).is_none());
    }

    #[test]
    fn first_fault_requeues_to_the_owner_second_is_permanent() {
        let s = Scheduler::new(2);
        assert!(s.publish(0, &[3], 0, 2));
        // worker 1 steals it and faults: the task goes back to worker 0
        let t = s.next(1).unwrap();
        assert!(t.stolen);
        assert!(s.fault(t.id), "first fault is retried");
        let t = s.next(0).unwrap();
        assert!(t.retry, "owner re-runs its own published task");
        assert!(!t.stolen);
        // second fault is permanent and completes the task
        assert!(!s.fault(t.id));
        assert!(s.next(0).is_none());
        assert!(s.next(1).is_none());
    }

    #[test]
    fn full_deque_refuses_publication() {
        let s = Scheduler::new(1);
        let mut accepted = 0usize;
        while s.publish(0, &[], 0, 1) {
            accepted += 1;
            assert!(accepted <= DEQUE_CAPACITY, "publish must fail at capacity");
        }
        assert_eq!(accepted, DEQUE_CAPACITY);
        // draining frees room again
        let t = s.next(0).unwrap();
        s.complete(t.id);
        assert!(s.publish(0, &[], 0, 1));
    }
}
