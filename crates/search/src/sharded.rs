//! Per-worker interner shards with owner-tagged packed ids.
//!
//! The PR 5 memory subsystem ([`WordArena`] + [`StateInterner`]) is
//! single-threaded by design: interning hands out dense `u32` ids that
//! index per-search side tables. Under work stealing every worker needs its
//! own arena (interning through a shared lock would serialise the hottest
//! path of the search), so a [`ShardedInterner`] owns one
//! [`StateInterner`] per worker and tags every id with its owner:
//!
//! ```text
//! packed id = (worker << LOCAL_BITS) | local_id
//! ```
//!
//! with [`WORKER_BITS`] = 5 (≤ 32 workers) and [`LOCAL_BITS`] = 27
//! (≤ 128 Mi states per worker — far beyond what a search visits before
//! its node budget expires). Workers use the *local* id to index their own
//! dense side tables with zero contention; the *packed* id is the
//! process-wide stable name used when ids escape a worker (aggregation,
//! stats, debugging). Shards are split out of the container for the
//! duration of a parallel phase ([`ShardedInterner::split`]) and
//! reassembled afterwards ([`ShardedInterner::reassemble`]), so each
//! worker holds `&mut` access to exactly its own shard and the borrow
//! checker enforces the sharding discipline at compile time.
//!
//! [`WordArena`]: crate::arena::WordArena

use crate::interner::StateInterner;

/// Bits of a packed id reserved for the owning worker.
pub const WORKER_BITS: u32 = 5;
/// Bits of a packed id reserved for the worker-local dense id.
pub const LOCAL_BITS: u32 = 32 - WORKER_BITS;
/// Maximum number of workers the packing supports.
pub const MAX_WORKERS: usize = 1 << WORKER_BITS;

/// Packs `(worker, local_id)` into one owner-tagged `u32`.
#[inline]
pub fn pack(worker: usize, local: u32) -> u32 {
    debug_assert!(worker < MAX_WORKERS);
    debug_assert!(local < (1 << LOCAL_BITS));
    ((worker as u32) << LOCAL_BITS) | local
}

/// Splits a packed id back into `(worker, local_id)`.
#[inline]
pub fn unpack(packed: u32) -> (usize, u32) {
    ((packed >> LOCAL_BITS) as usize, packed & ((1 << LOCAL_BITS) - 1))
}

/// A set of per-worker [`StateInterner`] shards (see the module docs).
pub struct ShardedInterner {
    shards: Vec<StateInterner>,
}

impl ShardedInterner {
    /// One shard per worker, each for keys of `width` words.
    pub fn new(workers: usize, width: usize) -> Self {
        assert!(workers <= MAX_WORKERS, "id packing supports at most {MAX_WORKERS} workers");
        ShardedInterner {
            shards: (0..workers.max(1)).map(|_| StateInterner::new(width)).collect(),
        }
    }

    /// One shard per worker, sized for vertex-set keys over `0..n`.
    pub fn for_vertices(workers: usize, n: usize) -> Self {
        Self::new(workers, n.div_ceil(64))
    }

    /// Number of shards.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Hands the shards out, one per worker, for a parallel phase.
    pub fn split(self) -> Vec<StateInterner> {
        self.shards
    }

    /// Reassembles the container from the shards returned by the workers
    /// (in worker order).
    pub fn reassemble(shards: Vec<StateInterner>) -> Self {
        assert!(shards.len() <= MAX_WORKERS);
        ShardedInterner { shards }
    }

    /// Resolves a packed id to its canonical key storage, in whichever
    /// worker's shard owns it.
    pub fn get(&self, packed: u32) -> &[u64] {
        let (w, local) = unpack(packed);
        self.shards[w].get(local)
    }

    /// Total distinct keys across all shards. A key interned by two workers
    /// counts twice — shards are independent by design.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// `true` iff no shard interned anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes reserved across all shards.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_round_trips() {
        for worker in [0usize, 1, 7, 31] {
            for local in [0u32, 1, 12345, (1 << LOCAL_BITS) - 1] {
                assert_eq!(unpack(pack(worker, local)), (worker, local));
            }
        }
    }

    #[test]
    fn packed_ids_resolve_across_shards() {
        let sharded = ShardedInterner::for_vertices(4, 130);
        let mut shards = sharded.split();
        assert_eq!(shards.len(), 4);
        let mut packed = Vec::new();
        for (w, shard) in shards.iter_mut().enumerate() {
            // each worker interns a key unique to it plus one shared key
            let (own, fresh) = shard.intern(&[w as u64 + 1, 0, 0]);
            assert!(fresh);
            let (shared, _) = shard.intern(&[0xFFFF, 7, 7]);
            packed.push((pack(w, own), w as u64 + 1, pack(w, shared)));
        }
        let sharded = ShardedInterner::reassemble(shards);
        for (own_id, word0, shared_id) in packed {
            assert_eq!(sharded.get(own_id), &[word0, 0, 0]);
            assert_eq!(sharded.get(shared_id), &[0xFFFF, 7, 7]);
        }
        // the shared key was interned once per shard: shards are independent
        assert_eq!(sharded.len(), 8);
        assert!(sharded.bytes() > 0);
        assert!(!sharded.is_empty());
        assert_eq!(sharded.workers(), 4);
    }
}
