//! Per-worker interner shards with owner-tagged packed ids.
//!
//! The PR 5 memory subsystem ([`WordArena`] + [`StateInterner`]) is
//! single-threaded by design: interning hands out dense `u32` ids that
//! index per-search side tables. Under work stealing every worker needs its
//! own arena (interning through a shared lock would serialise the hottest
//! path of the search), so a [`ShardedInterner`] owns one
//! [`StateInterner`] per worker and tags every id with its owner:
//!
//! ```text
//! packed id = (worker << LOCAL_BITS) | local_id
//! ```
//!
//! with [`WORKER_BITS`] = 5 (≤ 32 workers) and [`LOCAL_BITS`] = 27
//! (≤ 128 Mi states per worker — far beyond what a search visits before
//! its node budget expires). Workers use the *local* id to index their own
//! dense side tables with zero contention; the *packed* id is the
//! process-wide stable name used when ids escape a worker (aggregation,
//! stats, debugging). Shards are split out of the container for the
//! duration of a parallel phase ([`ShardedInterner::split`]) and
//! reassembled afterwards ([`ShardedInterner::reassemble`]), so each
//! worker holds `&mut` access to exactly its own shard and the borrow
//! checker enforces the sharding discipline at compile time.
//!
//! [`WordArena`]: crate::arena::WordArena

use crate::interner::StateInterner;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Bits of a packed id reserved for the owning worker.
pub const WORKER_BITS: u32 = 5;
/// Bits of a packed id reserved for the worker-local dense id.
pub const LOCAL_BITS: u32 = 32 - WORKER_BITS;
/// Maximum number of workers the packing supports.
pub const MAX_WORKERS: usize = 1 << WORKER_BITS;

/// Test-only override of the per-shard id capacity (0 = off). Lets the
/// overflow regression test hit the `2^27`-state degrade path without
/// interning 134M states.
static CAP_OVERRIDE: AtomicU32 = AtomicU32::new(0);

fn cap_scope_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Worker-local id capacity per shard: `2^LOCAL_BITS` states, unless
/// shrunk by [`shrink_local_capacity_for_tests`]. Every shard constructed
/// by [`ShardedInterner`] is capped here, so a local id out of packing
/// range is impossible by construction — overflow surfaces as a refused
/// `try_intern`, never as a wrapped id.
#[inline]
pub fn local_capacity() -> u32 {
    match CAP_OVERRIDE.load(Ordering::Relaxed) {
        0 => 1u32 << LOCAL_BITS,
        cap => cap,
    }
}

/// RAII guard of a shrunken-capacity test scope; restores the real
/// `2^LOCAL_BITS` capacity on drop.
#[doc(hidden)]
pub struct CapacityScope {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for CapacityScope {
    fn drop(&mut self) {
        CAP_OVERRIDE.store(0, Ordering::SeqCst);
    }
}

/// Shrinks the per-shard id capacity for the lifetime of the returned
/// guard (test hook; scope-locked so concurrent tests serialise instead of
/// trampling each other's capacity).
#[doc(hidden)]
pub fn shrink_local_capacity_for_tests(cap: u32) -> CapacityScope {
    assert!(cap > 0 && cap <= (1 << LOCAL_BITS));
    let guard = cap_scope_lock().lock().unwrap_or_else(|p| p.into_inner());
    CAP_OVERRIDE.store(cap, Ordering::SeqCst);
    CapacityScope { _guard: guard }
}

/// Packs `(worker, local_id)` into one owner-tagged `u32`.
///
/// Out-of-range inputs are a checked condition in **all** build modes: a
/// wrapped id would silently alias another worker's states and corrupt
/// every id-indexed side table. Shard capacity gating
/// ([`local_capacity`]) makes the panic unreachable from the searches.
#[inline]
pub fn pack(worker: usize, local: u32) -> u32 {
    pack_checked(worker, local).expect("packed id out of range (worker or local id too large)")
}

/// Packs `(worker, local_id)` if both components fit their bit ranges;
/// `None` signals an overflow the caller must degrade on.
#[inline]
pub fn pack_checked(worker: usize, local: u32) -> Option<u32> {
    if worker < MAX_WORKERS && local < (1u32 << LOCAL_BITS) {
        Some(((worker as u32) << LOCAL_BITS) | local)
    } else {
        None
    }
}

/// Splits a packed id back into `(worker, local_id)`.
#[inline]
pub fn unpack(packed: u32) -> (usize, u32) {
    ((packed >> LOCAL_BITS) as usize, packed & ((1 << LOCAL_BITS) - 1))
}

/// A set of per-worker [`StateInterner`] shards (see the module docs).
pub struct ShardedInterner {
    shards: Vec<StateInterner>,
}

impl ShardedInterner {
    /// One shard per worker, each for keys of `width` words. Every shard's
    /// id space is capped at [`local_capacity`] so local ids always fit the
    /// packing; a full shard refuses fresh keys (`try_intern` → `None`) and
    /// its worker degrades soundly instead of wrapping.
    pub fn new(workers: usize, width: usize) -> Self {
        assert!(workers <= MAX_WORKERS, "id packing supports at most {MAX_WORKERS} workers");
        let cap = local_capacity();
        ShardedInterner {
            shards: (0..workers.max(1))
                .map(|_| StateInterner::with_limit(width, cap))
                .collect(),
        }
    }

    /// One shard per worker, sized for vertex-set keys over `0..n`.
    pub fn for_vertices(workers: usize, n: usize) -> Self {
        Self::new(workers, n.div_ceil(64))
    }

    /// Number of shards.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Hands the shards out, one per worker, for a parallel phase.
    pub fn split(self) -> Vec<StateInterner> {
        self.shards
    }

    /// Reassembles the container from the shards returned by the workers
    /// (in worker order).
    pub fn reassemble(shards: Vec<StateInterner>) -> Self {
        assert!(shards.len() <= MAX_WORKERS);
        ShardedInterner { shards }
    }

    /// Resolves a packed id to its canonical key storage, in whichever
    /// worker's shard owns it.
    pub fn get(&self, packed: u32) -> &[u64] {
        let (w, local) = unpack(packed);
        self.shards[w].get(local)
    }

    /// Total distinct keys across all shards. A key interned by two workers
    /// counts twice — shards are independent by design.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// `true` iff no shard interned anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes reserved across all shards.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_round_trips() {
        for worker in [0usize, 1, 7, 31] {
            for local in [0u32, 1, 12345, (1 << LOCAL_BITS) - 1] {
                assert_eq!(unpack(pack(worker, local)), (worker, local));
            }
        }
    }

    #[test]
    fn packed_ids_resolve_across_shards() {
        let sharded = ShardedInterner::for_vertices(4, 130);
        let mut shards = sharded.split();
        assert_eq!(shards.len(), 4);
        let mut packed = Vec::new();
        for (w, shard) in shards.iter_mut().enumerate() {
            // each worker interns a key unique to it plus one shared key
            let (own, fresh) = shard.intern(&[w as u64 + 1, 0, 0]);
            assert!(fresh);
            let (shared, _) = shard.intern(&[0xFFFF, 7, 7]);
            packed.push((pack(w, own), w as u64 + 1, pack(w, shared)));
        }
        let sharded = ShardedInterner::reassemble(shards);
        for (own_id, word0, shared_id) in packed {
            assert_eq!(sharded.get(own_id), &[word0, 0, 0]);
            assert_eq!(sharded.get(shared_id), &[0xFFFF, 7, 7]);
        }
        // the shared key was interned once per shard: shards are independent
        assert_eq!(sharded.len(), 8);
        assert!(sharded.bytes() > 0);
        assert!(!sharded.is_empty());
        assert_eq!(sharded.workers(), 4);
    }

    #[test]
    fn pack_checked_rejects_out_of_range_components() {
        assert_eq!(pack_checked(0, 0), Some(0));
        assert_eq!(
            pack_checked(MAX_WORKERS - 1, (1 << LOCAL_BITS) - 1),
            Some(u32::MAX)
        );
        assert_eq!(pack_checked(MAX_WORKERS, 0), None, "worker out of range");
        assert_eq!(pack_checked(0, 1 << LOCAL_BITS), None, "local id out of range");
        assert_eq!(pack_checked(1, u32::MAX), None);
    }

    /// With a shrunken capacity, a shard stops handing out fresh ids at the
    /// limit instead of wrapping into the next worker's id range.
    #[test]
    fn shards_refuse_fresh_keys_at_local_capacity() {
        let _scope = shrink_local_capacity_for_tests(4);
        let sharded = ShardedInterner::new(2, 1);
        let mut shards = sharded.split();
        for w in 0..4u64 {
            assert!(shards[0].try_intern(&[w]).is_some());
        }
        assert!(shards[0].at_capacity());
        assert_eq!(shards[0].try_intern(&[100]), None, "overflow is checked, not silent");
        // hits still resolve and the sibling shard is unaffected
        assert_eq!(shards[0].try_intern(&[2]).map(|(_, fresh)| fresh), Some(false));
        assert!(shards[1].try_intern(&[100]).is_some());
        // every handed-out local id still packs
        for local in 0..shards[0].len() as u32 {
            assert!(pack_checked(0, local).is_some());
        }
    }
}
