//! Algorithm A\*-ghw (Chapter 9, Fig 9.1): best-first search for the
//! generalized hypertree width, built from the BB-ghw cost and heuristic
//! functions on the A\*-tw state machinery.

use crate::astar_tw::{path_of_into, transform, Node};
use crate::bb_ghw::residual_ghw_lb;
use crate::common::{Budget, SearchLimits, SearchResult, Telemetry};
use crate::interner::StateInterner;
use crate::queue::BucketQueue;
use crate::rules::{find_simplicial, pr2_allowed_children, swappable_ghw};
use ghd_bounds::ksc::{ghw_lower_bound, KscTable};
use ghd_bounds::lower::LbScratch;
use ghd_bounds::upper::ghw_upper_bound;
use ghd_core::setcover::CoverCache;
use ghd_hypergraph::{BitSet, EliminationGraph, Hypergraph};

/// Computes the generalized hypertree width of `h` with A\*. Exact when it
/// terminates within limits; otherwise the maximum visited f-value is
/// reported as an anytime lower bound (the thesis notes A\*-ghw "returned
/// improved lower bounds" for several instances).
pub fn astar_ghw(h: &Hypergraph, limits: SearchLimits) -> SearchResult {
    let n = h.num_vertices();
    let budget = Budget::new(&limits);
    let mut ticker = budget.worker();
    let mut telemetry = Telemetry::new(limits.collect_stats);
    let root_lb = ghw_lower_bound::<ghd_prng::rngs::StdRng>(h, None);
    let (ub, ub_order) = ghw_upper_bound::<ghd_prng::rngs::StdRng>(h, None);
    telemetry.sample(budget.elapsed(), ub, root_lb.min(ub));
    if root_lb >= ub || n <= 1 {
        return SearchResult {
            upper_bound: ub,
            lower_bound: ub,
            exact: true,
            ordering: Some(ub_order.into_vec()),
            nodes_expanded: 0,
            elapsed: budget.elapsed(),
            cover_cache: None,
            stats: telemetry.finish(),
            faults: Vec::new(),
        };
    }

    let primal = h.primal_graph();
    let covered = h.covered_vertices();
    // best-first expansion order revisits the same bags from many prefixes;
    // the transposition cache answers repeats without re-running the cover
    // branch and bound
    let mut cache = CoverCache::new();
    let ksc = KscTable::new(h);
    let mut lb_scratch = LbScratch::new();
    let mut eg = EliminationGraph::new(&primal);
    let mut nodes: Vec<Node> = Vec::new();
    let mut queue = BucketQueue::new();
    let mut lb = root_lb;
    // One interner canonicalises every vertex-set this search touches:
    // closed-set keys (alive blocks) and cover-cache targets (bag ∩ covered,
    // alive ∩ covered) share the same arena and id space. Dominance state
    // lives in a dense side table indexed by interned id (`u32::MAX` =
    // never visited); `seen_count` counts closed-set insertions only, so the
    // reported seen-peak matches the old per-map gauge.
    let mut seen = StateInterner::for_vertices(n);
    let mut seen_g: Vec<u32> = Vec::new();
    let mut seen_count: usize = 0;

    let root_children: Vec<u32> = match find_simplicial(&eg) {
        Some(w) => vec![w as u32],
        None => eg.alive().iter().map(|v| v as u32).collect(),
    };
    let root_reduced = root_children.len() == 1 && n > 1;
    nodes.push(Node {
        parent: 0,
        vertex: u32::MAX,
        g: 0,
        f: root_lb as u32,
        depth: 0,
        reduced: root_reduced,
        children: root_children,
    });
    queue.push(root_lb, 0, 0);

    let mut current_path: Vec<u32> = Vec::new();
    let mut target_path: Vec<u32> = Vec::new();
    let mut bag = BitSet::new(n);
    let mut degraded = false;

    while let Some(entry_id) = queue.pop() {
        let entry_f = nodes[entry_id as usize].f;
        if !ticker.tick() {
            // a detected below-floor push voids the visited-f argument,
            // exactly like a capped cover does
            let qd = queue.degraded();
            degraded |= qd;
            telemetry.note(|s| s.queue_degraded |= qd);
            let lower_bound = if degraded {
                root_lb.min(ub)
            } else {
                lb.max(entry_f as usize).min(ub)
            };
            telemetry.sample(budget.elapsed(), ub, lower_bound);
            telemetry.cache(cache.stats());
            return SearchResult {
                upper_bound: ub,
                lower_bound,
                exact: !degraded && lb.max(entry_f as usize) >= ub,
                ordering: Some(ub_order.into_vec()),
                nodes_expanded: ticker.nodes(),
                elapsed: budget.elapsed(),
                cover_cache: Some(cache.stats()),
                stats: telemetry.finish(),
                faults: Vec::new(),
            };
        }
        let s_id = entry_id as usize;
        path_of_into(&nodes, entry_id, &mut target_path);
        transform(&mut eg, &mut current_path, &target_path);
        if (nodes[s_id].f as usize) > lb {
            lb = nodes[s_id].f as usize;
            telemetry.sample(budget.elapsed(), ub, lb.min(ub));
        }

        // goal: the residual vertex set is coverable within g, so finishing
        // in any order realises exactly g
        let s_g = nodes[s_id].g as usize;
        let done = eg.num_alive() == 0 || {
            bag.copy_from(eg.alive());
            bag.intersect_with(&covered);
            let (key, _) = seen.intern(bag.blocks());
            cache.greedy_cover_size_interned(key, &bag, h) <= s_g
        };
        if done {
            let in_path: std::collections::HashSet<u32> = target_path.iter().copied().collect();
            let mut order: Vec<usize> =
                (0..n).filter(|&v| !in_path.contains(&(v as u32))).collect();
            order.extend(target_path.iter().rev().map(|&v| v as usize));
            let width = s_g.max(1);
            let qd = queue.degraded();
            degraded |= qd;
            telemetry.note(|s| s.queue_degraded |= qd);
            let lower_bound = if degraded { root_lb.min(width) } else { width };
            telemetry.sample(budget.elapsed(), width, lower_bound);
            telemetry.cache(cache.stats());
            return SearchResult {
                upper_bound: width,
                lower_bound,
                exact: !degraded,
                ordering: Some(order),
                nodes_expanded: ticker.nodes(),
                elapsed: budget.elapsed(),
                cover_cache: Some(cache.stats()),
                stats: telemetry.finish(),
                faults: Vec::new(),
            };
        }

        let s_children = std::mem::take(&mut nodes[s_id].children);
        let s_reduced = nodes[s_id].reduced;
        if s_reduced {
            telemetry.prune(|p| p.simplicial += 1);
        }
        let (s_g, s_f, s_depth) = (nodes[s_id].g, nodes[s_id].f, nodes[s_id].depth);
        for &v in &s_children {
            let v_us = v as usize;
            let pr2_set = if !s_reduced {
                Some(pr2_allowed_children(&eg, v_us, swappable_ghw))
            } else {
                None
            };
            // vertices in no hyperedge are unconstrained and need no cover
            // support, so the bag is restricted to the covered set up front
            bag.copy_from(eg.neighbors(v_us));
            bag.insert(v_us);
            bag.intersect_with(&covered);
            let (k, cover_exact) = {
                let (key, _) = seen.intern(bag.blocks());
                cache.exact_cover_size_capped_interned(key, &bag, h, ub)
            };
            if !cover_exact {
                degraded = true;
                telemetry.prune(|p| p.capped_covers += 1);
            }
            let k = k as u32;
            eg.eliminate(v_us);
            let t_g = s_g.max(k);
            let mut t_f = t_g.max(s_f);
            if (t_f as usize) < ub {
                t_f = t_f.max(residual_ghw_lb(&eg, &mut lb_scratch, &ksc) as u32);
            }
            let dominated = (t_f as usize) < ub && {
                let (key, _) = seen.intern(eg.alive().blocks());
                let k = key as usize;
                if seen_g.len() <= k {
                    seen_g.resize(k + 1, u32::MAX);
                }
                if seen_g[k] <= t_g {
                    true
                } else {
                    if seen_g[k] == u32::MAX {
                        seen_count += 1;
                    }
                    seen_g[k] = t_g;
                    false
                }
            };
            if (t_f as usize) >= ub {
                telemetry.prune(|p| p.f_prunes += 1);
            } else if dominated {
                telemetry.prune(|p| p.dominance_hits += 1);
            }
            if (t_f as usize) < ub && !dominated {
                let (children, reduced) = match find_simplicial(&eg) {
                    Some(w) => (vec![w as u32], true),
                    None => {
                        let set: Vec<u32> = match &pr2_set {
                            Some(s) => s.iter().map(|x| x as u32).collect(),
                            None => eg.alive().iter().map(|x| x as u32).collect(),
                        };
                        if let (true, Some(s)) = (telemetry.on(), &pr2_set) {
                            let cut = eg.num_alive().saturating_sub(s.len()) as u64;
                            telemetry.prune(|p| p.pr2_filtered += cut);
                        }
                        (set, false)
                    }
                };
                let id = nodes.len() as u32;
                nodes.push(Node {
                    parent: entry_id,
                    vertex: v,
                    g: t_g,
                    f: t_f,
                    depth: s_depth + 1,
                    reduced,
                    children,
                });
                queue.push(t_f as usize, (s_depth + 1) as usize, id);
            }
            eg.restore();
        }
        if telemetry.on() {
            telemetry.peaks(
                queue.len(),
                seen_count,
                queue.bytes(),
                seen.bytes()
                    + seen_g.capacity() * std::mem::size_of::<u32>()
                    + cache.bytes(),
            );
        }
    }

    let qd = queue.degraded();
    degraded |= qd;
    telemetry.note(|s| s.queue_degraded |= qd);
    let lower_bound = if degraded { root_lb } else { ub };
    telemetry.sample(budget.elapsed(), ub, lower_bound.min(ub));
    telemetry.cache(cache.stats());
    SearchResult {
        upper_bound: ub,
        lower_bound,
        exact: !degraded,
        ordering: Some(ub_order.into_vec()),
        nodes_expanded: ticker.nodes(),
        elapsed: budget.elapsed(),
        cover_cache: Some(cache.stats()),
        stats: telemetry.finish(),
        faults: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bb_ghw::{bb_ghw, BbGhwConfig};
    use ghd_core::bucket::ghd_from_ordering;
    use ghd_core::setcover::CoverMethod;
    use ghd_core::EliminationOrdering;
    use ghd_hypergraph::generators::hypergraphs;

    fn exact_ghw(h: &Hypergraph) -> usize {
        let r = astar_ghw(h, SearchLimits::unlimited());
        assert!(r.exact, "A*-ghw did not complete");
        r.upper_bound
    }

    #[test]
    fn acyclic_and_clique_families() {
        assert_eq!(exact_ghw(&hypergraphs::acyclic_chain(4, 3, 1)), 1);
        assert_eq!(exact_ghw(&hypergraphs::clique(6)), 3);
        assert_eq!(exact_ghw(&hypergraphs::clique(5)), 3);
    }

    #[test]
    fn example5_has_ghw_2() {
        let h = Hypergraph::from_edges(6, [vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]]);
        assert_eq!(exact_ghw(&h), 2);
    }

    #[test]
    fn agrees_with_bb_ghw_on_random_hypergraphs() {
        for seed in 0..8u64 {
            let h = hypergraphs::random_hypergraph(11, 7, 3, seed);
            let a = astar_ghw(&h, SearchLimits::unlimited());
            let b = bb_ghw(&h, &BbGhwConfig::default());
            assert!(a.exact && b.exact);
            assert_eq!(a.upper_bound, b.upper_bound, "seed {seed}");
        }
    }

    #[test]
    fn goal_ordering_is_a_valid_witness() {
        let h = hypergraphs::clique(5);
        let r = astar_ghw(&h, SearchLimits::unlimited());
        if r.nodes_expanded > 0 {
            let sigma = EliminationOrdering::new(r.ordering.clone().unwrap()).unwrap();
            let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
            ghd.verify(&h).unwrap();
            assert_eq!(ghd.width(), r.upper_bound);
        }
    }

    #[test]
    fn anytime_lower_bound_is_sound() {
        let h = hypergraphs::grid2d(6);
        let r = astar_ghw(&h, SearchLimits::with_nodes(50));
        let full = bb_ghw(&h, &BbGhwConfig::default());
        if full.exact {
            assert!(r.lower_bound <= full.upper_bound);
        }
        assert!(r.nodes_expanded <= 50, "budget overrun: {}", r.nodes_expanded);
    }

    #[test]
    fn stats_collection_is_behaviourally_free() {
        for seed in 0..3u64 {
            let h = hypergraphs::random_hypergraph(11, 7, 3, seed);
            for limits in [SearchLimits::unlimited(), SearchLimits::with_nodes(60)] {
                let off = astar_ghw(&h, limits.clone());
                let on = astar_ghw(&h, limits.stats(true));
                assert_eq!(on.upper_bound, off.upper_bound, "seed {seed}");
                assert_eq!(on.lower_bound, off.lower_bound, "seed {seed}");
                assert_eq!(on.ordering, off.ordering, "seed {seed}");
                assert_eq!(on.nodes_expanded, off.nodes_expanded, "seed {seed}");
                assert_eq!(on.cover_cache, off.cover_cache, "seed {seed}");
                assert!(off.stats.is_none());
                let stats = on.stats.expect("stats requested");
                assert!(!stats.incumbents.is_empty(), "seed {seed}");
            }
        }
    }
}
