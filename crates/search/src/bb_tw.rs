//! Branch and bound for treewidth (§4.4.1) — the baseline exact algorithm
//! in the style of QuickBB \[24\] / BB-tw \[5\], searching the elimination-
//! ordering tree depth-first with reductions, PR1 and PR2.

use crate::common::{
    anytime_lb, complete_ordering, Budget, IncumbentSample, SearchLimits, SearchResult,
    SearchStats, StealCounters, Telemetry, Ticker,
};
use crate::rules::{find_reduction_tw, pr2_allowed_children, swappable_tw};
use crate::steal::{Scheduler, StealConfig};
use ghd_bounds::lower::{minor_min_width_elim, tw_lower_bound, tw_lower_bound_elim, LbScratch};
use ghd_bounds::upper::tw_upper_bound;
use ghd_hypergraph::{BitSet, EliminationGraph, Graph};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-node lower bound heuristic selection (for the ablation benches).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LbMode {
    /// No per-node bound (PR1 and the incumbent still prune).
    None,
    /// minor-min-width only (QuickBB's choice).
    Mmw,
    /// max(minor-min-width, minor-γ_R) (the thesis' A\*-tw choice).
    #[default]
    MmwGammaR,
}

/// Configuration for [`bb_tw`].
#[derive(Clone, Debug)]
pub struct BbConfig {
    /// Resource limits (global per run — parallel workers share them).
    pub limits: SearchLimits,
    /// Apply the simplicial / strongly-almost-simplicial reductions.
    pub use_reductions: bool,
    /// Apply pruning rule 2.
    pub use_pr2: bool,
    /// Per-node lower bound heuristic.
    pub lb_mode: LbMode,
    /// Work-stealing knobs (used by [`bb_tw_parallel`]).
    pub steal: StealConfig,
}

impl Default for BbConfig {
    fn default() -> Self {
        BbConfig {
            limits: SearchLimits::unlimited(),
            use_reductions: true,
            use_pr2: true,
            lb_mode: LbMode::default(),
            steal: StealConfig::default(),
        }
    }
}

struct Dfs<'a> {
    eg: EliminationGraph,
    cfg: &'a BbConfig,
    ticker: Ticker<'a>,
    ub: usize,
    /// Elimination order (first-eliminated first) realising `ub`; completed
    /// to a full ordering lazily.
    best_suffix: Vec<usize>,
    suffix: Vec<usize>,
    root_lb: usize,
    /// Incumbent shared between root-split workers (`None` sequentially).
    shared_ub: Option<&'a AtomicUsize>,
    /// Best width this search proved itself (`usize::MAX` until then).
    found: usize,
    /// Minimum f-value over the *open frontier* left behind when the budget
    /// expired (`usize::MAX` while none). Every node of the search tree that
    /// was neither closed nor f-pruned has f at least this, so
    /// `min(ub, expiry_floor)` is a sound anytime lower bound — f is a true
    /// lower bound on any completion through a node and is monotone along
    /// root-to-leaf paths.
    expiry_floor: usize,
    /// Reusable buffers for the per-node lower bound heuristics.
    lb_scratch: LbScratch,
    /// Telemetry collector (no-op unless `limits.collect_stats`).
    telemetry: Telemetry,
    /// Work-stealing scheduler (`None` sequentially).
    sched: Option<&'a Scheduler>,
    /// This worker's index in the scheduler.
    worker: usize,
    /// Publish children as tasks while `eg.depth()` is at most this.
    steal_depth: usize,
    /// Tasks this worker published.
    published: u64,
    /// Stop after the first incumbent improvement (witness reconstruction).
    stop_at_first: bool,
    stopped: bool,
}

impl<'a> Dfs<'a> {
    /// A sequential-defaults search state; parallel callers override the
    /// sharing fields afterwards.
    fn new(g: &Graph, cfg: &'a BbConfig, ticker: Ticker<'a>, ub: usize, root_lb: usize) -> Self {
        Dfs {
            eg: EliminationGraph::new(g),
            cfg,
            ticker,
            ub,
            best_suffix: Vec::new(),
            suffix: Vec::new(),
            root_lb,
            shared_ub: None,
            found: usize::MAX,
            expiry_floor: usize::MAX,
            lb_scratch: LbScratch::new(),
            telemetry: Telemetry::new(cfg.limits.collect_stats),
            sched: None,
            worker: 0,
            steal_depth: 0,
            published: 0,
            stop_at_first: false,
            stopped: false,
        }
    }

    fn improve(&mut self, w: usize) {
        self.ub = w;
        self.found = w;
        self.best_suffix = self.suffix.clone();
        if self.stop_at_first {
            self.stopped = true;
        }
        if let Some(s) = self.shared_ub {
            s.fetch_min(w, Ordering::Relaxed);
        }
        if self.telemetry.on() {
            let (elapsed, lb) = (self.ticker.elapsed(), self.root_lb);
            self.telemetry.sample(elapsed, w, lb);
        }
    }

    fn can_publish(&self) -> bool {
        self.sched.is_some() && self.eg.depth() <= self.steal_depth
    }

    /// Publishes the current state (the elimination prefix in `suffix`) as
    /// a stealable task; `false` when the deque is full and the caller
    /// should search inline.
    fn publish_child(&mut self, g: usize, f: usize) -> bool {
        let sched = self.sched.expect("checked by can_publish");
        if sched.publish(self.worker, &self.suffix, g, f) {
            self.published += 1;
            true
        } else {
            false
        }
    }

    fn node_lb(&mut self) -> usize {
        // the `_elim` variants compute the same values as running the bound
        // on `self.eg.to_graph()` but reuse the scratch buffers
        match self.cfg.lb_mode {
            LbMode::None => 0,
            LbMode::Mmw => minor_min_width_elim::<ghd_prng::rngs::StdRng>(
                &self.eg,
                None,
                &mut self.lb_scratch,
            ),
            LbMode::MmwGammaR => tw_lower_bound_elim::<ghd_prng::rngs::StdRng>(
                &self.eg,
                None,
                &mut self.lb_scratch,
            ),
        }
    }

    /// Depth-first search below the current state. `g` is the width of the
    /// partial ordering, `f` the inherited bound, `allowed` the PR2-filtered
    /// candidate set (`None` = all alive). Returns `false` when the budget
    /// expired (result no longer guaranteed exact).
    fn search(&mut self, g: usize, f: usize, allowed: Option<&BitSet>) -> bool {
        if !self.ticker.tick() {
            // this node stays open: its f joins the expiry floor
            self.expiry_floor = self.expiry_floor.min(f);
            return false;
        }
        if let Some(s) = self.shared_ub {
            self.ub = self.ub.min(s.load(Ordering::Relaxed));
        }
        let n_alive = self.eg.num_alive();
        // PR1 (§4.4.5): completing in any order yields width ≤ max(g, n'−1).
        let w = g.max(n_alive.saturating_sub(1));
        if w < self.ub {
            self.improve(w);
            if self.stopped {
                return true;
            }
        }
        if n_alive <= g + 1 {
            self.telemetry.prune(|p| p.pr1_closures += 1);
            return true; // subtree solved optimally at width g
        }

        // child candidates: reduction rule first, then PR2 filter
        let forced = if self.cfg.use_reductions {
            find_reduction_tw(&self.eg, f)
        } else {
            None
        };
        if forced.is_some() {
            self.telemetry.prune(|p| p.simplicial += 1);
        }
        let children: Vec<usize> = match forced {
            Some(v) => vec![v],
            None => match allowed {
                Some(set) => {
                    if self.telemetry.on() {
                        let cut = n_alive.saturating_sub(set.len()) as u64;
                        self.telemetry.prune(|p| p.pr2_filtered += cut);
                    }
                    set.iter().collect()
                }
                None => self.eg.alive().to_vec(),
            },
        };
        // explore low-degree vertices first: finds good orderings earlier
        let mut children = children;
        children.sort_by_key(|&v| self.eg.degree(v));

        let last = children.len();
        for (i, &v) in children.iter().enumerate() {
            // grandchild PR2 filter must look at the *current* graph
            let grandchildren = if self.cfg.use_pr2 && forced.is_none() {
                Some(pr2_allowed_children(&self.eg, v, swappable_tw))
            } else {
                None
            };
            let d = self.eg.eliminate(v);
            self.suffix.push(v);
            let child_g = g.max(d);
            let mut child_f = child_g.max(f);
            if child_f < self.ub {
                // h only matters if g alone does not already prune
                child_f = child_f.max(self.node_lb()).max(f);
            }
            let ok = if child_f < self.ub {
                if self.can_publish() && self.publish_child(child_g, child_f) {
                    true // another worker (or this one, later) searches it
                } else {
                    self.search(child_g, child_f, grandchildren.as_ref())
                }
            } else {
                self.telemetry.prune(|p| p.f_prunes += 1);
                true
            };
            self.suffix.pop();
            self.eg.restore();
            if !ok {
                if i + 1 < last {
                    // unvisited siblings remain open; each has f ≥ this f
                    self.expiry_floor = self.expiry_floor.min(f);
                }
                return false;
            }
            if self.stopped {
                return true;
            }
        }
        true
    }
}

/// Executes one stealable task on `dfs`: replays the elimination prefix,
/// reconstructs the PR2 filter the inline expansion would have used at the
/// last prefix vertex, and searches the subtree (republishing children still
/// above the cutoff).
fn run_steal_task(dfs: &mut Dfs<'_>, prefix: &[u32], g: usize, f: usize) -> bool {
    if let Some(s) = dfs.shared_ub {
        dfs.ub = dfs.ub.min(s.load(Ordering::Relaxed));
    }
    if f >= dfs.ub {
        // the subtree cannot beat the incumbent any more
        dfs.telemetry.prune(|p| p.f_prunes += 1);
        return true;
    }
    debug_assert_eq!(dfs.eg.depth(), 0, "worker state fully restored between tasks");
    if prefix.is_empty() {
        // the seed task: the root expansion itself
        return dfs.search(g, f, None);
    }
    for &u in &prefix[..prefix.len() - 1] {
        dfs.eg.eliminate(u as usize);
        dfs.suffix.push(u as usize);
    }
    let v = *prefix.last().unwrap() as usize;
    let forced = if dfs.cfg.use_reductions {
        find_reduction_tw(&dfs.eg, f)
    } else {
        None
    };
    let grandchildren = if dfs.cfg.use_pr2 && forced.is_none() {
        Some(pr2_allowed_children(&dfs.eg, v, swappable_tw))
    } else {
        None
    };
    dfs.eg.eliminate(v);
    dfs.suffix.push(v);
    let ok = dfs.search(g, f, grandchildren.as_ref());
    for _ in 0..prefix.len() {
        dfs.suffix.pop();
        dfs.eg.restore();
    }
    ok
}

/// Computes the treewidth of `g` by branch and bound. Anytime: with limits,
/// returns the best upper bound found, and a lower bound tightened by the
/// minimum f-value of the unexplored frontier (`exact == false` unless
/// proven).
pub fn bb_tw(g: &Graph, cfg: &BbConfig) -> SearchResult {
    let budget = Budget::new(&cfg.limits);
    bb_tw_budgeted(g, cfg, &budget)
}

/// [`bb_tw`] drawing on an externally owned [`Budget`]: the split layer
/// solves many blocks against one shared deadline / node pool / cancel
/// token, so the budget must outlive any single search. `elapsed` in the
/// result is measured from the budget's creation, not this call.
pub fn bb_tw_budgeted(g: &Graph, cfg: &BbConfig, budget: &Budget) -> SearchResult {
    let n = g.num_vertices();
    let root_lb = tw_lower_bound::<ghd_prng::rngs::StdRng>(g, None);
    let (ub, ub_order) = tw_upper_bound::<ghd_prng::rngs::StdRng>(g, None);
    let mut telemetry = Telemetry::new(cfg.limits.collect_stats);
    telemetry.sample(budget.elapsed(), ub, root_lb.min(ub));
    if root_lb >= ub || n <= 1 {
        return SearchResult {
            upper_bound: ub,
            lower_bound: ub,
            exact: true,
            ordering: Some(ub_order.into_vec()),
            nodes_expanded: 0,
            elapsed: budget.elapsed(),
            cover_cache: None,
            stats: telemetry.finish(),
            faults: Vec::new(),
        };
    }
    let mut dfs = Dfs::new(g, cfg, budget.worker(), ub, root_lb);
    dfs.telemetry = telemetry;
    let completed = dfs.search(0, root_lb, None);
    let ordering = Some(complete_ordering(n, &dfs.best_suffix, ub_order.into_vec()));
    let exact = completed;
    let lower_bound = if exact {
        dfs.ub
    } else {
        anytime_lb(dfs.root_lb, dfs.expiry_floor, dfs.ub)
    };
    let mut telemetry = dfs.telemetry;
    telemetry.sample(budget.elapsed(), dfs.ub, lower_bound);
    SearchResult {
        upper_bound: dfs.ub,
        lower_bound,
        exact,
        ordering,
        nodes_expanded: dfs.ticker.nodes(),
        elapsed: budget.elapsed(),
        cover_cache: None,
        stats: telemetry.finish(),
        faults: Vec::new(),
    }
}

/// Reconstructs the canonical sequential witness ordering for a *proven*
/// width: reruns the sequential DFS with `ub = width + 1`, stopping at the
/// first improvement, which visits exactly the DFS-first optimal state
/// whose suffix the sequential search reports last (the determinism idiom
/// of [`bb_tw_parallel`]). The split layer uses this to make divide-and-
/// conquer results bit-identical to the monolithic sequential search.
///
/// Returns the ordering plus the nodes the reconstruction expanded; the
/// ordering is `None` if the budget expired before a witness was found.
pub fn witness_tw(
    g: &Graph,
    width: usize,
    cfg: &BbConfig,
    budget: &Budget,
) -> (Option<Vec<usize>>, u64) {
    let n = g.num_vertices();
    let root_lb = tw_lower_bound::<ghd_prng::rngs::StdRng>(g, None);
    let (ub, ub_order) = tw_upper_bound::<ghd_prng::rngs::StdRng>(g, None);
    if n <= 1 || width >= ub {
        // the heuristic ordering is what the sequential search emits when
        // it cannot improve on the heuristic
        return (Some(ub_order.into_vec()), 0);
    }
    let mut dfs = Dfs::new(g, cfg, budget.worker(), width + 1, root_lb);
    dfs.stop_at_first = true;
    dfs.search(0, root_lb, None);
    let nodes = dfs.ticker.nodes();
    if dfs.found == width {
        (
            Some(complete_ordering(n, &dfs.best_suffix, ub_order.into_vec())),
            nodes,
        )
    } else {
        (None, nodes)
    }
}

/// The PR 4 one-shot root-split parallel BB-tw, kept as the baseline the
/// work-stealing [`bb_tw_parallel`] is benchmarked against: root elimination
/// choices are fanned out once over up to `threads` workers (`0` = all
/// cores) that share the incumbent upper bound through an atomic **and
/// share one [`Budget`]**. When one root subtree dominates the work — the
/// common case after the reduction rules collapse the root branching — the
/// split serialises; the work-stealing runtime exists precisely for those
/// rows. Exact runs are **width-identical** to [`bb_tw`] (orderings may be
/// different optima).
///
/// **Fault containment:** every root-split task runs `catch_unwind`-wrapped;
/// a panicking worker is recorded as a [`ghd_par::WorkerFault`]
/// (surfaced via [`SearchResult::faults`] / [`SearchStats::faults`]), its
/// unspent budget credits return to the pool, and its task is retried once
/// on the caller thread. A task that panics on the retry too degrades the
/// result soundly (`exact == false`, lower bound falls back to the root
/// heuristic) instead of aborting the process.
pub fn bb_tw_parallel_rootsplit(g: &Graph, cfg: &BbConfig, threads: usize) -> SearchResult {
    let n = g.num_vertices();
    let budget = Budget::new(&cfg.limits);
    let root_lb = tw_lower_bound::<ghd_prng::rngs::StdRng>(g, None);
    let (ub, ub_order) = tw_upper_bound::<ghd_prng::rngs::StdRng>(g, None);
    let mut root_tel = Telemetry::new(cfg.limits.collect_stats);
    root_tel.sample(budget.elapsed(), ub, root_lb.min(ub));
    if root_lb >= ub || n <= 1 {
        return SearchResult {
            upper_bound: ub,
            lower_bound: ub,
            exact: true,
            ordering: Some(ub_order.into_vec()),
            nodes_expanded: 0,
            elapsed: budget.elapsed(),
            cover_cache: None,
            stats: root_tel.finish(),
            faults: Vec::new(),
        };
    }
    // root children as the sequential root expansion would enumerate them
    let eg = EliminationGraph::new(g);
    let forced = if cfg.use_reductions {
        find_reduction_tw(&eg, root_lb)
    } else {
        None
    };
    let mut children: Vec<usize> = match forced {
        Some(v) => vec![v],
        None => eg.alive().to_vec(),
    };
    children.sort_by_key(|&v| eg.degree(v));
    drop(eg);

    let incumbent = AtomicUsize::new(ub);
    let run_task = |&v: &usize| {
        let mut allowed = BitSet::new(n);
        allowed.insert(v);
        let mut dfs = Dfs::new(g, cfg, budget.worker(), ub, root_lb);
        dfs.shared_ub = Some(&incumbent);
        let completed = dfs.search(0, root_lb, Some(&allowed));
        (
            completed,
            dfs.found,
            dfs.best_suffix,
            dfs.ticker.nodes(),
            dfs.expiry_floor,
            dfs.telemetry.finish(),
        )
    };
    let contained = ghd_par::parallel_map_contained(&children, threads, run_task);
    let mut faults = contained.faults;
    // Retry each faulted task once on the caller thread: injected kills are
    // one-shot, so the retry explores the subtree the dead worker dropped
    // and exactness is preserved. A second panic (a genuine, persistent
    // bug) degrades the result soundly instead of aborting.
    let outcomes: Vec<_> = contained
        .results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| {
                match ghd_par::run_contained(ghd_par::RETRY_WORKER, i, || run_task(&children[i])) {
                    Ok(o) => o,
                    Err(second) => {
                        faults.push(second);
                        (false, usize::MAX, Vec::new(), 0, root_lb, None)
                    }
                }
            })
        })
        .collect();
    faults.sort_by_key(|f| f.task);

    let mut best_ub = ub;
    let mut best_suffix: Vec<usize> = Vec::new();
    let mut nodes = 0u64;
    let mut completed = true;
    let mut expiry_floor = usize::MAX;
    let mut worker_stats: Vec<SearchStats> = Vec::new();
    for (ok, found, suffix, worker_nodes, floor, stats) in outcomes {
        if found < best_ub {
            best_ub = found;
            best_suffix = suffix;
        }
        nodes += worker_nodes;
        completed &= ok;
        expiry_floor = expiry_floor.min(floor);
        worker_stats.extend(stats);
    }
    let ordering = Some(complete_ordering(n, &best_suffix, ub_order.into_vec()));
    let lower_bound = if completed {
        best_ub
    } else {
        anytime_lb(root_lb, expiry_floor, best_ub)
    };
    let stats = root_tel.finish().map(|root| {
        let mut merged = SearchStats::merge(std::iter::once(root).chain(worker_stats));
        merged.incumbents.push(IncumbentSample {
            elapsed: budget.elapsed(),
            upper_bound: best_ub,
            lower_bound,
        });
        merged.faults = faults.clone();
        merged
    });
    SearchResult {
        upper_bound: best_ub,
        lower_bound,
        exact: completed,
        ordering,
        nodes_expanded: nodes,
        elapsed: budget.elapsed(),
        cover_cache: None,
        stats,
        faults,
    }
}

/// Work-stealing parallel BB-tw (`0` threads = all cores).
///
/// Any worker splits off unexplored siblings above the
/// [`StealConfig::depth`] cutoff as stealable subproblems on its own
/// Chase–Lev deque (see [`crate::steal`]); idle workers steal the oldest —
/// largest — published subtree, so all threads stay busy on unbalanced
/// instances where the one-shot root split of [`bb_tw_parallel_rootsplit`]
/// serialises. All workers share the incumbent upper bound (an atomic
/// `fetch_min`) and one [`Budget`]: a `max_nodes` of N expands at most N
/// states in total regardless of the thread count.
///
/// **Determinism:** with enough budget the reported width *and ordering*
/// are bit-identical to [`bb_tw`] for every thread count and any steal
/// schedule. The width is schedule-independent because the search is
/// exhaustive; the ordering is made deterministic by a sequential *witness
/// reconstruction* pass after the parallel width search — rerunning the
/// sequential DFS with `ub = w* + 1` and stopping at the first improvement
/// visits exactly the DFS-first state of width `w*`, which is the state
/// whose suffix the sequential search records last. Budget-expired runs
/// keep the parallel best suffix — still a certified witness, but
/// schedule-dependent.
///
/// **Fault containment:** every task runs `catch_unwind`-wrapped via
/// [`ghd_par::run_contained`]; a faulted task is retried once by its
/// publisher (the thief's victim) and a second fault folds the task's `f`
/// into the expiry floor, degrading the run to a sound anytime result.
/// Stats attribute every counter to the **executing** worker
/// ([`StealCounters`], [`SearchStats::worker_steals`]).
pub fn bb_tw_parallel(g: &Graph, cfg: &BbConfig, threads: usize) -> SearchResult {
    let n = g.num_vertices();
    let budget = Budget::new(&cfg.limits);
    let root_lb = tw_lower_bound::<ghd_prng::rngs::StdRng>(g, None);
    let (ub, ub_order) = tw_upper_bound::<ghd_prng::rngs::StdRng>(g, None);
    let mut root_tel = Telemetry::new(cfg.limits.collect_stats);
    root_tel.sample(budget.elapsed(), ub, root_lb.min(ub));
    if root_lb >= ub || n <= 1 {
        return SearchResult {
            upper_bound: ub,
            lower_bound: ub,
            exact: true,
            ordering: Some(ub_order.into_vec()),
            nodes_expanded: 0,
            elapsed: budget.elapsed(),
            cover_cache: None,
            stats: root_tel.finish(),
            faults: Vec::new(),
        };
    }
    let workers = crate::bb_ghw::steal_workers(threads);
    let sched = Scheduler::new(workers);
    let incumbent = AtomicUsize::new(ub);
    // Seed task: the whole tree, id 0 by the slab's creation-order contract
    // (FaultPlan::kill_task(0) must hit exactly this first task).
    let seeded = sched.publish(0, &[], 0, root_lb);
    debug_assert!(seeded, "a fresh deque accepts the seed");

    struct WorkerOutcome {
        all_ok: bool,
        found: usize,
        best_suffix: Vec<usize>,
        nodes: u64,
        expiry_floor: usize,
        steals: StealCounters,
        stats: Option<SearchStats>,
        faults: Vec<ghd_par::WorkerFault>,
    }

    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let (sched, budget, incumbent) = (&sched, &budget, &incumbent);
                scope.spawn(move || {
                    let mut dfs = Dfs::new(g, cfg, budget.worker(), ub, root_lb);
                    dfs.shared_ub = Some(incumbent);
                    dfs.sched = Some(sched);
                    dfs.worker = w;
                    dfs.steal_depth = cfg.steal.depth.max(1);
                    let mut steals = StealCounters::default();
                    let mut faults = Vec::new();
                    let mut all_ok = true;
                    while let Some(task) = sched.next(w) {
                        steals.executed += 1;
                        if task.stolen {
                            steals.stolen += 1;
                        }
                        if task.retry {
                            steals.retried += 1;
                        }
                        let (prefix, g_cost, f) = (task.prefix, task.g, task.f);
                        match ghd_par::run_contained(w, task.id as usize, || {
                            run_steal_task(&mut dfs, &prefix, g_cost, f)
                        }) {
                            Ok(ok) => {
                                all_ok &= ok;
                                sched.complete(task.id);
                            }
                            Err(fault) => {
                                faults.push(fault);
                                if !sched.fault(task.id) {
                                    // second fault: the subtree is lost —
                                    // its f-bound keeps the result sound
                                    dfs.expiry_floor = dfs.expiry_floor.min(f);
                                    all_ok = false;
                                }
                                // a panic can leave the traversal state
                                // mid-elimination: rebuild it
                                dfs.eg = EliminationGraph::new(g);
                                dfs.suffix.clear();
                            }
                        }
                    }
                    steals.published = dfs.published;
                    WorkerOutcome {
                        all_ok,
                        found: dfs.found,
                        best_suffix: std::mem::take(&mut dfs.best_suffix),
                        nodes: dfs.ticker.nodes(),
                        expiry_floor: dfs.expiry_floor,
                        steals,
                        stats: dfs.telemetry.finish(),
                        faults,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|j| j.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });

    let mut faults = Vec::new();
    let mut best_ub = ub;
    let mut best_suffix: Vec<usize> = Vec::new();
    let mut nodes = 0u64;
    let mut completed = true;
    let mut expiry_floor = usize::MAX;
    let mut steals_all: Vec<StealCounters> = Vec::new();
    let mut worker_stats: Vec<SearchStats> = Vec::new();
    for o in outcomes {
        if o.found < best_ub {
            best_ub = o.found;
            best_suffix = o.best_suffix;
        }
        nodes += o.nodes;
        completed &= o.all_ok;
        expiry_floor = expiry_floor.min(o.expiry_floor);
        steals_all.push(o.steals);
        worker_stats.extend(o.stats);
        faults.extend(o.faults);
    }
    faults.sort_by_key(|f| f.task);
    debug_assert_eq!(
        sched.published(),
        1 + steals_all.iter().map(|s| s.published as usize).sum::<usize>(),
        "every slab entry is the seed or a worker publication"
    );

    // Witness reconstruction (see the determinism notes above): a
    // sequential DFS with ub = w* + 1 stopping at its first improvement
    // reproduces the exact suffix the sequential search reports. Runs on
    // whatever budget the width phase left; if that expires, the parallel
    // witness (valid, schedule-dependent) is kept.
    if completed && best_ub < ub {
        let mut dfs = Dfs::new(g, cfg, budget.worker(), best_ub + 1, root_lb);
        dfs.stop_at_first = true;
        dfs.search(0, root_lb, None);
        nodes += dfs.ticker.nodes();
        if dfs.found == best_ub {
            best_suffix = std::mem::take(&mut dfs.best_suffix);
        }
        worker_stats.extend(dfs.telemetry.finish());
    }

    let ordering = Some(complete_ordering(n, &best_suffix, ub_order.into_vec()));
    let lower_bound = if completed {
        best_ub
    } else {
        anytime_lb(root_lb, expiry_floor, best_ub)
    };
    let stats = root_tel.finish().map(|root| {
        let mut merged = SearchStats::merge(std::iter::once(root).chain(worker_stats));
        merged.incumbents.push(IncumbentSample {
            elapsed: budget.elapsed(),
            upper_bound: best_ub,
            lower_bound,
        });
        merged.worker_steals = steals_all;
        merged.faults = faults.clone();
        merged
    });
    SearchResult {
        upper_bound: best_ub,
        lower_bound,
        exact: completed,
        ordering,
        nodes_expanded: nodes,
        elapsed: budget.elapsed(),
        cover_cache: None,
        stats,
        faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghd_core::eval::TwEvaluator;
    use ghd_core::EliminationOrdering;
    use ghd_hypergraph::generators::graphs;

    fn exact_tw(g: &Graph) -> usize {
        let r = bb_tw(g, &BbConfig::default());
        assert!(r.exact, "search did not complete");
        r.upper_bound
    }

    #[test]
    fn treewidth_of_basic_families() {
        assert_eq!(exact_tw(&graphs::path(8)), 1);
        assert_eq!(exact_tw(&graphs::cycle(8)), 2);
        assert_eq!(exact_tw(&graphs::complete(6)), 5);
    }

    #[test]
    fn treewidth_of_grids_matches_table_5_2() {
        for n in 2..=4 {
            assert_eq!(exact_tw(&graphs::grid(n)), n, "grid{n}");
        }
    }

    #[test]
    fn returned_ordering_realises_the_width() {
        let g = graphs::grid(4);
        let r = bb_tw(&g, &BbConfig::default());
        let sigma = EliminationOrdering::new(r.ordering.clone().unwrap()).unwrap();
        let w = TwEvaluator::new(&g).width(&sigma);
        assert_eq!(w, r.upper_bound);
    }

    #[test]
    fn ablations_agree_on_the_optimum() {
        let g = graphs::queen(4); // tw(queen4_4) = 11
        let base = bb_tw(&g, &BbConfig::default());
        for (red, pr2, lb) in [
            (false, true, LbMode::MmwGammaR),
            (true, false, LbMode::Mmw),
            (false, false, LbMode::None),
        ] {
            let cfg = BbConfig {
                use_reductions: red,
                use_pr2: pr2,
                lb_mode: lb,
                ..BbConfig::default()
            };
            let r = bb_tw(&g, &cfg);
            assert!(r.exact);
            assert_eq!(r.upper_bound, base.upper_bound, "red={red} pr2={pr2} lb={lb:?}");
        }
    }

    #[test]
    fn work_stealing_is_width_and_ordering_identical() {
        for g in [graphs::grid(4), graphs::queen(4), graphs::gnm_random(14, 40, 3)] {
            let seq = bb_tw(&g, &BbConfig::default());
            for threads in [1, 2, 4, 8] {
                let par = bb_tw_parallel(&g, &BbConfig::default(), threads);
                assert!(par.exact);
                assert_eq!(par.upper_bound, seq.upper_bound, "threads {threads}");
                // witness reconstruction makes the full ordering
                // schedule-independent, not just the width
                assert_eq!(par.ordering, seq.ordering, "threads {threads}");
            }
        }
    }

    #[test]
    fn rootsplit_baseline_is_width_identical() {
        for g in [graphs::grid(4), graphs::queen(4), graphs::gnm_random(14, 40, 3)] {
            let seq = bb_tw(&g, &BbConfig::default());
            for threads in [1, 2, 4] {
                let par = bb_tw_parallel_rootsplit(&g, &BbConfig::default(), threads);
                assert!(par.exact);
                assert_eq!(par.upper_bound, seq.upper_bound, "threads {threads}");
                let sigma = EliminationOrdering::new(par.ordering.unwrap()).unwrap();
                let w = TwEvaluator::new(&g).width(&sigma);
                assert_eq!(w, par.upper_bound, "threads {threads}");
            }
        }
    }

    #[test]
    fn anytime_mode_returns_bounds() {
        let g = graphs::queen(5);
        let r = bb_tw(
            &g,
            &BbConfig {
                limits: SearchLimits::with_nodes(200),
                ..BbConfig::default()
            },
        );
        assert!(r.lower_bound <= r.upper_bound);
        assert!(r.upper_bound <= 25);
        assert!(r.nodes_expanded <= 200, "budget overrun: {}", r.nodes_expanded);
    }

    #[test]
    fn expiry_floor_never_undercuts_the_root_bound() {
        // the anytime lower bound after expiry dominates the root heuristic
        let g = graphs::queen(5);
        let root_lb = tw_lower_bound::<ghd_prng::rngs::StdRng>(&g, None);
        for nodes in [50, 500, 5000] {
            let r = bb_tw(
                &g,
                &BbConfig {
                    limits: SearchLimits::with_nodes(nodes),
                    ..BbConfig::default()
                },
            );
            assert!(r.lower_bound >= root_lb, "nodes={nodes}");
            assert!(r.lower_bound <= r.upper_bound, "nodes={nodes}");
        }
    }

    #[test]
    fn stats_collection_is_behaviourally_free() {
        for g in [graphs::grid(4), graphs::queen(4)] {
            for limits in [SearchLimits::unlimited(), SearchLimits::with_nodes(300)] {
                let off = bb_tw(&g, &BbConfig { limits: limits.clone(), ..BbConfig::default() });
                let on = bb_tw(
                    &g,
                    &BbConfig {
                        limits: limits.stats(true),
                        ..BbConfig::default()
                    },
                );
                assert_eq!(on.upper_bound, off.upper_bound);
                assert_eq!(on.lower_bound, off.lower_bound);
                assert_eq!(on.ordering, off.ordering);
                assert_eq!(on.nodes_expanded, off.nodes_expanded);
                assert!(off.stats.is_none());
                let stats = on.stats.expect("stats requested");
                assert!(!stats.incumbents.is_empty());
            }
        }
    }

    #[test]
    fn singleton_and_empty_edge_graphs() {
        assert_eq!(exact_tw(&Graph::new(1)), 0);
        assert_eq!(exact_tw(&Graph::new(5)), 0);
    }
}
