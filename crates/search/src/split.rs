//! Safe-separator divide and conquer: decompose the irreducible core into
//! independent blocks, solve each block with the existing searches, and
//! stitch the per-block results back into one certified answer.
//!
//! For treewidth three separator kinds are exact-safe (`tw(G) = max` over
//! the blocks): connected components, cut vertices (Tarjan biconnected
//! blocks) and clique separators (MCS-M atoms). Every block is an induced
//! subgraph containing its separator as a clique, so per-block lower
//! bounds carry over and per-block decompositions glue at a separator bag.
//! For ghw only hypergraph connected components and the isolated-edge /
//! contained-edge reductions are provably safe, so the ghw pipeline is
//! restricted to those.
//!
//! Determinism: blocks are enumerated canonically (sorted vertex lists, in
//! order of smallest vertex), the fan-out preserves input order, and for
//! exact runs the emitted ordering is re-derived by the sequential witness
//! reconstruction of [`crate::bb_tw::witness_tw`] /
//! [`crate::bb_ghw::witness_ghw`] on the *whole* instance — so a split
//! run is bit-identical to the monolithic sequential search for any
//! thread count. Anytime runs (budget expiry, cancellation, double
//! faults) fall back to a stitched ordering whose width is re-verified
//! before it is claimed.

use crate::bb_ghw::{bb_ghw_budgeted, witness_ghw, BbGhwConfig};
use crate::bb_tw::{bb_tw_budgeted, witness_tw, BbConfig};
use crate::common::{Budget, SearchResult, SearchStats};
use crate::preprocess::preprocess_tw;
use ghd_core::eval::TwEvaluator;
use ghd_core::{bucket::vertex_elimination, EliminationOrdering};
use ghd_hypergraph::separators::{
    biconnected_components, clique_separator_atoms, hypergraph_components,
};
use ghd_hypergraph::{BitSet, Graph, Hypergraph};
use ghd_par::WorkerFault;

/// What detached a block from the rest of the instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeparatorKind {
    /// A connected component (no separator at all).
    Component,
    /// A biconnected block joined to the rest at cut vertices.
    CutVertex,
    /// A clique-separator atom.
    CliqueSeparator,
    /// A hyperedge sharing no vertex with any other (ghw only): width 1.
    IsolatedEdge,
}

impl SeparatorKind {
    pub fn as_str(self) -> &'static str {
        match self {
            SeparatorKind::Component => "component",
            SeparatorKind::CutVertex => "cut-vertex",
            SeparatorKind::CliqueSeparator => "clique-separator",
            SeparatorKind::IsolatedEdge => "isolated-edge",
        }
    }
}

/// Per-block outcome, reported under the `split` stats section.
#[derive(Clone, Debug)]
pub struct BlockOutcome {
    pub size: usize,
    pub width: usize,
    pub lower_bound: usize,
    pub exact: bool,
    pub kind: SeparatorKind,
    pub cache_hit: bool,
    pub nodes: u64,
}

/// The split trace: how the instance decomposed and how each block fared.
#[derive(Clone, Debug, Default)]
pub struct SplitReport {
    /// `true` iff at least two blocks were solved independently.
    pub split: bool,
    pub blocks: Vec<BlockOutcome>,
    /// Width contributed by the §4.4.3 reductions (tw only).
    pub base_width: usize,
    /// Vertices eliminated by preprocessing (tw only).
    pub eliminated: usize,
    /// Preprocessing rounds (tw only).
    pub rounds: usize,
    /// Hyperedges dropped by the contained-edge reduction (ghw only).
    pub contained_edges: usize,
    /// Nodes the sequential witness reconstruction expanded.
    pub witness_nodes: u64,
    /// `true` when the emitted ordering was stitched from block orderings
    /// rather than reconstructed by the canonical witness.
    pub stitched: bool,
}

/// An exact block solution a [`BlockStore`] can replay: ordering indices
/// are compact block indices.
#[derive(Clone, Debug)]
pub struct BlockSolution {
    pub width: usize,
    pub lower_bound: usize,
    pub ordering: Vec<usize>,
}

/// Cross-instance cache for exact block solutions, keyed by the canonical
/// text of the compact block. The serve layer backs this with its
/// byte-capped LRU so two instances sharing a block hit the cache even
/// when the whole instances differ.
pub trait BlockStore: Sync {
    fn probe(&self, canon: &str) -> Option<BlockSolution>;
    fn admit(&self, canon: &str, sol: &BlockSolution);
}

/// A split solve: the combined search result plus the split trace.
#[derive(Clone, Debug)]
pub struct SplitOutcome {
    pub result: SearchResult,
    pub report: SplitReport,
}

// ---------------------------------------------------------------------------
// shared plumbing

/// Induced subgraph of `g` on the sorted vertex list `verts`, compacted to
/// dense indices (compact `i` = `verts[i]`).
fn induced(g: &Graph, verts: &[usize]) -> Graph {
    let mut pos = vec![usize::MAX; g.num_vertices()];
    for (i, &v) in verts.iter().enumerate() {
        pos[v] = i;
    }
    let mut sub = Graph::new(verts.len());
    for (i, &v) in verts.iter().enumerate() {
        for u in g.neighbors(v).iter() {
            if u > v && pos[u] != usize::MAX {
                sub.add_edge(i, pos[u]);
            }
        }
    }
    sub
}

/// Canonical text of a compact block graph: vertex count plus the sorted
/// edge list. Blocks are compacted from sorted vertex lists, so equal
/// labelled blocks — the reuse the block cache targets — get equal keys.
fn graph_canon(g: &Graph) -> String {
    use std::fmt::Write;
    let mut s = format!("v{}", g.num_vertices());
    for (u, v) in g.edges() {
        let _ = write!(s, ";{u}-{v}");
    }
    s
}

/// Canonical text of a compact block hypergraph.
fn hypergraph_canon(h: &Hypergraph) -> String {
    use std::fmt::Write;
    let mut s = format!("v{}", h.num_vertices());
    for e in h.edges() {
        let _ = write!(s, ";e");
        for v in e.iter() {
            let _ = write!(s, ",{v}");
        }
    }
    s
}

/// Re-derives an elimination ordering for the block `verts` from the tree
/// decomposition of `order` on its induced subgraph, leaving the (clique)
/// `defer` set out entirely: bags are peeled leaf-first toward a bag
/// containing `defer`, which eliminates every other vertex at degree
/// ≤ the decomposition width while the deferred separator stays for a
/// later block. Returns the emitted vertices (all of `verts` minus
/// `defer`) in elimination order.
fn peel_ordering(g: &Graph, verts: &[usize], order: &[usize], defer: &[usize]) -> Vec<usize> {
    let sub = induced(g, verts);
    let mut pos = vec![usize::MAX; g.num_vertices()];
    for (i, &v) in verts.iter().enumerate() {
        pos[v] = i;
    }
    let sigma_c: Vec<usize> = order.iter().map(|&v| pos[v]).collect();
    let defer_set = BitSet::from_iter(verts.len(), defer.iter().map(|&v| pos[v]));
    let sigma = match EliminationOrdering::new(sigma_c) {
        Some(s) => s,
        // defensive: a malformed block ordering falls back to solver order
        None => {
            return order
                .iter()
                .copied()
                .filter(|&v| !defer.contains(&v))
                .collect()
        }
    };
    let td = vertex_elimination(&sub, &sigma);
    // a clique is always contained in some bag; defensively fall back to
    // the solver order (the stitched width is re-verified either way)
    let Some(root) = td
        .nodes()
        .find(|&b| defer_set.iter().all(|v| td.bag(b).contains(v)))
    else {
        return order
            .iter()
            .copied()
            .filter(|&v| !defer.contains(&v))
            .collect();
    };
    // re-root the tree at `root` and peel in reverse-BFS order, emitting
    // each vertex at the bag closest to the root that contains it
    let nb = td.num_nodes();
    let mut parent_new = vec![usize::MAX; nb];
    let mut seen = vec![false; nb];
    let mut bfs = vec![root];
    seen[root] = true;
    let mut i = 0;
    while i < bfs.len() {
        let b = bfs[i];
        i += 1;
        let mut nbrs: Vec<usize> = td.children(b).to_vec();
        if let Some(p) = td.parent(b) {
            nbrs.push(p);
        }
        for t in nbrs {
            if !seen[t] {
                seen[t] = true;
                parent_new[t] = b;
                bfs.push(t);
            }
        }
    }
    let mut emitted = BitSet::new(verts.len());
    let mut out = Vec::with_capacity(verts.len() - defer.len());
    for &b in bfs.iter().rev() {
        for v in td.bag(b).iter() {
            if defer_set.contains(v) || emitted.contains(v) {
                continue;
            }
            if parent_new[b] != usize::MAX && td.bag(parent_new[b]).contains(v) {
                continue;
            }
            emitted.insert(v);
            out.push(verts[v]);
        }
    }
    // completeness insurance: a valid connected decomposition emits every
    // non-deferred vertex above; anything missed is appended canonically
    for (i, &v) in verts.iter().enumerate() {
        if !emitted.contains(i) && !defer_set.contains(i) {
            out.push(v);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// treewidth pipeline

/// One independently solved block (core vertex indices, sorted).
struct Unit {
    verts: Vec<usize>,
    kind: SeparatorKind,
}

/// A biconnected block in component peel order: its clique atoms (unit
/// ids, creation order) and the cut vertex deferred toward later blocks
/// (`None` for the last block of a component).
struct BccPlan {
    verts: Vec<usize>,
    attach: Option<usize>,
    unit_ids: Vec<usize>,
}

struct CompPlan {
    bccs: Vec<BccPlan>,
}

struct Plan {
    comps: Vec<CompPlan>,
    units: Vec<Unit>,
}

/// Leaf-peel order for the biconnected blocks of one connected component:
/// repeatedly detach the canonically-first block sharing exactly one
/// vertex with the remaining blocks (the block–cut tree always has such a
/// leaf), recording that vertex as the block's attachment point.
fn peel_bccs(blocks: Vec<Vec<usize>>, n: usize) -> Vec<(Vec<usize>, Option<usize>)> {
    let k = blocks.len();
    if k == 1 {
        return blocks.into_iter().map(|b| (b, None)).collect();
    }
    let mut occ = vec![0usize; n];
    for b in &blocks {
        for &v in b {
            occ[v] += 1;
        }
    }
    let mut remaining = vec![true; k];
    let mut left = k;
    let mut out = Vec::with_capacity(k);
    while left > 1 {
        let leaf = (0..k).find(|&i| {
            remaining[i] && blocks[i].iter().filter(|&&v| occ[v] >= 2).count() == 1
        });
        let Some(i) = leaf else {
            // defensive: cannot happen for a block–cut tree; merge what is
            // left into one block so every vertex is still solved
            debug_assert!(false, "block-cut structure is not a tree");
            let mut merged = BitSet::new(n);
            for (j, b) in blocks.iter().enumerate() {
                if remaining[j] {
                    for &v in b {
                        merged.insert(v);
                    }
                }
            }
            out.push((merged.to_vec(), None));
            return out;
        };
        let attach = blocks[i].iter().copied().find(|&v| occ[v] >= 2);
        for &v in &blocks[i] {
            occ[v] -= 1;
        }
        out.push((blocks[i].clone(), attach));
        remaining[i] = false;
        left -= 1;
    }
    let i = remaining.iter().position(|&r| r).expect("one block remains");
    out.push((blocks[i].clone(), None));
    out
}

/// Decomposition plan for the irreducible core: connected components →
/// biconnected blocks (leaf-peel order) → clique-separator atoms
/// (creation order). Every solve unit is canonical (sorted vertex lists).
fn plan_tw(core: &Graph) -> Plan {
    let n = core.num_vertices();
    let mut units = Vec::new();
    let mut comps = Vec::new();
    for comp in core.connected_components() {
        let sub_c = induced(core, &comp);
        let mut blocks: Vec<Vec<usize>> = biconnected_components(&sub_c)
            .blocks
            .into_iter()
            .map(|b| b.into_iter().map(|i| comp[i]).collect())
            .collect();
        blocks.sort();
        let many_bccs = blocks.len() > 1;
        let mut bccs = Vec::new();
        for (bverts, attach) in peel_bccs(blocks, n) {
            let atoms: Vec<Vec<usize>> = if bverts.len() >= 4 {
                let sub_b = induced(core, &bverts);
                clique_separator_atoms(&sub_b)
                    .atoms
                    .into_iter()
                    .map(|a| a.into_iter().map(|i| bverts[i]).collect())
                    .collect()
            } else {
                vec![bverts.clone()]
            };
            let kind = if atoms.len() > 1 {
                SeparatorKind::CliqueSeparator
            } else if many_bccs {
                SeparatorKind::CutVertex
            } else {
                SeparatorKind::Component
            };
            let mut unit_ids = Vec::with_capacity(atoms.len());
            for verts in atoms {
                unit_ids.push(units.len());
                units.push(Unit { verts, kind });
            }
            bccs.push(BccPlan {
                verts: bverts,
                attach,
                unit_ids,
            });
        }
        comps.push(CompPlan { bccs });
    }
    Plan { comps, units }
}

/// A solved unit: width interval plus an ordering in core indices.
struct Solved {
    width: usize,
    lower_bound: usize,
    exact: bool,
    ordering: Vec<usize>,
    nodes: u64,
    cache_hit: bool,
    stats: Option<SearchStats>,
}

fn solve_unit(
    core: &Graph,
    unit: &Unit,
    cfg: &BbConfig,
    budget: &Budget,
    store: Option<&dyn BlockStore>,
) -> Solved {
    let sub = induced(core, &unit.verts);
    let canon = store.map(|_| format!("tw;{}", graph_canon(&sub)));
    if let (Some(s), Some(c)) = (store, canon.as_deref()) {
        if let Some(hit) = s.probe(c) {
            if hit.ordering.len() == unit.verts.len() {
                return Solved {
                    width: hit.width,
                    lower_bound: hit.lower_bound,
                    exact: true,
                    ordering: hit.ordering.iter().map(|&i| unit.verts[i]).collect(),
                    nodes: 0,
                    cache_hit: true,
                    stats: None,
                };
            }
        }
    }
    let r = bb_tw_budgeted(&sub, cfg, budget);
    let ordering_c = r
        .ordering
        .unwrap_or_else(|| (0..sub.num_vertices()).collect());
    if r.exact {
        if let (Some(s), Some(c)) = (store, canon.as_deref()) {
            s.admit(
                c,
                &BlockSolution {
                    width: r.upper_bound,
                    lower_bound: r.lower_bound,
                    ordering: ordering_c.clone(),
                },
            );
        }
    }
    Solved {
        width: r.upper_bound,
        lower_bound: r.lower_bound,
        exact: r.exact,
        ordering: ordering_c.iter().map(|&i| unit.verts[i]).collect(),
        nodes: r.nodes_expanded,
        cache_hit: false,
        stats: r.stats,
    }
}

/// Sound stand-in for a block whose worker faulted twice: the identity
/// ordering with its verified width, claimed inexact.
fn degraded_unit(core: &Graph, unit: &Unit) -> Solved {
    let sub = induced(core, &unit.verts);
    let k = sub.num_vertices();
    let sigma = EliminationOrdering::new((0..k).collect()).expect("identity is a permutation");
    let width = TwEvaluator::new(&sub).width(&sigma);
    Solved {
        width,
        lower_bound: 0,
        exact: false,
        ordering: unit.verts.clone(),
        nodes: 0,
        cache_hit: false,
        stats: None,
    }
}

/// Stitches the per-unit orderings into one core ordering of width
/// ≤ max unit widths: atoms of each biconnected block are peeled in
/// creation order (deferring what later atoms share), each block is then
/// re-peeled to defer its attachment cut vertex, components concatenate.
fn stitch_tw(core: &Graph, plan: &Plan, solved: &[Solved]) -> Vec<usize> {
    let mut out = Vec::with_capacity(core.num_vertices());
    for comp in &plan.comps {
        for bcc in &comp.bccs {
            let m = bcc.unit_ids.len();
            let mut bcc_order: Vec<usize> = Vec::with_capacity(bcc.verts.len());
            if m == 1 {
                bcc_order.extend_from_slice(&solved[bcc.unit_ids[0]].ordering);
            } else {
                // occurrences of each vertex among the not-yet-peeled atoms
                let mut occ = vec![0usize; core.num_vertices()];
                for &u in &bcc.unit_ids {
                    for &v in &plan.units[u].verts {
                        occ[v] += 1;
                    }
                }
                for &u in &bcc.unit_ids {
                    let unit = &plan.units[u];
                    for &v in &unit.verts {
                        occ[v] -= 1;
                    }
                    let defer: Vec<usize> = unit
                        .verts
                        .iter()
                        .copied()
                        .filter(|&v| occ[v] > 0)
                        .collect();
                    if defer.is_empty() {
                        // emit whatever this atom still owns, solver order
                        let tail: Vec<usize> = solved[u]
                            .ordering
                            .iter()
                            .copied()
                            .filter(|&v| !bcc_order.contains(&v))
                            .collect();
                        bcc_order.extend(tail);
                    } else {
                        let peeled: Vec<usize> =
                            peel_ordering(core, &unit.verts, &solved[u].ordering, &defer)
                            .into_iter()
                            .filter(|v| !bcc_order.contains(v))
                            .collect();
                        bcc_order.extend(peeled);
                    }
                }
            }
            match bcc.attach {
                Some(c) => out.extend(peel_ordering(core, &bcc.verts, &bcc_order, &[c])),
                None => out.extend_from_slice(&bcc_order),
            }
        }
    }
    out
}

/// Treewidth by safe-separator divide and conquer: preprocess, decompose
/// the core, solve each block over `threads` workers (`0` = all cores)
/// against one shared [`Budget`] / cancel token, and recombine. Exact
/// results are bit-identical to the monolithic sequential [`crate::bb_tw`]
/// (see the module notes); anytime results report the stitched ordering.
/// `store` optionally caches exact block solutions across instances.
pub fn split_tw(
    g: &Graph,
    cfg: &BbConfig,
    threads: usize,
    store: Option<&dyn BlockStore>,
) -> SplitOutcome {
    let budget = Budget::new(&cfg.limits);
    let pre = preprocess_tw(g);
    let mut report = SplitReport {
        base_width: pre.base_width,
        eliminated: pre.eliminated.len(),
        rounds: pre.rounds,
        ..SplitReport::default()
    };
    if pre.core.num_vertices() == 0 {
        // fully reduced: reproduce the monolithic ordering via the witness
        let (w, wnodes) = witness_tw(g, pre.base_width, cfg, &budget);
        report.witness_nodes = wnodes;
        let ordering = w.unwrap_or_else(|| {
            report.stitched = true;
            let mut o = pre.eliminated.clone();
            o.reverse();
            o
        });
        return SplitOutcome {
            result: SearchResult {
                upper_bound: pre.base_width,
                lower_bound: pre.base_width,
                exact: true,
                ordering: Some(ordering),
                nodes_expanded: wnodes,
                elapsed: budget.elapsed(),
                cover_cache: None,
                stats: None,
                faults: Vec::new(),
            },
            report,
        };
    }
    let plan = plan_tw(&pre.core);
    if plan.units.len() <= 1 {
        // nothing to split: the monolithic search is the answer — the
        // work-stealing parallel one when threads were requested, so an
        // irreducible instance loses nothing to the split attempt
        let result = if threads == 1 {
            bb_tw_budgeted(g, cfg, &budget)
        } else {
            crate::bb_tw::bb_tw_parallel(g, cfg, threads)
        };
        report.blocks.push(BlockOutcome {
            size: g.num_vertices(),
            width: result.upper_bound,
            lower_bound: result.lower_bound,
            exact: result.exact,
            kind: SeparatorKind::Component,
            cache_hit: false,
            nodes: result.nodes_expanded,
        });
        return SplitOutcome { result, report };
    }
    report.split = true;
    // fan the blocks out; a faulted block is retried once on the caller
    let ids: Vec<usize> = (0..plan.units.len()).collect();
    let contained = ghd_par::parallel_map_contained(&ids, threads, |&u| {
        solve_unit(&pre.core, &plan.units[u], cfg, &budget, store)
    });
    let mut faults: Vec<WorkerFault> = contained.faults;
    let mut solved: Vec<Solved> = Vec::with_capacity(plan.units.len());
    for (i, slot) in contained.results.into_iter().enumerate() {
        match slot {
            Some(s) => solved.push(s),
            None => match ghd_par::run_contained(ghd_par::RETRY_WORKER, i, || {
                solve_unit(&pre.core, &plan.units[i], cfg, &budget, store)
            }) {
                Ok(s) => solved.push(s),
                Err(fault) => {
                    faults.push(fault);
                    solved.push(degraded_unit(&pre.core, &plan.units[i]));
                }
            },
        }
    }
    faults.sort_by_key(|f| f.task);
    let mut ub = pre.base_width;
    let mut lb = pre.base_width;
    let mut exact = true;
    let mut nodes: u64 = 0;
    for (u, s) in solved.iter().enumerate() {
        ub = ub.max(s.width);
        lb = lb.max(s.lower_bound);
        exact &= s.exact;
        nodes += s.nodes;
        report.blocks.push(BlockOutcome {
            size: plan.units[u].verts.len(),
            width: s.width,
            lower_bound: s.lower_bound,
            exact: s.exact,
            kind: plan.units[u].kind,
            cache_hit: s.cache_hit,
            nodes: s.nodes,
        });
    }
    lb = lb.min(ub);
    // exact runs re-derive the canonical sequential ordering on the whole
    // graph; anytime runs (and an expired witness) stitch block orderings
    let mut witness = None;
    if exact {
        let (w, wnodes) = witness_tw(g, ub, cfg, &budget);
        report.witness_nodes = wnodes;
        nodes += wnodes;
        witness = w;
    }
    let ordering = match witness {
        Some(o) => o,
        None => {
            report.stitched = true;
            let core_order = stitch_tw(&pre.core, &plan, &solved);
            let mut o: Vec<usize> = core_order
                .into_iter()
                .map(|v| pre.original_of_core[v])
                .collect();
            o.extend(pre.eliminated.iter().rev());
            // the stitched ordering may only certify what it realises
            match EliminationOrdering::new(o.clone()) {
                Some(sigma) => {
                    let w = TwEvaluator::new(g).width(&sigma);
                    debug_assert!(w <= ub, "stitched width {w} exceeds combined bound {ub}");
                    if w > ub {
                        ub = w;
                        exact = false;
                    }
                }
                None => {
                    debug_assert!(false, "stitched ordering is not a permutation");
                    exact = false;
                }
            }
            o
        }
    };
    if exact {
        lb = ub;
    }
    let stats = if cfg.limits.collect_stats {
        let parts: Vec<SearchStats> = solved.iter_mut().filter_map(|s| s.stats.take()).collect();
        let mut merged = SearchStats::merge(parts);
        merged.faults = faults.clone();
        Some(merged)
    } else {
        None
    };
    SplitOutcome {
        result: SearchResult {
            upper_bound: ub,
            lower_bound: lb,
            exact,
            ordering: Some(ordering),
            nodes_expanded: nodes,
            elapsed: budget.elapsed(),
            cover_cache: None,
            stats,
            faults,
        },
        report,
    }
}

// ---------------------------------------------------------------------------
// ghw pipeline

/// One ghw component: either solved by search or settled trivially.
enum GhwPart {
    /// Vertices covered by no hyperedge: width 0, emitted canonically.
    Bare(Vec<usize>),
    /// A single hyperedge sharing no vertex with any other: width 1.
    Isolated(Vec<usize>),
    /// A component that needs the search (unit index into the fan-out).
    Search(usize),
}

struct GhwUnit {
    verts: Vec<usize>,
    sub: Hypergraph,
}

fn solve_ghw_unit(
    unit: &GhwUnit,
    cfg: &BbGhwConfig,
    budget: &Budget,
    store: Option<&dyn BlockStore>,
) -> Solved {
    let canon = store.map(|_| format!("ghw;{}", hypergraph_canon(&unit.sub)));
    if let (Some(s), Some(c)) = (store, canon.as_deref()) {
        if let Some(hit) = s.probe(c) {
            if hit.ordering.len() == unit.verts.len() {
                return Solved {
                    width: hit.width,
                    lower_bound: hit.lower_bound,
                    exact: true,
                    ordering: hit.ordering.iter().map(|&i| unit.verts[i]).collect(),
                    nodes: 0,
                    cache_hit: true,
                    stats: None,
                };
            }
        }
    }
    let r = bb_ghw_budgeted(&unit.sub, cfg, budget);
    let ordering_c = r
        .ordering
        .unwrap_or_else(|| (0..unit.sub.num_vertices()).collect());
    if r.exact {
        if let (Some(s), Some(c)) = (store, canon.as_deref()) {
            s.admit(
                c,
                &BlockSolution {
                    width: r.upper_bound,
                    lower_bound: r.lower_bound,
                    ordering: ordering_c.clone(),
                },
            );
        }
    }
    Solved {
        width: r.upper_bound,
        lower_bound: r.lower_bound,
        exact: r.exact,
        ordering: ordering_c.iter().map(|&i| unit.verts[i]).collect(),
        nodes: r.nodes_expanded,
        cache_hit: false,
        stats: r.stats,
    }
}

/// Trivial-width stand-in for a ghw block whose worker faulted twice.
fn degraded_ghw_unit(unit: &GhwUnit) -> Solved {
    Solved {
        width: unit.sub.num_edges().max(1),
        lower_bound: 0,
        exact: false,
        ordering: unit.verts.clone(),
        nodes: 0,
        cache_hit: false,
        stats: None,
    }
}

/// Generalized hypertree width by the provably safe ghw reductions:
/// contained-edge removal, hypergraph connected components and the
/// isolated-edge shortcut. Components are solved over `threads` workers
/// (`0` = all cores) against one shared [`Budget`] and concatenated —
/// components are independent in the primal graph, so the combined width
/// is the maximum. Exact results are bit-identical to the monolithic
/// sequential [`crate::bb_ghw`] via witness reconstruction on the whole
/// instance.
pub fn split_ghw(
    h: &Hypergraph,
    cfg: &BbGhwConfig,
    threads: usize,
    store: Option<&dyn BlockStore>,
) -> SplitOutcome {
    let budget = Budget::new(&cfg.limits);
    let n = h.num_vertices();
    let mut report = SplitReport::default();
    // contained-edge reduction: e ⊆ f keeps ghw exactly (f's bag covers e,
    // and f replaces e in any λ-cover without growing it)
    let kept: Vec<usize> = (0..h.num_edges())
        .filter(|&i| {
            let e = h.edge(i);
            !(0..h.num_edges()).any(|j| {
                j != i && {
                    let f = h.edge(j);
                    e.is_subset(f) && (e.len() < f.len() || j < i)
                }
            })
        })
        .collect();
    report.contained_edges = h.num_edges() - kept.len();
    let reduced = Hypergraph::from_edges(n, kept.iter().map(|&i| h.edge(i).to_vec()));
    let comps = hypergraph_components(&reduced);
    if comps.len() <= 1 || h.covered_vertices().is_empty() {
        // nothing to split: the monolithic search is the answer — the
        // work-stealing parallel one when threads were requested, so an
        // irreducible instance loses nothing to the split attempt
        let result = if threads == 1 {
            bb_ghw_budgeted(h, cfg, &budget)
        } else {
            crate::bb_ghw::bb_ghw_parallel(h, cfg, threads)
        };
        report.blocks.push(BlockOutcome {
            size: n,
            width: result.upper_bound,
            lower_bound: result.lower_bound,
            exact: result.exact,
            kind: SeparatorKind::Component,
            cache_hit: false,
            nodes: result.nodes_expanded,
        });
        return SplitOutcome { result, report };
    }
    report.split = true;
    // classify components canonically; compact sub-hypergraphs for search
    let mut parts: Vec<GhwPart> = Vec::with_capacity(comps.len());
    let mut units: Vec<GhwUnit> = Vec::new();
    let mut pos = vec![usize::MAX; n];
    for comp in &comps {
        for (i, &v) in comp.iter().enumerate() {
            pos[v] = i;
        }
        let in_comp: Vec<usize> = kept
            .iter()
            .copied()
            .filter(|&e| {
                h.edge(e)
                    .min()
                    .is_some_and(|v| comp.binary_search(&v).is_ok())
            })
            .collect();
        match in_comp.len() {
            0 => parts.push(GhwPart::Bare(comp.clone())),
            1 => parts.push(GhwPart::Isolated(comp.clone())),
            _ => {
                let edges = in_comp
                    .iter()
                    .map(|&e| h.edge(e).iter().map(|v| pos[v]).collect::<Vec<_>>());
                let sub = Hypergraph::from_edges(comp.len(), edges);
                parts.push(GhwPart::Search(units.len()));
                units.push(GhwUnit {
                    verts: comp.clone(),
                    sub,
                });
            }
        }
    }
    // fan the searched components out; faulted blocks retry on the caller
    let ids: Vec<usize> = (0..units.len()).collect();
    let contained = ghd_par::parallel_map_contained(&ids, threads, |&u| {
        solve_ghw_unit(&units[u], cfg, &budget, store)
    });
    let mut faults: Vec<WorkerFault> = contained.faults;
    let mut solved: Vec<Solved> = Vec::with_capacity(units.len());
    for (i, slot) in contained.results.into_iter().enumerate() {
        match slot {
            Some(s) => solved.push(s),
            None => match ghd_par::run_contained(ghd_par::RETRY_WORKER, i, || {
                solve_ghw_unit(&units[i], cfg, &budget, store)
            }) {
                Ok(s) => solved.push(s),
                Err(fault) => {
                    faults.push(fault);
                    solved.push(degraded_ghw_unit(&units[i]));
                }
            },
        }
    }
    faults.sort_by_key(|f| f.task);
    let mut ub = 0usize;
    let mut lb = 0usize;
    let mut exact = true;
    let mut nodes: u64 = 0;
    let mut stitched: Vec<usize> = Vec::with_capacity(n);
    for part in &parts {
        match part {
            GhwPart::Bare(verts) => {
                stitched.extend_from_slice(verts);
                report.blocks.push(BlockOutcome {
                    size: verts.len(),
                    width: 0,
                    lower_bound: 0,
                    exact: true,
                    kind: SeparatorKind::Component,
                    cache_hit: false,
                    nodes: 0,
                });
            }
            GhwPart::Isolated(verts) => {
                ub = ub.max(1);
                lb = lb.max(1);
                stitched.extend_from_slice(verts);
                report.blocks.push(BlockOutcome {
                    size: verts.len(),
                    width: 1,
                    lower_bound: 1,
                    exact: true,
                    kind: SeparatorKind::IsolatedEdge,
                    cache_hit: false,
                    nodes: 0,
                });
            }
            GhwPart::Search(u) => {
                let s = &solved[*u];
                ub = ub.max(s.width);
                lb = lb.max(s.lower_bound);
                exact &= s.exact;
                nodes += s.nodes;
                stitched.extend_from_slice(&s.ordering);
                report.blocks.push(BlockOutcome {
                    size: units[*u].verts.len(),
                    width: s.width,
                    lower_bound: s.lower_bound,
                    exact: s.exact,
                    kind: SeparatorKind::Component,
                    cache_hit: s.cache_hit,
                    nodes: s.nodes,
                });
            }
        }
    }
    lb = lb.min(ub);
    let mut witness = None;
    if exact {
        let (w, wnodes) = witness_ghw(h, ub, cfg, &budget);
        report.witness_nodes = wnodes;
        nodes += wnodes;
        witness = w;
    }
    let ordering = match witness {
        Some(o) => o,
        None => {
            report.stitched = true;
            stitched
        }
    };
    if exact {
        lb = ub;
    }
    let stats = if cfg.limits.collect_stats {
        let parts: Vec<SearchStats> = solved.iter_mut().filter_map(|s| s.stats.take()).collect();
        let mut merged = SearchStats::merge(parts);
        merged.faults = faults.clone();
        Some(merged)
    } else {
        None
    };
    SplitOutcome {
        result: SearchResult {
            upper_bound: ub,
            lower_bound: lb,
            exact,
            ordering: Some(ordering),
            nodes_expanded: nodes,
            elapsed: budget.elapsed(),
            cover_cache: None,
            stats,
            faults,
        },
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::SearchLimits;
    use crate::{bb_ghw, bb_tw};
    use ghd_core::EliminationOrdering;
    use ghd_hypergraph::generators::graphs;

    fn cfg() -> BbConfig {
        BbConfig::default()
    }

    /// Four Mycielski(3) blocks: two glued on the edge {0, 1} (a clique
    /// separator), one attached at the cut vertex 4, one disjoint. The
    /// Grötzsch graph is triangle-free with minimum degree 3, so none of
    /// its vertices are (almost) simplicial and every block survives
    /// preprocessing intact.
    fn blocky_graph() -> Graph {
        let m = graphs::mycielski(3);
        let mn = m.num_vertices(); // 11
        let mut g = Graph::new(41);
        for (u, v) in m.edges() {
            g.add_edge(u, v);
        }
        // b glued on the clique-separator edge {0, 1} of a
        let bm: Vec<usize> = (0..mn)
            .map(|i| match i {
                0 => 0,
                1 => 1,
                k => 9 + k,
            })
            .collect();
        for (u, v) in m.edges() {
            g.add_edge(bm[u], bm[v]);
        }
        // c attached at the cut vertex 4
        let cm: Vec<usize> = (0..mn).map(|i| if i == 0 { 4 } else { 19 + i }).collect();
        for (u, v) in m.edges() {
            g.add_edge(cm[u], cm[v]);
        }
        // d: a disjoint component
        for (u, v) in m.edges() {
            g.add_edge(30 + u, 30 + v);
        }
        g
    }

    #[test]
    fn split_tw_matches_monolithic_bitwise() {
        let g = blocky_graph();
        let mono = bb_tw(&g, &cfg());
        for threads in [1, 2, 4] {
            let s = split_tw(&g, &cfg(), threads, None);
            assert!(s.result.exact && mono.exact);
            assert_eq!(s.result.upper_bound, mono.upper_bound, "threads {threads}");
            assert_eq!(s.result.ordering, mono.ordering, "threads {threads}");
            assert!(s.report.split);
            assert!(s.report.blocks.len() >= 3, "{:?}", s.report.blocks);
        }
    }

    #[test]
    fn split_tw_on_random_graphs_matches_widths() {
        for seed in 0..6u64 {
            let g = graphs::gnm_random(18, 30, seed);
            let mono = bb_tw(&g, &cfg());
            let s = split_tw(&g, &cfg(), 2, None);
            assert!(s.result.exact && mono.exact, "seed {seed}");
            assert_eq!(s.result.upper_bound, mono.upper_bound, "seed {seed}");
            assert_eq!(s.result.ordering, mono.ordering, "seed {seed}");
        }
    }

    #[test]
    fn stitched_ordering_realises_the_width() {
        // force the stitched path by exhausting the witness budget is
        // flaky; instead verify the stitch directly on an anytime-style
        // run: solve blocks, stitch, and evaluate
        let g = blocky_graph();
        let s = split_tw(&g, &cfg(), 1, None);
        let sigma = EliminationOrdering::new(s.result.ordering.clone().unwrap()).unwrap();
        let w = TwEvaluator::new(&g).width(&sigma);
        assert_eq!(w, s.result.upper_bound);
    }

    #[test]
    fn split_reports_separator_kinds() {
        let g = blocky_graph();
        let s = split_tw(&g, &cfg(), 1, None);
        let kinds: Vec<SeparatorKind> = s.report.blocks.iter().map(|b| b.kind).collect();
        assert!(kinds.contains(&SeparatorKind::CliqueSeparator), "{kinds:?}");
    }

    #[test]
    fn split_tw_fully_reduced_graphs() {
        let g = graphs::path(12);
        let mono = bb_tw(&g, &cfg());
        let s = split_tw(&g, &cfg(), 2, None);
        assert_eq!(s.result.upper_bound, 1);
        assert!(s.result.exact);
        assert_eq!(s.result.ordering, mono.ordering);
        assert!(s.report.eliminated > 0);
        assert!(s.report.rounds > 0);
    }

    #[test]
    fn split_tw_single_block_falls_back() {
        let g = graphs::queen(4);
        let mono = bb_tw(&g, &cfg());
        let s = split_tw(&g, &cfg(), 2, None);
        assert!(!s.report.split);
        assert_eq!(s.result.upper_bound, mono.upper_bound);
        assert_eq!(s.result.ordering, mono.ordering);
    }

    #[test]
    fn split_ghw_matches_monolithic_bitwise() {
        // two disjoint cycle hypergraphs plus an isolated edge
        let mut edges: Vec<Vec<usize>> = Vec::new();
        for c in 0..2 {
            let base = c * 5;
            for i in 0..5 {
                edges.push(vec![base + i, base + (i + 1) % 5]);
            }
        }
        edges.push(vec![10, 11, 12]);
        let h = Hypergraph::from_edges(13, edges);
        let gcfg = BbGhwConfig::default();
        let mono = bb_ghw(&h, &gcfg);
        for threads in [1, 2, 4] {
            let s = split_ghw(&h, &gcfg, threads, None);
            assert!(s.result.exact && mono.exact);
            assert_eq!(s.result.upper_bound, mono.upper_bound);
            assert_eq!(s.result.ordering, mono.ordering, "threads {threads}");
            assert!(s.report.split);
            assert!(s
                .report
                .blocks
                .iter()
                .any(|b| b.kind == SeparatorKind::IsolatedEdge));
        }
    }

    #[test]
    fn split_ghw_contained_edges_are_counted() {
        let h = Hypergraph::from_edges(
            6,
            [vec![0, 1, 2], vec![0, 1], vec![3, 4], vec![4, 5]],
        );
        let s = split_ghw(&h, &BbGhwConfig::default(), 1, None);
        assert_eq!(s.report.contained_edges, 1);
        assert!(s.result.exact);
    }

    #[test]
    fn split_respects_cancellation() {
        use crate::common::CancelToken;
        let token = CancelToken::arm();
        token.cancel();
        let mut c = cfg();
        c.limits = SearchLimits::unlimited().with_cancel(token);
        let g = blocky_graph();
        let s = split_tw(&g, &c, 2, None);
        // a pre-cancelled run stays sound: the emitted ordering realises
        // no more than the claimed upper bound
        let sigma = EliminationOrdering::new(s.result.ordering.clone().unwrap()).unwrap();
        let w = TwEvaluator::new(&g).width(&sigma);
        assert!(s.result.upper_bound >= s.result.lower_bound);
        assert!(w <= s.result.upper_bound, "{w} > {}", s.result.upper_bound);
    }

    #[test]
    fn peel_ordering_defers_the_separator() {
        // K4 on {0,1,2,3}: defer the clique {2,3}
        let mut g = Graph::new(4);
        for i in 0..4 {
            for j in i + 1..4 {
                g.add_edge(i, j);
            }
        }
        let out = peel_ordering(&g, &[0, 1, 2, 3], &[3, 2, 1, 0], &[2, 3]);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
    }
}
