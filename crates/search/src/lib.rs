//! Exact anytime algorithms for treewidth and generalized hypertree width:
//! branch and bound (§4.4, Ch 8) and A\* (Ch 5, Ch 9), with the reduction
//! and pruning rules of §4.4.3–§4.4.5 and §8.2–§8.3.
//!
//! All four searches walk the elimination-ordering tree (vertices eliminated
//! from the back of σ) over a single incrementally-maintained
//! [`ghd_hypergraph::EliminationGraph`], and are *anytime*: given a
//! [`SearchLimits`] budget they report the best upper bound found plus a
//! proven lower bound.

pub mod arena;
pub mod astar_ghw;
pub mod astar_tw;
pub mod bb_ghw;
pub mod bb_tw;
pub mod common;
pub mod interner;
pub mod preprocess;
pub mod queue;
pub mod rules;
pub mod sharded;
pub mod split;
pub mod steal;

pub use arena::WordArena;
pub use astar_ghw::astar_ghw;
pub use astar_tw::astar_tw;
pub use interner::StateInterner;
pub use queue::BucketQueue;
pub use sharded::ShardedInterner;
pub use steal::StealConfig;
pub use bb_ghw::{bb_ghw, bb_ghw_budgeted, bb_ghw_parallel, bb_ghw_parallel_rootsplit, witness_ghw, BbGhwConfig};
pub use bb_tw::{bb_tw, bb_tw_budgeted, bb_tw_parallel, bb_tw_parallel_rootsplit, witness_tw, BbConfig, LbMode};
pub use common::{
    Budget, CancelToken, IncumbentSample, PruneCounters, SearchLimits, SearchResult,
    SearchStats, StealCounters, Ticker,
};
pub use preprocess::{preprocess_tw, tw_with_preprocessing, Preprocessed};
pub use split::{
    split_ghw, split_tw, BlockOutcome, BlockSolution, BlockStore, SeparatorKind, SplitOutcome,
    SplitReport,
};
