//! Standalone preprocessing with the reduction rules of §4.4.3 (after
//! Bodlaender et al. \[8\]): repeatedly eliminate simplicial and strongly
//! almost simplicial vertices *before* any search. For such a vertex `v`,
//! `tw(G) = max(deg(v), tw(G'))` where `G'` is the graph after eliminating
//! `v`, so the search only ever sees the irreducible core.

use crate::rules::find_reduction_tw;
use ghd_bounds::lower::tw_lower_bound;
use ghd_hypergraph::{EliminationGraph, Graph};

/// The result of reduction preprocessing.
#[derive(Clone, Debug)]
pub struct Preprocessed {
    /// The irreducible core, reindexed to dense vertices `0..k`.
    pub core: Graph,
    /// `original_of_core[i]` = the original vertex index of core vertex `i`.
    pub original_of_core: Vec<usize>,
    /// Width contributed by the eliminated vertices: the treewidth of the
    /// original graph is `max(base_width, tw(core))`.
    pub base_width: usize,
    /// The eliminated vertices in elimination order (original indices).
    /// Appending them *behind* any elimination ordering of the core (in
    /// reverse) yields an ordering of the original graph: they are
    /// eliminated first.
    pub eliminated: Vec<usize>,
    /// Reduction rounds: loop iterations that eliminated at least one
    /// vertex (the final bulk flush counts as one round). Zero when the
    /// input was already irreducible.
    pub rounds: usize,
}

/// Exhaustively applies the simplicial / strongly-almost-simplicial
/// reductions (§4.4.3). The almost-simplicial degree threshold is the
/// combined treewidth lower bound of the original graph, as in BB-tw \[5\].
pub fn preprocess_tw(g: &Graph) -> Preprocessed {
    let lb = tw_lower_bound::<ghd_prng::rngs::StdRng>(g, None);
    let mut eg = EliminationGraph::new(g);
    let mut eliminated = Vec::new();
    let mut base_width = 0;
    let mut rounds = 0;
    while eg.num_alive() > 0 {
        // once few vertices remain, finishing here is exact
        if eg.num_alive() <= base_width.max(lb) + 1 {
            let rest = eg.alive().to_vec();
            for v in rest {
                base_width = base_width.max(eg.eliminate(v));
                eliminated.push(v);
            }
            rounds += 1;
            break;
        }
        match find_reduction_tw(&eg, lb.max(base_width)) {
            Some(v) => {
                base_width = base_width.max(eg.eliminate(v));
                eliminated.push(v);
                rounds += 1;
            }
            None => break,
        }
    }
    // compact the residual graph
    let original_of_core = eg.alive().to_vec();
    let mut new_of_old = vec![usize::MAX; g.num_vertices()];
    for (i, &v) in original_of_core.iter().enumerate() {
        new_of_old[v] = i;
    }
    let mut core = Graph::new(original_of_core.len());
    for &v in &original_of_core {
        for u in eg.neighbors(v).iter() {
            if u > v {
                core.add_edge(new_of_old[v], new_of_old[u]);
            }
        }
    }
    Preprocessed {
        core,
        original_of_core,
        base_width,
        eliminated,
        rounds,
    }
}

/// Treewidth with preprocessing: reduce, search only the core, combine.
pub fn tw_with_preprocessing(
    g: &Graph,
    limits: crate::common::SearchLimits,
) -> crate::common::SearchResult {
    let pre = preprocess_tw(g);
    if pre.core.num_vertices() == 0 {
        // fully reduced: the reductions alone were exact
        let mut ordering: Vec<usize> = pre.eliminated.clone();
        ordering.reverse(); // eliminated-first ⇒ back of σ
        return crate::common::SearchResult {
            upper_bound: pre.base_width,
            lower_bound: pre.base_width,
            exact: true,
            ordering: Some(ordering),
            nodes_expanded: 0,
            elapsed: std::time::Duration::ZERO,
            cover_cache: None,
            stats: None,
            faults: Vec::new(),
        };
    }
    let mut r = crate::astar_tw(&pre.core, limits);
    // lift core ordering to original indices and append eliminated suffix
    r.ordering = r.ordering.map(|core_order| {
        let mut order: Vec<usize> = core_order
            .into_iter()
            .map(|v| pre.original_of_core[v])
            .collect();
        order.extend(pre.eliminated.iter().rev());
        order
    });
    r.upper_bound = r.upper_bound.max(pre.base_width);
    r.lower_bound = r.lower_bound.max(if r.exact { r.upper_bound } else { 0 });
    if r.exact {
        r.lower_bound = r.upper_bound;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::SearchLimits;
    use crate::{astar_tw, bb_tw, BbConfig};
    use ghd_core::eval::TwEvaluator;
    use ghd_core::EliminationOrdering;
    use ghd_hypergraph::generators::graphs;

    #[test]
    fn trees_reduce_completely() {
        let g = graphs::path(20);
        let pre = preprocess_tw(&g);
        assert_eq!(pre.core.num_vertices(), 0);
        assert_eq!(pre.base_width, 1);
        let r = tw_with_preprocessing(&g, SearchLimits::unlimited());
        assert_eq!(r.width(), Some(1));
        // the assembled ordering must actually realise the width
        let sigma = EliminationOrdering::new(r.ordering.unwrap()).unwrap();
        assert_eq!(TwEvaluator::new(&g).width(&sigma), 1);
    }

    #[test]
    fn chordal_graphs_reduce_completely() {
        // complete graphs are chordal: everything is simplicial
        let g = graphs::complete(8);
        let pre = preprocess_tw(&g);
        assert_eq!(pre.core.num_vertices(), 0);
        assert_eq!(pre.base_width, 7);
    }

    #[test]
    fn grids_keep_an_irreducible_core_but_combine_correctly() {
        for n in 3..=5 {
            let g = graphs::grid(n);
            let r = tw_with_preprocessing(&g, SearchLimits::unlimited());
            assert!(r.exact);
            assert_eq!(r.upper_bound, n, "grid{n}");
        }
    }

    #[test]
    fn agrees_with_plain_search_on_random_graphs() {
        for seed in 0..8u64 {
            let g = graphs::gnm_random(14, 30, seed);
            let plain = astar_tw(&g, SearchLimits::unlimited());
            let pre = tw_with_preprocessing(&g, SearchLimits::unlimited());
            assert!(plain.exact && pre.exact);
            assert_eq!(plain.upper_bound, pre.upper_bound, "seed {seed}");
            // orderings lift correctly
            let sigma = EliminationOrdering::new(pre.ordering.unwrap()).unwrap();
            let w = TwEvaluator::new(&g).width(&sigma);
            assert_eq!(w, pre.upper_bound, "seed {seed}");
        }
    }

    #[test]
    fn preprocessing_only_shrinks() {
        let g = graphs::queen(5);
        let pre = preprocess_tw(&g);
        assert!(pre.core.num_vertices() <= g.num_vertices());
        assert_eq!(
            pre.core.num_vertices() + pre.eliminated.len(),
            g.num_vertices()
        );
        // the combined answer still matches plain BB
        let r = tw_with_preprocessing(&g, SearchLimits::unlimited());
        let b = bb_tw(&g, &BbConfig::default());
        assert_eq!(r.upper_bound, b.upper_bound);
    }
}
