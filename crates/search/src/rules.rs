//! Reduction rules (§4.4.3) and pruning rule 2 (§4.4.5) shared by the
//! branch-and-bound and A\* searches.

use ghd_hypergraph::{BitSet, EliminationGraph};

/// Finds a vertex that may be eliminated next without loss of optimality for
/// treewidth: a *simplicial* vertex (Definition 22), or a *strongly almost
/// simplicial* vertex (Definition 24) — almost simplicial with degree not
/// exceeding the current treewidth lower bound `lb`.
pub fn find_reduction_tw(eg: &EliminationGraph, lb: usize) -> Option<usize> {
    let mut almost: Option<usize> = None;
    for v in eg.alive().iter() {
        if eg.is_simplicial(v) {
            return Some(v);
        }
        if almost.is_none() && eg.degree(v) <= lb && eg.is_almost_simplicial(v) {
            almost = Some(v);
        }
    }
    almost
}

/// Finds a simplicial vertex (the reduction retained for the GHW searches,
/// §8.2: the clique `N[v]` appears in some bag of every decomposition, so
/// eliminating `v` first cannot hurt).
pub fn find_simplicial(eg: &EliminationGraph) -> Option<usize> {
    eg.alive().iter().find(|&v| eg.is_simplicial(v))
}

/// Pruning rule 2 (§4.4.5), evaluated in the graph *before* either vertex is
/// eliminated: `a` and `b` are swap-equivalent if they are non-adjacent, or
/// adjacent while each has another (alive) neighbour that is not a neighbour
/// of the other. Swapping two such consecutive vertices leaves the width of
/// the ordering unchanged, so only one interleaving needs exploration.
pub fn swappable_tw(eg: &EliminationGraph, a: usize, b: usize) -> bool {
    debug_assert!(eg.is_alive(a) && eg.is_alive(b) && a != b);
    if !eg.has_edge(a, b) {
        return true;
    }
    let mut na = eg.neighbors(a).clone();
    na.remove(b);
    let mut nb = eg.neighbors(b).clone();
    nb.remove(a);
    !nb_minus_is_empty(&na, &nb) && !nb_minus_is_empty(&nb, &na)
}

fn nb_minus_is_empty(x: &BitSet, y: &BitSet) -> bool {
    x.difference_len(y) == 0
}

/// The GHW-safe restriction of pruning rule 2 (§8.3): only the non-adjacent
/// case. When `a` and `b` are non-adjacent, eliminating them in either order
/// produces *identical* bags, hence identical set covers and identical GHD
/// widths. (The adjacent case of PR2 only preserves maximum bag
/// *cardinality*, which suffices for treewidth but not for cover sizes.)
pub fn swappable_ghw(eg: &EliminationGraph, a: usize, b: usize) -> bool {
    debug_assert!(eg.is_alive(a) && eg.is_alive(b) && a != b);
    !eg.has_edge(a, b)
}

/// Computes, for the child state reached by eliminating `a` from the current
/// graph, the set of grandchild vertices *not* pruned by PR2. The canonical
/// survivor among a swappable pair is the branch eliminating the
/// smaller-indexed vertex first: `b` (eliminated right after `a`) is pruned
/// iff `swappable(a, b)` and `b < a`.
pub fn pr2_allowed_children(
    eg: &EliminationGraph,
    a: usize,
    swappable: impl Fn(&EliminationGraph, usize, usize) -> bool,
) -> BitSet {
    let mut allowed = eg.alive().clone();
    allowed.remove(a);
    let candidates = allowed.clone();
    for b in candidates.iter() {
        if b < a && swappable(eg, a, b) {
            allowed.remove(b);
        }
    }
    allowed
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghd_hypergraph::Graph;

    #[test]
    fn simplicial_reduction_found() {
        // triangle + pendant: pendant (3) and all triangle vertices... vertex
        // 3 has a single neighbour → simplicial; 1, 2 are simplicial too.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3)]);
        let eg = EliminationGraph::new(&g);
        assert!(find_reduction_tw(&eg, 0).is_some());
        assert!(find_simplicial(&eg).is_some());
    }

    #[test]
    fn strongly_almost_simplicial_requires_degree_bound() {
        // C4: every vertex is almost simplicial (deg 2), none simplicial.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let eg = EliminationGraph::new(&g);
        assert_eq!(find_simplicial(&eg), None);
        assert_eq!(find_reduction_tw(&eg, 1), None); // degree 2 > lb 1
        assert!(find_reduction_tw(&eg, 2).is_some());
    }

    #[test]
    fn pr2_nonadjacent_always_swappable() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let eg = EliminationGraph::new(&g);
        assert!(swappable_tw(&eg, 0, 2));
        assert!(swappable_ghw(&eg, 0, 2));
        assert!(!swappable_ghw(&eg, 0, 1)); // adjacent → not ghw-swappable
    }

    #[test]
    fn pr2_adjacent_case_needs_private_neighbours() {
        // a-b adjacent; a has private neighbour x, b has private neighbour y
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 3)]);
        let eg = EliminationGraph::new(&g);
        assert!(swappable_tw(&eg, 0, 1));
        // a-b adjacent, shared neighbour only → not swappable
        let g2 = Graph::from_edges(3, [(0, 1), (0, 2), (1, 2)]);
        let eg2 = EliminationGraph::new(&g2);
        assert!(!swappable_tw(&eg2, 0, 1));
    }

    #[test]
    fn pr2_allowed_prunes_smaller_swappable_indices() {
        // path 0-1-2-3: after eliminating 2, vertex 0 (non-adjacent to 2,
        // index < 2) is pruned; 1 and 3 are adjacent to 2 in the original
        // graph — 1 remains (adjacent, no private-neighbour pair check
        // passes? 1's other neighbour is 0, 2's other neighbour is 3 →
        // swappable, and 1 < 2 → pruned), 3 > 2 stays.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let eg = EliminationGraph::new(&g);
        let allowed = pr2_allowed_children(&eg, 2, swappable_tw);
        assert!(allowed.contains(3));
        assert!(!allowed.contains(0));
        assert!(!allowed.contains(1));
    }
}
