//! Algorithm BB-ghw (Chapter 8, Fig 8.3): branch and bound over elimination
//! orderings for the generalized hypertree width, justified by Theorem 3
//! (some ordering attains `ghw` under exact set covering).
//!
//! Per state the cost is the largest *exact* set cover of a bucket bag so
//! far; the heuristic is tw-ksc-width (Fig 8.1) on the residual graph; the
//! reductions of §8.2 (simplicial vertices) and the GHW-safe part of pruning
//! rule 2 (§8.3, non-adjacent swaps) shrink the tree, and the GHW analogue
//! of PR1 closes subtrees whose residual vertex set is already coverable
//! within the current cost.

use crate::common::{
    anytime_lb, complete_ordering, Budget, IncumbentSample, SearchLimits, SearchResult,
    SearchStats, StealCounters, Telemetry, Ticker,
};
use crate::interner::StateInterner;
use crate::rules::{find_simplicial, pr2_allowed_children, swappable_ghw};
use crate::sharded::ShardedInterner;
use crate::steal::{Scheduler, StealConfig};
use ghd_bounds::ksc::KscTable;
use ghd_bounds::lower::{tw_lower_bound_elim, LbScratch};
use ghd_bounds::upper::ghw_upper_bound;
use ghd_core::setcover::{
    exact_cover_size_capped, greedy_cover_size, CacheStats, CoverCache, CoverMethod,
    StripedCoverCache,
};
use ghd_hypergraph::{BitSet, EliminationGraph, Graph, Hypergraph};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configuration for [`bb_ghw`].
#[derive(Clone, Debug)]
pub struct BbGhwConfig {
    /// Resource limits (global per run — parallel workers share them).
    pub limits: SearchLimits,
    /// Apply the simplicial-vertex reduction (§8.2).
    pub use_reductions: bool,
    /// Apply the non-adjacent-swap pruning rule (§8.3).
    pub use_pr2: bool,
    /// Bag cover solver. Exactness of the search requires
    /// [`CoverMethod::Exact`] (Theorem 3); `Greedy` turns this into a fast
    /// upper-bound heuristic.
    pub cover: CoverMethod,
    /// Memoize per-bag covers in a [`CoverCache`]. The cache stores only
    /// proven facts, so results are identical on/off; permutation-heavy
    /// search trees revisit bags constantly and hit rates are high.
    pub use_cover_cache: bool,
    /// Work-stealing runtime knobs ([`bb_ghw_parallel`] only; sequential
    /// runs and the root-split baseline ignore it).
    pub steal: StealConfig,
}

impl Default for BbGhwConfig {
    fn default() -> Self {
        BbGhwConfig {
            limits: SearchLimits::unlimited(),
            use_reductions: true,
            use_pr2: true,
            cover: CoverMethod::Exact,
            use_cover_cache: true,
            steal: StealConfig::default(),
        }
    }
}

/// Residual lower bound: treewidth bound on the current graph lifted through
/// the k-set-cover bound (Fig 8.1). Computes the same value as
/// `tw_ksc_width(h, &eg.to_graph(), tw_lower_bound(&eg.to_graph(), None))`
/// without materialising the residual graph: the treewidth bound runs
/// directly on the elimination graph through `scratch`, and the k-set-cover
/// answer comes from the precomputed prefix-sum table.
pub(crate) fn residual_ghw_lb(
    eg: &EliminationGraph,
    scratch: &mut LbScratch,
    ksc: &KscTable,
) -> usize {
    if eg.num_alive() == 0 {
        return 0;
    }
    let tw_lb = tw_lower_bound_elim::<ghd_prng::rngs::StdRng>(eg, None, scratch);
    ksc.bound(tw_lb + 1)
}

/// Interns `key` into the worker's shard; `None` (with the sticky overflow
/// flag raised) when the shard's id space is exhausted. Free function so it
/// can borrow the interner while the caller holds `&mut` to the cache.
fn try_intern_key(
    interner: &mut Option<StateInterner>,
    overflow: &mut bool,
    key: &[u64],
) -> Option<u32> {
    match interner
        .as_mut()
        .expect("interner accompanies the cache")
        .try_intern(key)
    {
        Some((id, _)) => Some(id),
        None => {
            *overflow = true;
            None
        }
    }
}

struct Dfs<'a> {
    h: &'a Hypergraph,
    covered: BitSet,
    eg: EliminationGraph,
    cfg: &'a BbGhwConfig,
    ticker: Ticker<'a>,
    ub: usize,
    best_suffix: Vec<usize>,
    suffix: Vec<usize>,
    root_lb: usize,
    bag_scratch: BitSet,
    /// Scratch for the goal-test target (`alive ∩ covered`).
    target_scratch: BitSet,
    /// Reusable buffers for the residual treewidth lower bound.
    lb_scratch: LbScratch,
    /// Prefix-sum table answering k-set-cover queries for `h`.
    ksc: &'a KscTable,
    /// Set when a capped cover exhausted its budget: the result may no
    /// longer be proven optimal.
    degraded: bool,
    /// Set when the interner shard refused a fresh key because its
    /// worker-local id space (`2^LOCAL_BITS` states, shrinkable in tests)
    /// is exhausted. A checked condition in every build mode: instead of
    /// wrapping ids into another worker's range, this worker folds its
    /// remaining work into the expiry floor — exactly like a second fault —
    /// so bounds stay sound and `exact` is withdrawn.
    interner_overflow: bool,
    /// Transposition cache for per-bag covers (None = disabled).
    cache: Option<CoverCache>,
    /// Hash-consed canonical ids for the cache's target bitsets; present iff
    /// `cache` is. Keys route the cache onto its dense array store, so the
    /// interner and the cache share one canonical copy of each target.
    interner: Option<StateInterner>,
    /// Incumbent upper bound shared between root-split workers. `None` in
    /// sequential mode. Improvements are published with `fetch_min`; every
    /// expansion syncs `self.ub` down to the global value, so one worker's
    /// discovery prunes all the others.
    shared_ub: Option<&'a AtomicUsize>,
    /// Best width *this* search proved with a concrete suffix (`usize::MAX`
    /// until the first improvement). Distinguishes "I found it" from "a
    /// sibling worker's bound tightened my `ub`".
    found: usize,
    /// Minimum f-value over the open frontier left behind on expiry
    /// (`usize::MAX` while none). Sound as a lower-bound component only when
    /// covers stayed exact and undegraded — with `CoverMethod::Greedy` or a
    /// capped-out cover, g overestimates and f is no longer a true bound.
    expiry_floor: usize,
    /// Telemetry collector (no-op unless `limits.collect_stats`).
    telemetry: Telemetry,
    /// Shared striped cover cache (work-stealing mode): exact bag covers go
    /// through it so every worker reuses every other worker's proven facts.
    /// `None` in sequential and root-split modes.
    shared_cache: Option<&'a StripedCoverCache>,
    /// This worker's hit/miss attribution of `shared_cache` queries.
    shared_cache_stats: CacheStats,
    /// Work-stealing scheduler (work-stealing mode): children above the
    /// depth cutoff are published as stealable tasks instead of searched
    /// inline. `None` everywhere else.
    sched: Option<&'a Scheduler>,
    /// This worker's index (deque owner id; 0 in sequential mode).
    worker: usize,
    /// Publish children while `eg.depth() <= steal_depth`.
    steal_depth: usize,
    /// Subproblems this search published onto its deque.
    published: u64,
    /// Witness-reconstruction mode: stop the search at the first
    /// improvement (used by the deterministic ordering rebuild, which runs
    /// with `ub = w* + 1` so the first improvement *is* the DFS-first state
    /// of width `w*` — exactly the state whose suffix the sequential search
    /// reports last).
    stop_at_first: bool,
    /// Set once `stop_at_first` triggered; unwinds the search as success.
    stopped: bool,
}

impl<'a> Dfs<'a> {
    /// A search over `h` in the default sequential shape; callers override
    /// the sharing/scheduling fields for the parallel modes.
    #[allow(clippy::too_many_arguments)]
    fn new(
        h: &'a Hypergraph,
        cfg: &'a BbGhwConfig,
        primal: &Graph,
        covered: &BitSet,
        ticker: Ticker<'a>,
        ub: usize,
        root_lb: usize,
        ksc: &'a KscTable,
    ) -> Self {
        let n = h.num_vertices();
        Dfs {
            h,
            covered: covered.clone(),
            eg: EliminationGraph::new(primal),
            cfg,
            ticker,
            ub,
            best_suffix: Vec::new(),
            suffix: Vec::new(),
            root_lb,
            bag_scratch: BitSet::new(n),
            target_scratch: BitSet::new(n),
            lb_scratch: LbScratch::new(),
            ksc,
            degraded: false,
            interner_overflow: false,
            cache: cfg.use_cover_cache.then(CoverCache::new),
            interner: cfg.use_cover_cache.then(|| StateInterner::for_vertices(n)),
            shared_ub: None,
            found: usize::MAX,
            expiry_floor: usize::MAX,
            telemetry: Telemetry::new(cfg.limits.collect_stats),
            shared_cache: None,
            shared_cache_stats: CacheStats::default(),
            sched: None,
            worker: 0,
            steal_depth: 0,
            published: 0,
            stop_at_first: false,
            stopped: false,
        }
    }
    /// Cover size of `self.bag_scratch` (already restricted to covered
    /// vertices), capped at the incumbent: any value ≥ `ub` prunes the child
    /// identically, so `min(true size, ub)` is all the search needs — and
    /// the cap prunes the set-cover branch and bound enormously. The second
    /// component is `false` iff the cover search exhausted its internal
    /// budget and the size is only an upper estimate.
    fn bag_cover(&mut self) -> (usize, bool) {
        if self.cfg.cover == CoverMethod::Exact {
            if let Some(shared) = self.shared_cache {
                // Work-stealing mode: exact facts go through the striped
                // shared store so workers reuse each other's covers. Hits
                // and misses are attributed to this worker.
                let (s, ok, hit) = shared.exact_cover_size_capped(&self.bag_scratch, self.h, self.ub);
                if hit {
                    self.shared_cache_stats.hits += 1;
                } else {
                    self.shared_cache_stats.misses += 1;
                }
                return (s, ok);
            }
        }
        match (self.cfg.cover, self.cache.as_mut()) {
            (CoverMethod::Exact, Some(c)) => {
                match try_intern_key(&mut self.interner, &mut self.interner_overflow, self.bag_scratch.blocks()) {
                    Some(key) => {
                        c.exact_cover_size_capped_interned(key, &self.bag_scratch, self.h, self.ub)
                    }
                    // shard id space exhausted: compute uncached — the
                    // value is identical, and `search` degrades this
                    // worker at its next node
                    None => exact_cover_size_capped(&self.bag_scratch, self.h, self.ub),
                }
            }
            (CoverMethod::Exact, None) => {
                exact_cover_size_capped(&self.bag_scratch, self.h, self.ub)
            }
            (CoverMethod::Greedy, Some(c)) => {
                match try_intern_key(&mut self.interner, &mut self.interner_overflow, self.bag_scratch.blocks()) {
                    Some(key) => {
                        (c.greedy_cover_size_interned(key, &self.bag_scratch, self.h), true)
                    }
                    None => (
                        greedy_cover_size::<ghd_prng::rngs::StdRng>(&self.bag_scratch, self.h, None),
                        true,
                    ),
                }
            }
            (CoverMethod::Greedy, None) => (
                greedy_cover_size::<ghd_prng::rngs::StdRng>(&self.bag_scratch, self.h, None),
                true,
            ),
        }
    }

    /// Records a width improvement discovered by this search.
    fn improve(&mut self, w: usize) {
        self.ub = w;
        self.found = w;
        self.best_suffix = self.suffix.clone();
        if self.stop_at_first {
            self.stopped = true;
        }
        if let Some(s) = self.shared_ub {
            s.fetch_min(w, Ordering::Relaxed);
        }
        if self.telemetry.on() {
            let (elapsed, lb) = (self.ticker.elapsed(), self.root_lb.min(w));
            self.telemetry.sample(elapsed, w, lb);
        }
    }

    /// Whether the child just eliminated (depth = `eg.depth()`) should be
    /// offered to the scheduler instead of searched inline.
    #[inline]
    fn can_publish(&self) -> bool {
        self.sched.is_some() && self.eg.depth() <= self.steal_depth
    }

    /// Publishes the current state (the elimination prefix in `suffix`) as
    /// a stealable task; `false` when the deque is full and the caller
    /// should search inline.
    fn publish_child(&mut self, g: usize, f: usize) -> bool {
        let sched = self.sched.expect("checked by can_publish");
        if sched.publish(self.worker, &self.suffix, g, f) {
            self.published += 1;
            true
        } else {
            false
        }
    }

    fn search(&mut self, g: usize, f: usize, allowed: Option<&BitSet>) -> bool {
        if !self.ticker.tick() {
            // this node stays open: its f joins the expiry floor
            self.expiry_floor = self.expiry_floor.min(f);
            return false;
        }
        if self.interner_overflow {
            // the shard's id space is exhausted (checked, never wrapped):
            // abandon this worker's remaining work like a second fault —
            // every abandoned node's f joins the expiry floor, so the
            // anytime bounds stay sound while `exact` is withdrawn
            self.expiry_floor = self.expiry_floor.min(f);
            return false;
        }
        if let Some(s) = self.shared_ub {
            self.ub = self.ub.min(s.load(Ordering::Relaxed));
        }
        // PR1 analogue: any completion's bags sit inside the alive set, so
        // its exact-cover width is ≤ cover(alive); greedy gives a safe bound.
        if self.eg.num_alive() == 0 {
            if g < self.ub {
                self.improve(g.max(1));
            }
            return true;
        }
        let alive_cover = {
            self.target_scratch.copy_from(self.eg.alive());
            self.target_scratch.intersect_with(&self.covered);
            match self.cache.as_mut() {
                // identical value to the uncached call: the cache memoizes
                // the same deterministic first-maximum greedy
                Some(c) => match try_intern_key(
                    &mut self.interner,
                    &mut self.interner_overflow,
                    self.target_scratch.blocks(),
                ) {
                    Some(key) => c.greedy_cover_size_interned(key, &self.target_scratch, self.h),
                    None => greedy_cover_size::<ghd_prng::rngs::StdRng>(
                        &self.target_scratch,
                        self.h,
                        None,
                    ),
                },
                None => {
                    greedy_cover_size::<ghd_prng::rngs::StdRng>(&self.target_scratch, self.h, None)
                }
            }
        };
        let w = g.max(alive_cover);
        if w < self.ub {
            self.improve(w);
            if self.stopped {
                return true;
            }
        }
        if alive_cover <= g {
            self.telemetry.prune(|p| p.pr1_closures += 1);
            return true; // completing in any order already achieves g
        }

        let forced = if self.cfg.use_reductions {
            find_simplicial(&self.eg)
        } else {
            None
        };
        if forced.is_some() {
            self.telemetry.prune(|p| p.simplicial += 1);
        }
        let mut children: Vec<usize> = match forced {
            Some(v) => vec![v],
            None => match allowed {
                Some(set) => {
                    if self.telemetry.on() {
                        let cut = self.eg.num_alive().saturating_sub(set.len()) as u64;
                        self.telemetry.prune(|p| p.pr2_filtered += cut);
                    }
                    set.iter().collect()
                }
                None => self.eg.alive().to_vec(),
            },
        };
        children.sort_by_key(|&v| self.eg.degree(v));

        let last = children.len();
        for (i, &v) in children.iter().enumerate() {
            let grandchildren = if self.cfg.use_pr2 && forced.is_none() {
                Some(pr2_allowed_children(&self.eg, v, swappable_ghw))
            } else {
                None
            };
            // vertices in no hyperedge are unconstrained and need no cover
            // support, so the bag is restricted to the covered set up front
            self.bag_scratch.copy_from(self.eg.neighbors(v));
            self.bag_scratch.insert(v);
            self.bag_scratch.intersect_with(&self.covered);
            let (k, cover_exact) = self.bag_cover();
            if !cover_exact {
                self.degraded = true;
                self.telemetry.prune(|p| p.capped_covers += 1);
            }
            self.eg.eliminate(v);
            self.suffix.push(v);
            let child_g = g.max(k);
            let mut child_f = child_g.max(f);
            if child_f < self.ub {
                child_f =
                    child_f.max(residual_ghw_lb(&self.eg, &mut self.lb_scratch, self.ksc));
            }
            let ok = if child_f < self.ub {
                if self.can_publish() && self.publish_child(child_g, child_f) {
                    true // the scheduler owns the subtree now
                } else {
                    self.search(child_g, child_f, grandchildren.as_ref())
                }
            } else {
                self.telemetry.prune(|p| p.f_prunes += 1);
                true
            };
            self.suffix.pop();
            self.eg.restore();
            if !ok {
                if i + 1 < last {
                    // unvisited siblings remain open; each has f ≥ this f
                    self.expiry_floor = self.expiry_floor.min(f);
                }
                return false;
            }
            if self.stopped {
                return true;
            }
        }
        true
    }
}

/// Executes one stolen/popped task on a worker's persistent [`Dfs`]: syncs
/// the incumbent, replays the elimination prefix, recomputes the parent's
/// PR2 filter for the final prefix vertex exactly as the inline child
/// expansion would have, searches the subtree, and restores the state.
/// Returns `false` iff the budget expired inside (the task's `f` has then
/// been folded into the expiry floor by the failed tick).
fn run_steal_task(dfs: &mut Dfs<'_>, prefix: &[u32], g: usize, f: usize) -> bool {
    if let Some(s) = dfs.shared_ub {
        dfs.ub = dfs.ub.min(s.load(Ordering::Relaxed));
    }
    if f >= dfs.ub {
        // the subtree cannot beat the incumbent any more
        dfs.telemetry.prune(|p| p.f_prunes += 1);
        return true;
    }
    debug_assert_eq!(dfs.eg.depth(), 0, "worker state fully restored between tasks");
    if prefix.is_empty() {
        // the seed task: the root expansion itself
        return dfs.search(g, f, None);
    }
    for &u in &prefix[..prefix.len() - 1] {
        dfs.eg.eliminate(u as usize);
        dfs.suffix.push(u as usize);
    }
    let v = *prefix.last().unwrap() as usize;
    let forced = if dfs.cfg.use_reductions {
        find_simplicial(&dfs.eg)
    } else {
        None
    };
    let grandchildren = if dfs.cfg.use_pr2 && forced.is_none() {
        Some(pr2_allowed_children(&dfs.eg, v, swappable_ghw))
    } else {
        None
    };
    dfs.eg.eliminate(v);
    dfs.suffix.push(v);
    let ok = dfs.search(g, f, grandchildren.as_ref());
    for _ in 0..prefix.len() {
        dfs.suffix.pop();
        dfs.eg.restore();
    }
    ok
}

/// The anytime lower bound of a truncated BB-ghw run: the expiry floor is
/// only a valid bound while every bag cover was exact and undegraded.
fn ghw_anytime_lb(
    root_lb: usize,
    expiry_floor: usize,
    ub: usize,
    cover: CoverMethod,
    degraded: bool,
) -> usize {
    if cover == CoverMethod::Exact && !degraded {
        anytime_lb(root_lb, expiry_floor, ub)
    } else {
        root_lb.min(ub)
    }
}

/// Computes the generalized hypertree width of `h` by branch and bound
/// (Fig 8.3). With [`CoverMethod::Exact`] and no limits the result is exact;
/// anytime otherwise — on expiry the lower bound keeps the minimum f-value
/// proven over the unexplored frontier rather than collapsing to the root
/// heuristic.
pub fn bb_ghw(h: &Hypergraph, cfg: &BbGhwConfig) -> SearchResult {
    let budget = Budget::new(&cfg.limits);
    bb_ghw_budgeted(h, cfg, &budget)
}

/// [`bb_ghw`] drawing on an externally owned [`Budget`]: the split layer
/// solves many blocks against one shared deadline / node pool / cancel
/// token, so the budget must outlive any single search. `elapsed` in the
/// result is measured from the budget's creation, not this call.
pub fn bb_ghw_budgeted(h: &Hypergraph, cfg: &BbGhwConfig, budget: &Budget) -> SearchResult {
    let n = h.num_vertices();
    let root_lb = ghd_bounds::ksc::ghw_lower_bound::<ghd_prng::rngs::StdRng>(h, None);
    let (ub, ub_order) = ghw_upper_bound::<ghd_prng::rngs::StdRng>(h, None);
    let mut telemetry = Telemetry::new(cfg.limits.collect_stats);
    telemetry.sample(budget.elapsed(), ub, root_lb.min(ub));
    if root_lb >= ub || n <= 1 {
        return SearchResult {
            upper_bound: ub,
            lower_bound: ub,
            exact: true,
            ordering: Some(ub_order.into_vec()),
            nodes_expanded: 0,
            elapsed: budget.elapsed(),
            cover_cache: None,
            stats: telemetry.finish(),
            faults: Vec::new(),
        };
    }
    let primal = h.primal_graph();
    let covered = h.covered_vertices();
    let ksc = KscTable::new(h);
    let mut dfs = Dfs::new(h, cfg, &primal, &covered, budget.worker(), ub, root_lb, &ksc);
    dfs.telemetry = telemetry;
    let completed = dfs.search(0, root_lb, None);
    let ordering = Some(complete_ordering(n, &dfs.best_suffix, ub_order.into_vec()));
    let exact =
        (completed && cfg.cover == CoverMethod::Exact && !dfs.degraded) || root_lb >= dfs.ub;
    let lower_bound = if exact {
        dfs.ub
    } else if completed {
        root_lb.min(dfs.ub)
    } else {
        ghw_anytime_lb(root_lb, dfs.expiry_floor, dfs.ub, cfg.cover, dfs.degraded)
    };
    let cover_cache = dfs.cache.as_ref().map(|c| c.stats());
    let mut telemetry = dfs.telemetry;
    if let Some(s) = cover_cache {
        telemetry.cache(s);
    }
    let overflow = dfs.interner_overflow;
    telemetry.note(|s| s.interner_overflow |= overflow);
    telemetry.sample(budget.elapsed(), dfs.ub, lower_bound);
    SearchResult {
        upper_bound: dfs.ub,
        lower_bound,
        exact,
        ordering,
        nodes_expanded: dfs.ticker.nodes(),
        elapsed: budget.elapsed(),
        cover_cache,
        stats: telemetry.finish(),
        faults: Vec::new(),
    }
}

/// Reconstructs the canonical sequential witness ordering for a *proven*
/// ghw: reruns the sequential DFS with `ub = width + 1`, stopping at the
/// first improvement — the determinism idiom of [`bb_ghw_parallel`],
/// exposed for the split layer so divide-and-conquer results are
/// bit-identical to the monolithic sequential search.
///
/// Returns the ordering plus the nodes the reconstruction expanded; the
/// ordering is `None` if the budget expired before a witness was found.
pub fn witness_ghw(
    h: &Hypergraph,
    width: usize,
    cfg: &BbGhwConfig,
    budget: &Budget,
) -> (Option<Vec<usize>>, u64) {
    let n = h.num_vertices();
    let root_lb = ghd_bounds::ksc::ghw_lower_bound::<ghd_prng::rngs::StdRng>(h, None);
    let (ub, ub_order) = ghw_upper_bound::<ghd_prng::rngs::StdRng>(h, None);
    if n <= 1 || width >= ub {
        return (Some(ub_order.into_vec()), 0);
    }
    let primal = h.primal_graph();
    let covered = h.covered_vertices();
    let ksc = KscTable::new(h);
    let mut dfs = Dfs::new(
        h,
        cfg,
        &primal,
        &covered,
        budget.worker(),
        width + 1,
        root_lb,
        &ksc,
    );
    dfs.stop_at_first = true;
    dfs.search(0, root_lb, None);
    let nodes = dfs.ticker.nodes();
    if dfs.found == width {
        (
            Some(complete_ordering(n, &dfs.best_suffix, ub_order.into_vec())),
            nodes,
        )
    } else {
        (None, nodes)
    }
}

/// The PR 4 root-split parallel baseline, kept for benchmarking against
/// the work-stealing runtime of [`bb_ghw_parallel`]: the root's elimination
/// choices are split one-shot across up to `threads` workers (`0` = all
/// cores), which share the incumbent upper bound and one [`Budget`] but run
/// strictly sequentially below their root child — an unbalanced subtree
/// serialises the run, which is exactly what work stealing fixes.
///
/// The merged [`SearchResult::cover_cache`] sums the `hits`/`misses`/
/// `evictions` counters and reports the **maximum** `entries` gauge; the
/// per-worker stats are kept verbatim in [`SearchStats::worker_caches`]
/// when telemetry is on.
///
/// **Fault containment:** root-split tasks run `catch_unwind`-wrapped; a
/// panicking worker becomes a [`ghd_par::WorkerFault`] in
/// [`SearchResult::faults`], its budget credits return to the shared pool,
/// and the task is retried once on the caller thread (persistent panics
/// degrade to `exact == false` with the root heuristic as lower bound).
pub fn bb_ghw_parallel_rootsplit(h: &Hypergraph, cfg: &BbGhwConfig, threads: usize) -> SearchResult {
    let n = h.num_vertices();
    let budget = Budget::new(&cfg.limits);
    let root_lb = ghd_bounds::ksc::ghw_lower_bound::<ghd_prng::rngs::StdRng>(h, None);
    let (ub, ub_order) = ghw_upper_bound::<ghd_prng::rngs::StdRng>(h, None);
    let mut root_tel = Telemetry::new(cfg.limits.collect_stats);
    root_tel.sample(budget.elapsed(), ub, root_lb.min(ub));
    if root_lb >= ub || n <= 1 {
        return SearchResult {
            upper_bound: ub,
            lower_bound: ub,
            exact: true,
            ordering: Some(ub_order.into_vec()),
            nodes_expanded: 0,
            elapsed: budget.elapsed(),
            cover_cache: None,
            stats: root_tel.finish(),
            faults: Vec::new(),
        };
    }
    let primal = h.primal_graph();
    let covered = h.covered_vertices();
    // root children exactly as the sequential root expansion orders them
    let eg = EliminationGraph::new(&primal);
    let forced = if cfg.use_reductions {
        find_simplicial(&eg)
    } else {
        None
    };
    let mut children: Vec<usize> = match forced {
        Some(v) => vec![v],
        None => eg.alive().to_vec(),
    };
    children.sort_by_key(|&v| eg.degree(v));
    drop(eg);

    let incumbent = AtomicUsize::new(ub);
    struct WorkerOutcome {
        completed: bool,
        found: usize,
        best_suffix: Vec<usize>,
        nodes: u64,
        degraded: bool,
        expiry_floor: usize,
        cache: Option<CacheStats>,
        stats: Option<SearchStats>,
    }
    let ksc = KscTable::new(h);
    let run_task = |&v: &usize| {
        let mut allowed = BitSet::new(n);
        allowed.insert(v);
        let mut dfs = Dfs::new(h, cfg, &primal, &covered, budget.worker(), ub, root_lb, &ksc);
        dfs.shared_ub = Some(&incumbent);
        let completed = dfs.search(0, root_lb, Some(&allowed));
        let cache = dfs.cache.as_ref().map(|c| c.stats());
        let mut telemetry = dfs.telemetry;
        if let Some(s) = cache {
            telemetry.cache(s);
        }
        WorkerOutcome {
            completed,
            found: dfs.found,
            best_suffix: dfs.best_suffix,
            nodes: dfs.ticker.nodes(),
            degraded: dfs.degraded,
            expiry_floor: dfs.expiry_floor,
            cache,
            stats: telemetry.finish(),
        }
    };
    let contained = ghd_par::parallel_map_contained(&children, threads, run_task);
    let mut faults = contained.faults;
    // Retry each faulted task once on the caller thread (injected kills are
    // one-shot, so exactness survives a dead worker); a second panic
    // degrades the result soundly instead of aborting the process.
    let outcomes: Vec<WorkerOutcome> = contained
        .results
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| {
                match ghd_par::run_contained(ghd_par::RETRY_WORKER, i, || run_task(&children[i])) {
                    Ok(o) => o,
                    Err(second) => {
                        faults.push(second);
                        WorkerOutcome {
                            completed: false,
                            found: usize::MAX,
                            best_suffix: Vec::new(),
                            nodes: 0,
                            degraded: false,
                            expiry_floor: root_lb,
                            cache: None,
                            stats: None,
                        }
                    }
                }
            })
        })
        .collect();
    faults.sort_by_key(|f| f.task);

    // aggregate: best proven width wins, first worker breaks ties
    let mut best_ub = ub;
    let mut best_suffix: Vec<usize> = Vec::new();
    let mut nodes = 0u64;
    let mut completed = true;
    let mut degraded = false;
    let mut expiry_floor = usize::MAX;
    let mut cache_total: Option<CacheStats> = None;
    let mut worker_stats: Vec<SearchStats> = Vec::new();
    for o in outcomes {
        if o.found < best_ub {
            best_ub = o.found;
            best_suffix = o.best_suffix;
        }
        nodes += o.nodes;
        completed &= o.completed;
        degraded |= o.degraded;
        expiry_floor = expiry_floor.min(o.expiry_floor);
        if let Some(s) = o.cache {
            // hits/misses/evictions are counters and sum; `entries` is a
            // gauge and takes the max (per-worker values live in
            // `SearchStats::worker_caches`)
            cache_total
                .get_or_insert_with(CacheStats::default)
                .absorb_parallel(&s);
        }
        worker_stats.extend(o.stats);
    }
    let ordering = Some(complete_ordering(n, &best_suffix, ub_order.into_vec()));
    let exact =
        (completed && cfg.cover == CoverMethod::Exact && !degraded) || root_lb >= best_ub;
    let lower_bound = if exact {
        best_ub
    } else if completed {
        root_lb.min(best_ub)
    } else {
        ghw_anytime_lb(root_lb, expiry_floor, best_ub, cfg.cover, degraded)
    };
    let stats = root_tel.finish().map(|root| {
        let mut merged = SearchStats::merge(std::iter::once(root).chain(worker_stats));
        merged.incumbents.push(IncumbentSample {
            elapsed: budget.elapsed(),
            upper_bound: best_ub,
            lower_bound,
        });
        merged.faults = faults.clone();
        merged
    });
    SearchResult {
        upper_bound: best_ub,
        lower_bound,
        exact,
        ordering,
        nodes_expanded: nodes,
        elapsed: budget.elapsed(),
        cover_cache: cache_total,
        stats,
        faults,
    }
}

/// Resolves a requested thread count to a worker count the id packing
/// supports (`0` = all cores).
pub(crate) fn steal_workers(requested: usize) -> usize {
    let t = if requested == 0 {
        ghd_par::num_threads()
    } else {
        requested
    };
    t.clamp(1, crate::sharded::MAX_WORKERS)
}

/// Work-stealing parallel BB-ghw (`0` threads = all cores).
///
/// Any worker splits off unexplored siblings above the
/// [`StealConfig::depth`] cutoff as stealable subproblems on its own
/// Chase–Lev deque (see [`crate::steal`]); idle workers steal the oldest —
/// largest — published subtree, so all threads stay busy on unbalanced
/// instances where the one-shot root split of
/// [`bb_ghw_parallel_rootsplit`] serialises. All workers share the
/// incumbent upper bound (an atomic `fetch_min`), one [`Budget`] (a
/// `max_nodes` of N expands at most N states in total), and one striped
/// concurrent cover store ([`StripedCoverCache`]) holding proven facts
/// only; each worker keeps a private interner shard
/// ([`crate::sharded::ShardedInterner`]) for its greedy memo, so the hot
/// per-node path stays contention-free.
///
/// **Determinism:** with [`CoverMethod::Exact`] and enough budget the
/// reported width *and ordering* are bit-identical to [`bb_ghw`] for every
/// thread count and any steal schedule. The width is schedule-independent
/// because the search is exhaustive; the ordering is made deterministic by
/// a sequential *witness reconstruction* pass after the parallel width
/// search: rerunning the sequential DFS with `ub = w* + 1` and stopping at
/// the first improvement visits exactly the DFS-first state of width `w*`,
/// which is the state whose suffix the sequential search records last
/// (improvements are strict, so its final improvement is at that same
/// state; every bag-cover fact involved is exact, so cached, uncached and
/// striped runs agree bit-for-bit). Budget-expired runs keep the parallel
/// best suffix — still a certified witness, but schedule-dependent.
///
/// **Fault containment:** every task runs `catch_unwind`-wrapped via
/// [`ghd_par::run_contained`]; a faulted task is retried once by its
/// publisher (the thief's victim) and a second fault folds the task's `f`
/// into the expiry floor, degrading the run to a sound anytime result.
/// Stats attribute every counter to the **executing** worker
/// ([`StealCounters`], [`SearchStats::worker_steals`]).
pub fn bb_ghw_parallel(h: &Hypergraph, cfg: &BbGhwConfig, threads: usize) -> SearchResult {
    let n = h.num_vertices();
    let budget = Budget::new(&cfg.limits);
    let root_lb = ghd_bounds::ksc::ghw_lower_bound::<ghd_prng::rngs::StdRng>(h, None);
    let (ub, ub_order) = ghw_upper_bound::<ghd_prng::rngs::StdRng>(h, None);
    let mut root_tel = Telemetry::new(cfg.limits.collect_stats);
    root_tel.sample(budget.elapsed(), ub, root_lb.min(ub));
    if root_lb >= ub || n <= 1 {
        return SearchResult {
            upper_bound: ub,
            lower_bound: ub,
            exact: true,
            ordering: Some(ub_order.into_vec()),
            nodes_expanded: 0,
            elapsed: budget.elapsed(),
            cover_cache: None,
            stats: root_tel.finish(),
            faults: Vec::new(),
        };
    }
    let primal = h.primal_graph();
    let covered = h.covered_vertices();
    let ksc = KscTable::new(h);
    let workers = steal_workers(threads);
    let sched = Scheduler::new(workers);
    let striped = cfg
        .use_cover_cache
        .then(|| StripedCoverCache::new((workers * 4).next_power_of_two().min(64)));
    let incumbent = AtomicUsize::new(ub);
    // Seed task: the whole tree, id 0 by the slab's creation-order contract
    // (FaultPlan::kill_task(0) must hit exactly this first task).
    let seeded = sched.publish(0, &[], 0, root_lb);
    debug_assert!(seeded, "a fresh deque accepts the seed");

    struct WorkerOutcome {
        all_ok: bool,
        found: usize,
        best_suffix: Vec<usize>,
        nodes: u64,
        degraded: bool,
        expiry_floor: usize,
        /// Local-only stats (the striped store reports its own totals).
        local: Option<CacheStats>,
        steals: StealCounters,
        stats: Option<SearchStats>,
        faults: Vec<ghd_par::WorkerFault>,
        shard: StateInterner,
    }

    let shards = ShardedInterner::for_vertices(workers, n).split();
    let outcomes: Vec<WorkerOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .enumerate()
            .map(|(w, shard)| {
                let (sched, budget, incumbent) = (&sched, &budget, &incumbent);
                let (primal, covered, ksc) = (&primal, &covered, &ksc);
                let striped = striped.as_ref();
                scope.spawn(move || {
                    let mut dfs =
                        Dfs::new(h, cfg, primal, covered, budget.worker(), ub, root_lb, ksc);
                    dfs.shared_ub = Some(incumbent);
                    dfs.shared_cache = striped;
                    dfs.sched = Some(sched);
                    dfs.worker = w;
                    dfs.steal_depth = cfg.steal.depth.max(1);
                    let mut spare = None;
                    if dfs.interner.is_some() {
                        dfs.interner = Some(shard);
                    } else {
                        spare = Some(shard);
                    }
                    let mut steals = StealCounters::default();
                    let mut faults = Vec::new();
                    let mut all_ok = true;
                    while let Some(task) = sched.next(w) {
                        steals.executed += 1;
                        if task.stolen {
                            steals.stolen += 1;
                        }
                        if task.retry {
                            steals.retried += 1;
                        }
                        let (prefix, g, f) = (task.prefix, task.g, task.f);
                        match ghd_par::run_contained(w, task.id as usize, || {
                            run_steal_task(&mut dfs, &prefix, g, f)
                        }) {
                            Ok(ok) => {
                                all_ok &= ok;
                                sched.complete(task.id);
                            }
                            Err(fault) => {
                                faults.push(fault);
                                if !sched.fault(task.id) {
                                    // second fault: the subtree is lost —
                                    // its f-bound keeps the result sound
                                    dfs.expiry_floor = dfs.expiry_floor.min(f);
                                    all_ok = false;
                                }
                                // a panic can leave the traversal state
                                // mid-elimination: rebuild it (interned
                                // facts stay valid)
                                dfs.eg = EliminationGraph::new(primal);
                                dfs.suffix.clear();
                            }
                        }
                    }
                    steals.published = dfs.published;
                    let local = dfs.cache.as_ref().map(|c| c.stats());
                    let attributed = local.map(|mut c| {
                        c.hits += dfs.shared_cache_stats.hits;
                        c.misses += dfs.shared_cache_stats.misses;
                        c
                    });
                    let mut telemetry = std::mem::replace(&mut dfs.telemetry, Telemetry::new(false));
                    if let Some(a) = attributed {
                        telemetry.cache(a);
                    }
                    let overflow = dfs.interner_overflow;
                    telemetry.note(|s| s.interner_overflow |= overflow);
                    // an overflowed shard abandoned its remaining tasks
                    // into the expiry floor: the run did not complete
                    all_ok &= !overflow;
                    WorkerOutcome {
                        all_ok,
                        found: dfs.found,
                        best_suffix: std::mem::take(&mut dfs.best_suffix),
                        nodes: dfs.ticker.nodes(),
                        degraded: dfs.degraded,
                        expiry_floor: dfs.expiry_floor,
                        local,
                        steals,
                        stats: telemetry.finish(),
                        faults,
                        shard: dfs.interner.take().or(spare).expect("shard survives the run"),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|j| j.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });

    let mut faults = Vec::new();
    let mut best_ub = ub;
    let mut best_suffix: Vec<usize> = Vec::new();
    let mut nodes = 0u64;
    let mut completed = true;
    let mut degraded = false;
    let mut expiry_floor = usize::MAX;
    let mut locals: Vec<CacheStats> = Vec::new();
    let mut steals_all: Vec<StealCounters> = Vec::new();
    let mut worker_stats: Vec<SearchStats> = Vec::new();
    let mut shards_back: Vec<StateInterner> = Vec::new();
    for o in outcomes {
        if o.found < best_ub {
            best_ub = o.found;
            best_suffix = o.best_suffix;
        }
        nodes += o.nodes;
        completed &= o.all_ok;
        degraded |= o.degraded;
        expiry_floor = expiry_floor.min(o.expiry_floor);
        locals.extend(o.local);
        steals_all.push(o.steals);
        worker_stats.extend(o.stats);
        faults.extend(o.faults);
        shards_back.push(o.shard);
    }
    faults.sort_by_key(|f| f.task);
    let sharded = ShardedInterner::reassemble(shards_back);
    debug_assert_eq!(
        sched.published(),
        1 + steals_all.iter().map(|s| s.published as usize).sum::<usize>(),
        "every slab entry is the seed or a worker publication"
    );

    // Witness reconstruction (see the determinism notes above): a
    // sequential DFS with ub = w* + 1 stopping at its first improvement
    // reproduces the exact suffix the sequential search reports. Runs on
    // whatever budget the width phase left; if that expires, the parallel
    // witness (valid, schedule-dependent) is kept.
    if completed && best_ub < ub {
        let mut dfs =
            Dfs::new(h, cfg, &primal, &covered, budget.worker(), best_ub + 1, root_lb, &ksc);
        dfs.shared_cache = striped.as_ref(); // identical answers, warm facts
        dfs.stop_at_first = true;
        dfs.search(0, root_lb, None);
        nodes += dfs.ticker.nodes();
        if dfs.found == best_ub {
            best_suffix = std::mem::take(&mut dfs.best_suffix);
        }
        locals.extend(dfs.cache.as_ref().map(|c| c.stats()));
        let attributed = dfs.cache.as_ref().map(|c| {
            let mut s = c.stats();
            s.hits += dfs.shared_cache_stats.hits;
            s.misses += dfs.shared_cache_stats.misses;
            s
        });
        let mut telemetry = std::mem::replace(&mut dfs.telemetry, Telemetry::new(false));
        if let Some(a) = attributed {
            telemetry.cache(a);
        }
        worker_stats.extend(telemetry.finish());
    }

    // Snapshot the striped store *after* reconstruction so the merged
    // counters cover every query of the run, then fold in the local memos:
    // merged hits/misses equal the sum over `worker_caches` exactly.
    let mut cache_total = striped.as_ref().map(|s| s.stats());
    if let Some(total) = cache_total.as_mut() {
        for l in &locals {
            total.absorb_parallel(l);
        }
    }

    let ordering = Some(complete_ordering(n, &best_suffix, ub_order.into_vec()));
    let exact =
        (completed && cfg.cover == CoverMethod::Exact && !degraded) || root_lb >= best_ub;
    let lower_bound = if exact {
        best_ub
    } else if completed {
        root_lb.min(best_ub)
    } else {
        ghw_anytime_lb(root_lb, expiry_floor, best_ub, cfg.cover, degraded)
    };
    let stats = root_tel.finish().map(|root| {
        let mut merged = SearchStats::merge(std::iter::once(root).chain(worker_stats));
        merged.incumbents.push(IncumbentSample {
            elapsed: budget.elapsed(),
            upper_bound: best_ub,
            lower_bound,
        });
        merged.worker_steals = steals_all;
        merged.faults = faults.clone();
        // BB has no A* closed set; report the sharded interner's footprint
        // as the state-memory gauge instead
        merged.seen_peak_bytes = merged.seen_peak_bytes.max(sharded.bytes() as u64);
        merged
    });
    SearchResult {
        upper_bound: best_ub,
        lower_bound,
        exact,
        ordering,
        nodes_expanded: nodes,
        elapsed: budget.elapsed(),
        cover_cache: cache_total,
        stats,
        faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghd_core::bucket::ghd_from_ordering;
    use ghd_core::EliminationOrdering;
    use ghd_hypergraph::generators::hypergraphs;

    fn exact_ghw(h: &Hypergraph) -> usize {
        let r = bb_ghw(h, &BbGhwConfig::default());
        assert!(r.exact, "BB-ghw did not complete");
        r.upper_bound
    }

    #[test]
    fn acyclic_hypergraphs_have_ghw_1() {
        let h = hypergraphs::acyclic_chain(5, 3, 1);
        assert_eq!(exact_ghw(&h), 1);
    }

    #[test]
    fn clique_hypergraph_ghw_is_ceil_half() {
        for n in [4, 5, 6] {
            let h = hypergraphs::clique(n);
            assert_eq!(exact_ghw(&h), n.div_ceil(2), "clique_{n}");
        }
    }

    #[test]
    fn fig_2_11_hypergraph_has_ghw_2() {
        // Example 5: a cyclic join of three ternary edges; ghw = 2
        // (not acyclic, so > 1; Fig 2.7 exhibits width 2).
        let h = Hypergraph::from_edges(6, [vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]]);
        assert_eq!(exact_ghw(&h), 2);
    }

    #[test]
    fn small_adder_ghw_is_at_most_2() {
        let h = hypergraphs::adder(4);
        let w = exact_ghw(&h);
        assert!((1..=2).contains(&w), "adder ghw = {w}");
    }

    #[test]
    fn returned_ordering_realises_the_width() {
        let h = hypergraphs::clique(6);
        let r = bb_ghw(&h, &BbGhwConfig::default());
        let sigma = EliminationOrdering::new(r.ordering.clone().unwrap()).unwrap();
        let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
        ghd.verify(&h).unwrap();
        assert_eq!(ghd.width(), r.upper_bound);
    }

    #[test]
    fn ablations_agree_on_optimum() {
        for seed in 0..5u64 {
            let h = hypergraphs::random_hypergraph(10, 7, 3, seed);
            let base = exact_ghw(&h);
            for (red, pr2) in [(false, true), (true, false), (false, false)] {
                let cfg = BbGhwConfig {
                    use_reductions: red,
                    use_pr2: pr2,
                    ..BbGhwConfig::default()
                };
                let r = bb_ghw(&h, &cfg);
                assert!(r.exact);
                assert_eq!(r.upper_bound, base, "seed {seed} red={red} pr2={pr2}");
            }
        }
    }

    #[test]
    fn greedy_cover_mode_upper_bounds_exact() {
        for seed in 0..5u64 {
            let h = hypergraphs::random_hypergraph(12, 8, 4, seed);
            let exact = exact_ghw(&h);
            let r = bb_ghw(
                &h,
                &BbGhwConfig {
                    cover: CoverMethod::Greedy,
                    ..BbGhwConfig::default()
                },
            );
            assert!(r.upper_bound >= exact, "seed {seed}");
        }
    }

    #[test]
    fn work_stealing_is_width_and_ordering_identical() {
        for seed in 0..5u64 {
            let h = hypergraphs::random_hypergraph(11, 7, 3, seed);
            let seq = bb_ghw(&h, &BbGhwConfig::default());
            for threads in [1, 2, 4, 8] {
                let par = bb_ghw_parallel(&h, &BbGhwConfig::default(), threads);
                assert!(par.exact, "seed {seed} threads {threads}");
                assert_eq!(par.upper_bound, seq.upper_bound, "seed {seed} threads {threads}");
                // witness reconstruction makes the full ordering
                // schedule-independent, not just the width
                assert_eq!(par.ordering, seq.ordering, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn rootsplit_baseline_is_width_identical() {
        for seed in 0..3u64 {
            let h = hypergraphs::random_hypergraph(11, 7, 3, seed);
            let seq = bb_ghw(&h, &BbGhwConfig::default());
            for threads in [1, 2, 4] {
                let par = bb_ghw_parallel_rootsplit(&h, &BbGhwConfig::default(), threads);
                assert!(par.exact, "seed {seed} threads {threads}");
                assert_eq!(par.upper_bound, seq.upper_bound, "seed {seed} threads {threads}");
                // the root-split ordering is schedule-dependent but must
                // still be a genuine witness
                let sigma = EliminationOrdering::new(par.ordering.unwrap()).unwrap();
                let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
                ghd.verify(&h).unwrap();
                assert_eq!(ghd.width(), par.upper_bound, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn cover_cache_reports_hits_and_does_not_change_widths() {
        for seed in 0..4u64 {
            let h = hypergraphs::random_hypergraph(10, 7, 3, seed);
            let with = bb_ghw(&h, &BbGhwConfig::default());
            let without = bb_ghw(
                &h,
                &BbGhwConfig {
                    use_cover_cache: false,
                    ..BbGhwConfig::default()
                },
            );
            assert_eq!(with.upper_bound, without.upper_bound, "seed {seed}");
            assert_eq!(with.exact, without.exact, "seed {seed}");
            assert_eq!(with.ordering, without.ordering, "seed {seed}");
            assert_eq!(with.nodes_expanded, without.nodes_expanded, "seed {seed}");
            assert!(without.cover_cache.is_none());
            if with.nodes_expanded > 0 {
                let stats = with.cover_cache.expect("cache enabled by default");
                assert!(stats.misses > 0, "seed {seed}: {stats:?}");
            }
        }
    }

    /// Regression test for double-counting under work stealing: every
    /// cache query must be attributed to exactly one executing worker, so
    /// the merged counters equal the sum over `worker_caches` exactly. A
    /// per-*task* snapshot of the counters (the natural bug: a stolen
    /// task's queries reported by both thief and victim) breaks this
    /// identity by counting stolen tasks' traffic twice.
    #[test]
    fn parallel_cache_merge_attributes_each_query_exactly_once() {
        let h = hypergraphs::grid2d(5);
        let r = bb_ghw_parallel(
            &h,
            &BbGhwConfig {
                limits: SearchLimits::unlimited().stats(true),
                ..BbGhwConfig::default()
            },
            4,
        );
        let merged = r.cover_cache.expect("cache enabled by default");
        let stats = r.stats.expect("stats requested");
        let workers = &stats.worker_caches;
        assert!(!workers.is_empty());
        assert_eq!(merged.hits, workers.iter().map(|c| c.hits).sum::<u64>());
        assert_eq!(merged.misses, workers.iter().map(|c| c.misses).sum::<u64>());
        // stripe-store evictions have no single owning worker, so merged
        // can only exceed the per-worker (local memo) sum
        assert!(merged.evictions >= workers.iter().map(|c| c.evictions).sum::<u64>());
        // the entries gauge covers at least the largest single store
        assert!(merged.entries >= workers.iter().map(|c| c.entries).max().unwrap());
        // steal accounting: every published task runs exactly once, plus
        // the seed task, and counters belong to the executing worker
        let steals = &stats.worker_steals;
        assert!(!steals.is_empty());
        let published: u64 = steals.iter().map(|s| s.published).sum();
        let executed: u64 = steals.iter().map(|s| s.executed).sum();
        assert_eq!(executed, published + 1, "seed + each publication once");
        assert_eq!(steals.iter().map(|s| s.retried).sum::<u64>(), 0);
    }

    #[test]
    fn anytime_mode_reports_consistent_bounds() {
        let h = hypergraphs::grid2d(6);
        let r = bb_ghw(
            &h,
            &BbGhwConfig {
                limits: SearchLimits::with_nodes(100),
                ..BbGhwConfig::default()
            },
        );
        assert!(r.lower_bound <= r.upper_bound);
        assert!(r.nodes_expanded <= 100, "budget overrun: {}", r.nodes_expanded);
    }

    #[test]
    fn stats_collection_is_behaviourally_free() {
        for seed in 0..3u64 {
            let h = hypergraphs::random_hypergraph(10, 7, 3, seed);
            for limits in [SearchLimits::unlimited(), SearchLimits::with_nodes(200)] {
                let off = bb_ghw(&h, &BbGhwConfig { limits: limits.clone(), ..BbGhwConfig::default() });
                let on = bb_ghw(
                    &h,
                    &BbGhwConfig {
                        limits: limits.stats(true),
                        ..BbGhwConfig::default()
                    },
                );
                assert_eq!(on.upper_bound, off.upper_bound, "seed {seed}");
                assert_eq!(on.lower_bound, off.lower_bound, "seed {seed}");
                assert_eq!(on.ordering, off.ordering, "seed {seed}");
                assert_eq!(on.nodes_expanded, off.nodes_expanded, "seed {seed}");
                assert!(off.stats.is_none());
                let stats = on.stats.expect("stats requested");
                assert!(!stats.incumbents.is_empty(), "seed {seed}");
            }
        }
    }
}
