//! Algorithm BB-ghw (Chapter 8, Fig 8.3): branch and bound over elimination
//! orderings for the generalized hypertree width, justified by Theorem 3
//! (some ordering attains `ghw` under exact set covering).
//!
//! Per state the cost is the largest *exact* set cover of a bucket bag so
//! far; the heuristic is tw-ksc-width (Fig 8.1) on the residual graph; the
//! reductions of §8.2 (simplicial vertices) and the GHW-safe part of pruning
//! rule 2 (§8.3, non-adjacent swaps) shrink the tree, and the GHW analogue
//! of PR1 closes subtrees whose residual vertex set is already coverable
//! within the current cost.

use crate::common::{SearchLimits, SearchResult, Ticker};
use crate::rules::{find_simplicial, pr2_allowed_children, swappable_ghw};
use ghd_bounds::ksc::tw_ksc_width;
use ghd_bounds::lower::tw_lower_bound;
use ghd_bounds::upper::ghw_upper_bound;
use ghd_core::setcover::{exact_cover_size_capped, greedy_cover_size, CoverMethod};
use ghd_hypergraph::{BitSet, EliminationGraph, Hypergraph};

/// Configuration for [`bb_ghw`].
#[derive(Clone, Debug)]
pub struct BbGhwConfig {
    /// Resource limits.
    pub limits: SearchLimits,
    /// Apply the simplicial-vertex reduction (§8.2).
    pub use_reductions: bool,
    /// Apply the non-adjacent-swap pruning rule (§8.3).
    pub use_pr2: bool,
    /// Bag cover solver. Exactness of the search requires
    /// [`CoverMethod::Exact`] (Theorem 3); `Greedy` turns this into a fast
    /// upper-bound heuristic.
    pub cover: CoverMethod,
}

impl Default for BbGhwConfig {
    fn default() -> Self {
        BbGhwConfig {
            limits: SearchLimits::unlimited(),
            use_reductions: true,
            use_pr2: true,
            cover: CoverMethod::Exact,
        }
    }
}

/// Cover size of a bag, capped at `cap` (any value ≥ `cap` prunes the
/// child identically, so `min(true, cap)` is all the search needs — and the
/// cap prunes the set-cover branch and bound enormously). The second
/// component is `false` iff the cover search exhausted its internal budget
/// and the size is only an upper estimate.
pub(crate) fn bag_cover_size(
    h: &Hypergraph,
    covered: &BitSet,
    bag: &BitSet,
    method: CoverMethod,
    cap: usize,
) -> (usize, bool) {
    // vertices in no hyperedge are unconstrained and need no cover support
    let mut bag = bag.clone();
    bag.intersect_with(covered);
    match method {
        CoverMethod::Exact => exact_cover_size_capped(&bag, h, cap),
        CoverMethod::Greedy => (
            greedy_cover_size::<rand::rngs::StdRng>(&bag, h, None),
            true,
        ),
    }
}

/// Residual lower bound: treewidth bound on the current graph lifted through
/// the k-set-cover bound (Fig 8.1).
pub(crate) fn residual_ghw_lb(h: &Hypergraph, eg: &EliminationGraph) -> usize {
    if eg.num_alive() == 0 {
        return 0;
    }
    let residual = eg.to_graph();
    let tw_lb = tw_lower_bound::<rand::rngs::StdRng>(&residual, None);
    tw_ksc_width(h, &residual, tw_lb)
}

struct Dfs<'a> {
    h: &'a Hypergraph,
    covered: BitSet,
    eg: EliminationGraph,
    cfg: &'a BbGhwConfig,
    ticker: Ticker,
    ub: usize,
    best_suffix: Vec<usize>,
    suffix: Vec<usize>,
    bag_scratch: BitSet,
    /// Set when a capped cover exhausted its budget: the result may no
    /// longer be proven optimal.
    degraded: bool,
}

impl Dfs<'_> {
    fn search(&mut self, g: usize, f: usize, allowed: Option<&BitSet>) -> bool {
        if !self.ticker.tick() {
            return false;
        }
        // PR1 analogue: any completion's bags sit inside the alive set, so
        // its exact-cover width is ≤ cover(alive); greedy gives a safe bound.
        if self.eg.num_alive() == 0 {
            if g < self.ub {
                self.ub = g.max(1);
                self.best_suffix = self.suffix.clone();
            }
            return true;
        }
        let alive_cover = {
            let mut target = self.eg.alive().clone();
            target.intersect_with(&self.covered);
            greedy_cover_size::<rand::rngs::StdRng>(&target, self.h, None)
        };
        let w = g.max(alive_cover);
        if w < self.ub {
            self.ub = w;
            self.best_suffix = self.suffix.clone();
        }
        if alive_cover <= g {
            return true; // completing in any order already achieves g
        }

        let forced = if self.cfg.use_reductions {
            find_simplicial(&self.eg)
        } else {
            None
        };
        let mut children: Vec<usize> = match forced {
            Some(v) => vec![v],
            None => match allowed {
                Some(set) => set.iter().collect(),
                None => self.eg.alive().to_vec(),
            },
        };
        children.sort_by_key(|&v| self.eg.degree(v));

        for v in children {
            let grandchildren = if self.cfg.use_pr2 && forced.is_none() {
                Some(pr2_allowed_children(&self.eg, v, swappable_ghw))
            } else {
                None
            };
            self.bag_scratch = self.eg.neighbors(v).clone();
            self.bag_scratch.insert(v);
            let (k, cover_exact) =
                bag_cover_size(self.h, &self.covered, &self.bag_scratch, self.cfg.cover, self.ub);
            if !cover_exact {
                self.degraded = true;
            }
            self.eg.eliminate(v);
            self.suffix.push(v);
            let child_g = g.max(k);
            let mut child_f = child_g.max(f);
            if child_f < self.ub {
                child_f = child_f.max(residual_ghw_lb(self.h, &self.eg));
            }
            let ok = if child_f < self.ub {
                self.search(child_g, child_f, grandchildren.as_ref())
            } else {
                true
            };
            self.suffix.pop();
            self.eg.restore();
            if !ok {
                return false;
            }
        }
        true
    }
}

/// Computes the generalized hypertree width of `h` by branch and bound
/// (Fig 8.3). With [`CoverMethod::Exact`] and no limits the result is exact;
/// anytime otherwise.
pub fn bb_ghw(h: &Hypergraph, cfg: &BbGhwConfig) -> SearchResult {
    let n = h.num_vertices();
    let ticker = Ticker::new(cfg.limits);
    let root_lb = ghd_bounds::ksc::ghw_lower_bound::<rand::rngs::StdRng>(h, None);
    let (ub, ub_order) = ghw_upper_bound::<rand::rngs::StdRng>(h, None);
    if root_lb >= ub || n <= 1 {
        return SearchResult {
            upper_bound: ub,
            lower_bound: ub,
            exact: true,
            ordering: Some(ub_order.into_vec()),
            nodes_expanded: 0,
            elapsed: ticker.elapsed(),
        };
    }
    let primal = h.primal_graph();
    let mut dfs = Dfs {
        h,
        covered: h.covered_vertices(),
        eg: EliminationGraph::new(&primal),
        cfg,
        ticker,
        ub,
        best_suffix: Vec::new(),
        suffix: Vec::new(),
        bag_scratch: BitSet::new(n),
        degraded: false,
    };
    let completed = dfs.search(0, root_lb, None);
    let ordering = if dfs.best_suffix.is_empty() {
        Some(ub_order.into_vec())
    } else {
        let mut in_suffix = vec![false; n];
        for &v in &dfs.best_suffix {
            in_suffix[v] = true;
        }
        let mut order: Vec<usize> = (0..n).filter(|&v| !in_suffix[v]).collect();
        order.extend(dfs.best_suffix.iter().rev());
        Some(order)
    };
    let exact =
        (completed && cfg.cover == CoverMethod::Exact && !dfs.degraded) || root_lb >= dfs.ub;
    SearchResult {
        upper_bound: dfs.ub,
        lower_bound: if exact { dfs.ub } else { root_lb.min(dfs.ub) },
        exact,
        ordering,
        nodes_expanded: dfs.ticker.nodes(),
        elapsed: dfs.ticker.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghd_core::bucket::ghd_from_ordering;
    use ghd_core::EliminationOrdering;
    use ghd_hypergraph::generators::hypergraphs;

    fn exact_ghw(h: &Hypergraph) -> usize {
        let r = bb_ghw(h, &BbGhwConfig::default());
        assert!(r.exact, "BB-ghw did not complete");
        r.upper_bound
    }

    #[test]
    fn acyclic_hypergraphs_have_ghw_1() {
        let h = hypergraphs::acyclic_chain(5, 3, 1);
        assert_eq!(exact_ghw(&h), 1);
    }

    #[test]
    fn clique_hypergraph_ghw_is_ceil_half() {
        for n in [4, 5, 6] {
            let h = hypergraphs::clique(n);
            assert_eq!(exact_ghw(&h), n.div_ceil(2), "clique_{n}");
        }
    }

    #[test]
    fn fig_2_11_hypergraph_has_ghw_2() {
        // Example 5: a cyclic join of three ternary edges; ghw = 2
        // (not acyclic, so > 1; Fig 2.7 exhibits width 2).
        let h = Hypergraph::from_edges(6, [vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]]);
        assert_eq!(exact_ghw(&h), 2);
    }

    #[test]
    fn small_adder_ghw_is_at_most_2() {
        let h = hypergraphs::adder(4);
        let w = exact_ghw(&h);
        assert!((1..=2).contains(&w), "adder ghw = {w}");
    }

    #[test]
    fn returned_ordering_realises_the_width() {
        let h = hypergraphs::clique(6);
        let r = bb_ghw(&h, &BbGhwConfig::default());
        let sigma = EliminationOrdering::new(r.ordering.clone().unwrap()).unwrap();
        let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
        ghd.verify(&h).unwrap();
        assert_eq!(ghd.width(), r.upper_bound);
    }

    #[test]
    fn ablations_agree_on_optimum() {
        for seed in 0..5u64 {
            let h = hypergraphs::random_hypergraph(10, 7, 3, seed);
            let base = exact_ghw(&h);
            for (red, pr2) in [(false, true), (true, false), (false, false)] {
                let cfg = BbGhwConfig {
                    use_reductions: red,
                    use_pr2: pr2,
                    ..BbGhwConfig::default()
                };
                let r = bb_ghw(&h, &cfg);
                assert!(r.exact);
                assert_eq!(r.upper_bound, base, "seed {seed} red={red} pr2={pr2}");
            }
        }
    }

    #[test]
    fn greedy_cover_mode_upper_bounds_exact() {
        for seed in 0..5u64 {
            let h = hypergraphs::random_hypergraph(12, 8, 4, seed);
            let exact = exact_ghw(&h);
            let r = bb_ghw(
                &h,
                &BbGhwConfig {
                    cover: CoverMethod::Greedy,
                    ..BbGhwConfig::default()
                },
            );
            assert!(r.upper_bound >= exact, "seed {seed}");
        }
    }

    #[test]
    fn anytime_mode_reports_consistent_bounds() {
        let h = hypergraphs::grid2d(6);
        let r = bb_ghw(
            &h,
            &BbGhwConfig {
                limits: SearchLimits::with_nodes(100),
                ..BbGhwConfig::default()
            },
        );
        assert!(r.lower_bound <= r.upper_bound);
    }
}
