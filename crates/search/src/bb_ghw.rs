//! Algorithm BB-ghw (Chapter 8, Fig 8.3): branch and bound over elimination
//! orderings for the generalized hypertree width, justified by Theorem 3
//! (some ordering attains `ghw` under exact set covering).
//!
//! Per state the cost is the largest *exact* set cover of a bucket bag so
//! far; the heuristic is tw-ksc-width (Fig 8.1) on the residual graph; the
//! reductions of §8.2 (simplicial vertices) and the GHW-safe part of pruning
//! rule 2 (§8.3, non-adjacent swaps) shrink the tree, and the GHW analogue
//! of PR1 closes subtrees whose residual vertex set is already coverable
//! within the current cost.

use crate::common::{SearchLimits, SearchResult, Ticker};
use crate::rules::{find_simplicial, pr2_allowed_children, swappable_ghw};
use ghd_bounds::ksc::tw_ksc_width;
use ghd_bounds::lower::tw_lower_bound;
use ghd_bounds::upper::ghw_upper_bound;
use ghd_core::setcover::{
    exact_cover_size_capped, greedy_cover_size, CacheStats, CoverCache, CoverMethod,
};
use ghd_hypergraph::{BitSet, EliminationGraph, Hypergraph};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configuration for [`bb_ghw`].
#[derive(Clone, Debug)]
pub struct BbGhwConfig {
    /// Resource limits.
    pub limits: SearchLimits,
    /// Apply the simplicial-vertex reduction (§8.2).
    pub use_reductions: bool,
    /// Apply the non-adjacent-swap pruning rule (§8.3).
    pub use_pr2: bool,
    /// Bag cover solver. Exactness of the search requires
    /// [`CoverMethod::Exact`] (Theorem 3); `Greedy` turns this into a fast
    /// upper-bound heuristic.
    pub cover: CoverMethod,
    /// Memoize per-bag covers in a [`CoverCache`]. The cache stores only
    /// proven facts, so results are identical on/off; permutation-heavy
    /// search trees revisit bags constantly and hit rates are high.
    pub use_cover_cache: bool,
}

impl Default for BbGhwConfig {
    fn default() -> Self {
        BbGhwConfig {
            limits: SearchLimits::unlimited(),
            use_reductions: true,
            use_pr2: true,
            cover: CoverMethod::Exact,
            use_cover_cache: true,
        }
    }
}

/// Cover size of a bag, capped at `cap` (any value ≥ `cap` prunes the
/// child identically, so `min(true, cap)` is all the search needs — and the
/// cap prunes the set-cover branch and bound enormously). The second
/// component is `false` iff the cover search exhausted its internal budget
/// and the size is only an upper estimate.
pub(crate) fn bag_cover_size(
    h: &Hypergraph,
    covered: &BitSet,
    bag: &BitSet,
    method: CoverMethod,
    cap: usize,
    cache: Option<&mut CoverCache>,
) -> (usize, bool) {
    // vertices in no hyperedge are unconstrained and need no cover support
    let mut bag = bag.clone();
    bag.intersect_with(covered);
    match (method, cache) {
        (CoverMethod::Exact, Some(c)) => c.exact_cover_size_capped(&bag, h, cap),
        (CoverMethod::Exact, None) => exact_cover_size_capped(&bag, h, cap),
        (CoverMethod::Greedy, Some(c)) => (c.greedy_cover_size(&bag, h), true),
        (CoverMethod::Greedy, None) => (
            greedy_cover_size::<ghd_prng::rngs::StdRng>(&bag, h, None),
            true,
        ),
    }
}

/// Residual lower bound: treewidth bound on the current graph lifted through
/// the k-set-cover bound (Fig 8.1).
pub(crate) fn residual_ghw_lb(h: &Hypergraph, eg: &EliminationGraph) -> usize {
    if eg.num_alive() == 0 {
        return 0;
    }
    let residual = eg.to_graph();
    let tw_lb = tw_lower_bound::<ghd_prng::rngs::StdRng>(&residual, None);
    tw_ksc_width(h, &residual, tw_lb)
}

struct Dfs<'a> {
    h: &'a Hypergraph,
    covered: BitSet,
    eg: EliminationGraph,
    cfg: &'a BbGhwConfig,
    ticker: Ticker,
    ub: usize,
    best_suffix: Vec<usize>,
    suffix: Vec<usize>,
    bag_scratch: BitSet,
    /// Set when a capped cover exhausted its budget: the result may no
    /// longer be proven optimal.
    degraded: bool,
    /// Transposition cache for per-bag covers (None = disabled).
    cache: Option<CoverCache>,
    /// Incumbent upper bound shared between root-split workers. `None` in
    /// sequential mode. Improvements are published with `fetch_min`; every
    /// expansion syncs `self.ub` down to the global value, so one worker's
    /// discovery prunes all the others.
    shared_ub: Option<&'a AtomicUsize>,
    /// Best width *this* search proved with a concrete suffix (`usize::MAX`
    /// until the first improvement). Distinguishes "I found it" from "a
    /// sibling worker's bound tightened my `ub`".
    found: usize,
}

impl Dfs<'_> {
    /// Records a width improvement discovered by this search.
    fn improve(&mut self, w: usize) {
        self.ub = w;
        self.found = w;
        self.best_suffix = self.suffix.clone();
        if let Some(s) = self.shared_ub {
            s.fetch_min(w, Ordering::Relaxed);
        }
    }

    fn search(&mut self, g: usize, f: usize, allowed: Option<&BitSet>) -> bool {
        if !self.ticker.tick() {
            return false;
        }
        if let Some(s) = self.shared_ub {
            self.ub = self.ub.min(s.load(Ordering::Relaxed));
        }
        // PR1 analogue: any completion's bags sit inside the alive set, so
        // its exact-cover width is ≤ cover(alive); greedy gives a safe bound.
        if self.eg.num_alive() == 0 {
            if g < self.ub {
                self.improve(g.max(1));
            }
            return true;
        }
        let alive_cover = {
            let mut target = self.eg.alive().clone();
            target.intersect_with(&self.covered);
            match self.cache.as_mut() {
                // identical value to the uncached call: the cache memoizes
                // the same deterministic first-maximum greedy
                Some(c) => c.greedy_cover_size(&target, self.h),
                None => greedy_cover_size::<ghd_prng::rngs::StdRng>(&target, self.h, None),
            }
        };
        let w = g.max(alive_cover);
        if w < self.ub {
            self.improve(w);
        }
        if alive_cover <= g {
            return true; // completing in any order already achieves g
        }

        let forced = if self.cfg.use_reductions {
            find_simplicial(&self.eg)
        } else {
            None
        };
        let mut children: Vec<usize> = match forced {
            Some(v) => vec![v],
            None => match allowed {
                Some(set) => set.iter().collect(),
                None => self.eg.alive().to_vec(),
            },
        };
        children.sort_by_key(|&v| self.eg.degree(v));

        for v in children {
            let grandchildren = if self.cfg.use_pr2 && forced.is_none() {
                Some(pr2_allowed_children(&self.eg, v, swappable_ghw))
            } else {
                None
            };
            self.bag_scratch = self.eg.neighbors(v).clone();
            self.bag_scratch.insert(v);
            let (k, cover_exact) = bag_cover_size(
                self.h,
                &self.covered,
                &self.bag_scratch,
                self.cfg.cover,
                self.ub,
                self.cache.as_mut(),
            );
            if !cover_exact {
                self.degraded = true;
            }
            self.eg.eliminate(v);
            self.suffix.push(v);
            let child_g = g.max(k);
            let mut child_f = child_g.max(f);
            if child_f < self.ub {
                child_f = child_f.max(residual_ghw_lb(self.h, &self.eg));
            }
            let ok = if child_f < self.ub {
                self.search(child_g, child_f, grandchildren.as_ref())
            } else {
                true
            };
            self.suffix.pop();
            self.eg.restore();
            if !ok {
                return false;
            }
        }
        true
    }
}

/// Computes the generalized hypertree width of `h` by branch and bound
/// (Fig 8.3). With [`CoverMethod::Exact`] and no limits the result is exact;
/// anytime otherwise.
pub fn bb_ghw(h: &Hypergraph, cfg: &BbGhwConfig) -> SearchResult {
    let n = h.num_vertices();
    let ticker = Ticker::new(cfg.limits);
    let root_lb = ghd_bounds::ksc::ghw_lower_bound::<ghd_prng::rngs::StdRng>(h, None);
    let (ub, ub_order) = ghw_upper_bound::<ghd_prng::rngs::StdRng>(h, None);
    if root_lb >= ub || n <= 1 {
        return SearchResult {
            upper_bound: ub,
            lower_bound: ub,
            exact: true,
            ordering: Some(ub_order.into_vec()),
            nodes_expanded: 0,
            elapsed: ticker.elapsed(),
            cover_cache: None,
        };
    }
    let primal = h.primal_graph();
    let mut dfs = Dfs {
        h,
        covered: h.covered_vertices(),
        eg: EliminationGraph::new(&primal),
        cfg,
        ticker,
        ub,
        best_suffix: Vec::new(),
        suffix: Vec::new(),
        bag_scratch: BitSet::new(n),
        degraded: false,
        cache: cfg.use_cover_cache.then(CoverCache::new),
        shared_ub: None,
        found: usize::MAX,
    };
    let completed = dfs.search(0, root_lb, None);
    let ordering = if dfs.best_suffix.is_empty() {
        Some(ub_order.into_vec())
    } else {
        let mut in_suffix = vec![false; n];
        for &v in &dfs.best_suffix {
            in_suffix[v] = true;
        }
        let mut order: Vec<usize> = (0..n).filter(|&v| !in_suffix[v]).collect();
        order.extend(dfs.best_suffix.iter().rev());
        Some(order)
    };
    let exact =
        (completed && cfg.cover == CoverMethod::Exact && !dfs.degraded) || root_lb >= dfs.ub;
    SearchResult {
        upper_bound: dfs.ub,
        lower_bound: if exact { dfs.ub } else { root_lb.min(dfs.ub) },
        exact,
        ordering,
        nodes_expanded: dfs.ticker.nodes(),
        elapsed: dfs.ticker.elapsed(),
        cover_cache: dfs.cache.as_ref().map(|c| c.stats()),
    }
}

/// Parallel BB-ghw: the root's elimination choices are split across up to
/// `threads` workers (`0` = all cores), which share the incumbent upper
/// bound through an atomic — one worker's improvement immediately prunes
/// the others.
///
/// Each worker owns its elimination graph, ticker, and cover cache, so the
/// only cross-thread traffic is the single `usize` incumbent. With
/// [`CoverMethod::Exact`] and no limits the result is exact and therefore
/// **width-identical** to [`bb_ghw`] for any thread count (orderings may be
/// different optima). Resource limits apply *per worker*.
pub fn bb_ghw_parallel(h: &Hypergraph, cfg: &BbGhwConfig, threads: usize) -> SearchResult {
    let n = h.num_vertices();
    let ticker = Ticker::new(cfg.limits);
    let root_lb = ghd_bounds::ksc::ghw_lower_bound::<ghd_prng::rngs::StdRng>(h, None);
    let (ub, ub_order) = ghw_upper_bound::<ghd_prng::rngs::StdRng>(h, None);
    if root_lb >= ub || n <= 1 {
        return SearchResult {
            upper_bound: ub,
            lower_bound: ub,
            exact: true,
            ordering: Some(ub_order.into_vec()),
            nodes_expanded: 0,
            elapsed: ticker.elapsed(),
            cover_cache: None,
        };
    }
    let primal = h.primal_graph();
    let covered = h.covered_vertices();
    // root children exactly as the sequential root expansion orders them
    let eg = EliminationGraph::new(&primal);
    let forced = if cfg.use_reductions {
        find_simplicial(&eg)
    } else {
        None
    };
    let mut children: Vec<usize> = match forced {
        Some(v) => vec![v],
        None => eg.alive().to_vec(),
    };
    children.sort_by_key(|&v| eg.degree(v));
    drop(eg);

    let incumbent = AtomicUsize::new(ub);
    struct WorkerOutcome {
        completed: bool,
        found: usize,
        best_suffix: Vec<usize>,
        nodes: u64,
        degraded: bool,
        cache: Option<CacheStats>,
    }
    let outcomes: Vec<WorkerOutcome> = ghd_par::parallel_map(&children, threads, |&v| {
        let mut allowed = BitSet::new(n);
        allowed.insert(v);
        let mut dfs = Dfs {
            h,
            covered: covered.clone(),
            eg: EliminationGraph::new(&primal),
            cfg,
            ticker: Ticker::new(cfg.limits),
            ub,
            best_suffix: Vec::new(),
            suffix: Vec::new(),
            bag_scratch: BitSet::new(n),
            degraded: false,
            cache: cfg.use_cover_cache.then(CoverCache::new),
            shared_ub: Some(&incumbent),
            found: usize::MAX,
        };
        let completed = dfs.search(0, root_lb, Some(&allowed));
        WorkerOutcome {
            completed,
            found: dfs.found,
            best_suffix: dfs.best_suffix,
            nodes: dfs.ticker.nodes(),
            degraded: dfs.degraded,
            cache: dfs.cache.as_ref().map(|c| c.stats()),
        }
    });

    // aggregate: best proven width wins, first worker breaks ties
    let mut best_ub = ub;
    let mut best_suffix: Vec<usize> = Vec::new();
    let mut nodes = 0u64;
    let mut completed = true;
    let mut degraded = false;
    let mut cache_total: Option<CacheStats> = None;
    for o in outcomes {
        if o.found < best_ub {
            best_ub = o.found;
            best_suffix = o.best_suffix;
        }
        nodes += o.nodes;
        completed &= o.completed;
        degraded |= o.degraded;
        if let Some(s) = o.cache {
            let t = cache_total.get_or_insert_with(CacheStats::default);
            t.hits += s.hits;
            t.misses += s.misses;
            t.evictions += s.evictions;
            t.entries += s.entries;
        }
    }
    let ordering = if best_suffix.is_empty() {
        Some(ub_order.into_vec())
    } else {
        let mut in_suffix = vec![false; n];
        for &v in &best_suffix {
            in_suffix[v] = true;
        }
        let mut order: Vec<usize> = (0..n).filter(|&v| !in_suffix[v]).collect();
        order.extend(best_suffix.iter().rev());
        Some(order)
    };
    let exact =
        (completed && cfg.cover == CoverMethod::Exact && !degraded) || root_lb >= best_ub;
    SearchResult {
        upper_bound: best_ub,
        lower_bound: if exact { best_ub } else { root_lb.min(best_ub) },
        exact,
        ordering,
        nodes_expanded: nodes,
        elapsed: ticker.elapsed(),
        cover_cache: cache_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghd_core::bucket::ghd_from_ordering;
    use ghd_core::EliminationOrdering;
    use ghd_hypergraph::generators::hypergraphs;

    fn exact_ghw(h: &Hypergraph) -> usize {
        let r = bb_ghw(h, &BbGhwConfig::default());
        assert!(r.exact, "BB-ghw did not complete");
        r.upper_bound
    }

    #[test]
    fn acyclic_hypergraphs_have_ghw_1() {
        let h = hypergraphs::acyclic_chain(5, 3, 1);
        assert_eq!(exact_ghw(&h), 1);
    }

    #[test]
    fn clique_hypergraph_ghw_is_ceil_half() {
        for n in [4, 5, 6] {
            let h = hypergraphs::clique(n);
            assert_eq!(exact_ghw(&h), n.div_ceil(2), "clique_{n}");
        }
    }

    #[test]
    fn fig_2_11_hypergraph_has_ghw_2() {
        // Example 5: a cyclic join of three ternary edges; ghw = 2
        // (not acyclic, so > 1; Fig 2.7 exhibits width 2).
        let h = Hypergraph::from_edges(6, [vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]]);
        assert_eq!(exact_ghw(&h), 2);
    }

    #[test]
    fn small_adder_ghw_is_at_most_2() {
        let h = hypergraphs::adder(4);
        let w = exact_ghw(&h);
        assert!((1..=2).contains(&w), "adder ghw = {w}");
    }

    #[test]
    fn returned_ordering_realises_the_width() {
        let h = hypergraphs::clique(6);
        let r = bb_ghw(&h, &BbGhwConfig::default());
        let sigma = EliminationOrdering::new(r.ordering.clone().unwrap()).unwrap();
        let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
        ghd.verify(&h).unwrap();
        assert_eq!(ghd.width(), r.upper_bound);
    }

    #[test]
    fn ablations_agree_on_optimum() {
        for seed in 0..5u64 {
            let h = hypergraphs::random_hypergraph(10, 7, 3, seed);
            let base = exact_ghw(&h);
            for (red, pr2) in [(false, true), (true, false), (false, false)] {
                let cfg = BbGhwConfig {
                    use_reductions: red,
                    use_pr2: pr2,
                    ..BbGhwConfig::default()
                };
                let r = bb_ghw(&h, &cfg);
                assert!(r.exact);
                assert_eq!(r.upper_bound, base, "seed {seed} red={red} pr2={pr2}");
            }
        }
    }

    #[test]
    fn greedy_cover_mode_upper_bounds_exact() {
        for seed in 0..5u64 {
            let h = hypergraphs::random_hypergraph(12, 8, 4, seed);
            let exact = exact_ghw(&h);
            let r = bb_ghw(
                &h,
                &BbGhwConfig {
                    cover: CoverMethod::Greedy,
                    ..BbGhwConfig::default()
                },
            );
            assert!(r.upper_bound >= exact, "seed {seed}");
        }
    }

    #[test]
    fn parallel_root_split_is_width_identical() {
        for seed in 0..5u64 {
            let h = hypergraphs::random_hypergraph(11, 7, 3, seed);
            let seq = bb_ghw(&h, &BbGhwConfig::default());
            for threads in [1, 2, 4] {
                let par = bb_ghw_parallel(&h, &BbGhwConfig::default(), threads);
                assert!(par.exact, "seed {seed} threads {threads}");
                assert_eq!(par.upper_bound, seq.upper_bound, "seed {seed} threads {threads}");
                // the parallel ordering is a genuine witness
                let sigma = EliminationOrdering::new(par.ordering.unwrap()).unwrap();
                let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
                ghd.verify(&h).unwrap();
                assert_eq!(ghd.width(), par.upper_bound, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn cover_cache_reports_hits_and_does_not_change_widths() {
        for seed in 0..4u64 {
            let h = hypergraphs::random_hypergraph(10, 7, 3, seed);
            let with = bb_ghw(&h, &BbGhwConfig::default());
            let without = bb_ghw(
                &h,
                &BbGhwConfig {
                    use_cover_cache: false,
                    ..BbGhwConfig::default()
                },
            );
            assert_eq!(with.upper_bound, without.upper_bound, "seed {seed}");
            assert_eq!(with.exact, without.exact, "seed {seed}");
            assert_eq!(with.ordering, without.ordering, "seed {seed}");
            assert_eq!(with.nodes_expanded, without.nodes_expanded, "seed {seed}");
            assert!(without.cover_cache.is_none());
            if with.nodes_expanded > 0 {
                let stats = with.cover_cache.expect("cache enabled by default");
                assert!(stats.misses > 0, "seed {seed}: {stats:?}");
            }
        }
    }

    #[test]
    fn anytime_mode_reports_consistent_bounds() {
        let h = hypergraphs::grid2d(6);
        let r = bb_ghw(
            &h,
            &BbGhwConfig {
                limits: SearchLimits::with_nodes(100),
                ..BbGhwConfig::default()
            },
        );
        assert!(r.lower_bound <= r.upper_bound);
    }
}
