//! Simple undirected graphs ("regular graphs" in the thesis, Definition 1).
//!
//! Vertices are dense indices `0..n`. The adjacency structure is a bit
//! matrix (one [`BitSet`] row per vertex), giving O(1) edge tests and
//! word-parallel neighbourhood operations — the same representation the
//! thesis uses for its elimination machinery (§5.2.1).

use crate::bitset::BitSet;

/// An undirected graph without self-loops or parallel edges.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adj: Vec<BitSet>,
    m: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            adj: vec![BitSet::new(n); n],
            m: 0,
        }
    }

    /// Creates a graph from an edge list. Duplicate edges and self-loops are
    /// ignored.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Adds the undirected edge `{u, v}`; returns `true` if it is new.
    /// Self-loops are ignored and return `false`.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u < self.n && v < self.n, "vertex out of range");
        if u == v || self.adj[u].contains(v) {
            return false;
        }
        self.adj[u].insert(v);
        self.adj[v].insert(u);
        self.m += 1;
        true
    }

    /// Removes the edge `{u, v}`; returns `true` if it existed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if u == v || !self.adj[u].contains(v) {
            return false;
        }
        self.adj[u].remove(v);
        self.adj[v].remove(u);
        self.m -= 1;
        true
    }

    /// O(1) edge test.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(v)
    }

    /// The neighbourhood of `v` as a bit set.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &BitSet {
        &self.adj[v]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Iterates over all edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n).flat_map(move |u| {
            self.adj[u]
                .iter()
                .filter(move |&v| v > u)
                .map(move |v| (u, v))
        })
    }

    /// `true` iff the vertices of `set` are pairwise adjacent.
    pub fn is_clique(&self, set: &BitSet) -> bool {
        set.iter().all(|u| {
            // every other member of `set` must be a neighbour of u
            let mut others = set.clone();
            others.remove(u);
            others.is_subset(&self.adj[u])
        })
    }

    /// Turns `set` into a clique, returning the number of edges added.
    pub fn make_clique(&mut self, set: &BitSet) -> usize {
        let vs = set.to_vec();
        let mut added = 0;
        for (i, &u) in vs.iter().enumerate() {
            for &v in &vs[i + 1..] {
                if self.add_edge(u, v) {
                    added += 1;
                }
            }
        }
        added
    }

    /// Number of *missing* edges among the neighbours of `v` — the fill-in
    /// count used by the min-fill heuristic (§4.4.2).
    pub fn fill_in_count(&self, v: usize) -> usize {
        let nb = self.adj[v].to_vec();
        let mut missing = 0;
        for (i, &u) in nb.iter().enumerate() {
            for &w in &nb[i + 1..] {
                if !self.adj[u].contains(w) {
                    missing += 1;
                }
            }
        }
        missing
    }

    /// Connected components, each as a sorted vertex list.
    pub fn connected_components(&self) -> Vec<Vec<usize>> {
        let mut seen = BitSet::new(self.n);
        let mut comps = Vec::new();
        for s in 0..self.n {
            if seen.contains(s) {
                continue;
            }
            let mut stack = vec![s];
            let mut comp = Vec::new();
            seen.insert(s);
            while let Some(u) = stack.pop() {
                comp.push(u);
                for v in self.adj[u].iter() {
                    if seen.insert(v) {
                        stack.push(v);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph(n={}, m={})", self.n, self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Graph {
        // 0-1-2 triangle, 3 pendant on 0
        Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (0, 3)])
    }

    #[test]
    fn edge_bookkeeping() {
        let mut g = triangle_plus_pendant();
        assert_eq!(g.num_edges(), 4);
        assert!(!g.add_edge(0, 1)); // duplicate
        assert!(!g.add_edge(2, 2)); // self loop
        assert_eq!(g.num_edges(), 4);
        assert!(g.remove_edge(0, 3));
        assert!(!g.remove_edge(0, 3));
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn edges_iterator_covers_all_once() {
        let g = triangle_plus_pendant();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (0, 2), (0, 3), (1, 2)]);
    }

    #[test]
    fn clique_detection_and_fill() {
        let mut g = triangle_plus_pendant();
        let tri = BitSet::from_iter(4, [0, 1, 2]);
        assert!(g.is_clique(&tri));
        let all = BitSet::full(4);
        assert!(!g.is_clique(&all));
        assert_eq!(g.make_clique(&all), 2); // 1-3 and 2-3 added
        assert!(g.is_clique(&all));
    }

    #[test]
    fn fill_in_count_matches_definition() {
        let g = triangle_plus_pendant();
        // neighbours of 0 are {1,2,3}: pairs (1,2) adjacent, (1,3),(2,3) not
        assert_eq!(g.fill_in_count(0), 2);
        // neighbours of 1 are {0,2}: adjacent
        assert_eq!(g.fill_in_count(1), 0);
        assert_eq!(g.fill_in_count(3), 0);
    }

    #[test]
    fn components() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]);
        let comps = g.connected_components();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }
}
