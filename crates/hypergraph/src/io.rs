//! Parsers and writers for the two benchmark formats used by the thesis:
//! DIMACS graph-coloring files (`.col`) and the CSP hypergraph library's
//! edge-list format (`name(v1,v2,...),`).

use crate::graph::Graph;
use crate::hypergraph::Hypergraph;
use std::collections::HashMap;
use std::fmt::Write as _;

/// An error produced while parsing a benchmark file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number where the problem was found (0 = whole file).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Rejects implausibly large header counts **before** allocating anything
/// proportional to them. A legitimate file with `n` vertices must spell out
/// its edges, so its size is at least a few bytes per vertex mentioned; a
/// header claiming orders of magnitude more vertices than the input could
/// possibly describe is an attack (or corruption), and honouring it would
/// let a 20-byte file allocate gigabytes. The slack term keeps tiny
/// hand-written files (header + isolated vertices) working.
pub fn check_header_count(
    n: usize,
    input_len: usize,
    lineno: usize,
    what: &str,
) -> Result<(), ParseError> {
    let cap = 4096 + input_len.saturating_mul(32);
    if n > cap {
        return Err(err(
            lineno,
            format!("{what} count {n} implausible for a {input_len}-byte input (cap {cap})"),
        ));
    }
    Ok(())
}

/// Parses a DIMACS `.col` graph. Recognises `c` comments, one `p edge N M`
/// problem line and `e u v` edge lines with 1-based vertex indices.
/// Duplicate and mirrored edges are tolerated (they appear in some DIMACS
/// files).
pub fn parse_dimacs(input: &str) -> Result<Graph, ParseError> {
    let mut graph: Option<Graph> = None;
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("p") => {
                if graph.is_some() {
                    return Err(err(lineno, "duplicate problem line"));
                }
                let fmt = it.next().ok_or_else(|| err(lineno, "missing format"))?;
                if fmt != "edge" && fmt != "col" {
                    return Err(err(lineno, format!("unsupported format `{fmt}`")));
                }
                let n: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad vertex count"))?;
                check_header_count(n, input.len(), lineno, "vertex")?;
                let _m = it.next(); // edge count: informative only
                graph = Some(Graph::new(n));
            }
            Some("e") => {
                let g = graph
                    .as_mut()
                    .ok_or_else(|| err(lineno, "edge before problem line"))?;
                let u: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad edge endpoint"))?;
                let v: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "bad edge endpoint"))?;
                if u == 0 || v == 0 || u > g.num_vertices() || v > g.num_vertices() {
                    return Err(err(lineno, "edge endpoint out of range"));
                }
                g.add_edge(u - 1, v - 1);
            }
            Some(other) => return Err(err(lineno, format!("unknown line type `{other}`"))),
            None => unreachable!(),
        }
    }
    graph.ok_or_else(|| err(0, "no problem line found"))
}

/// Serialises a graph in DIMACS `.col` format (1-based vertices).
pub fn write_dimacs(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p edge {} {}", g.num_vertices(), g.num_edges());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "e {} {}", u + 1, v + 1);
    }
    out
}

/// Parses a PACE-2017-style `.gr` graph: `c` comments, one
/// `p tw <N> <M>` problem line, and one `u v` pair per edge line (1-based).
pub fn parse_pace_gr(input: &str) -> Result<Graph, ParseError> {
    let mut graph: Option<Graph> = None;
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("p ") {
            if graph.is_some() {
                return Err(err(lineno, "duplicate problem line"));
            }
            let mut it = rest.split_whitespace();
            let fmt = it.next().ok_or_else(|| err(lineno, "missing descriptor"))?;
            if fmt != "tw" {
                return Err(err(lineno, format!("unsupported descriptor `{fmt}`")));
            }
            let n: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(lineno, "bad vertex count"))?;
            check_header_count(n, input.len(), lineno, "vertex")?;
            graph = Some(Graph::new(n));
            continue;
        }
        let g = graph
            .as_mut()
            .ok_or_else(|| err(lineno, "edge before problem line"))?;
        let mut it = line.split_whitespace();
        let u: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err(lineno, "bad edge endpoint"))?;
        let v: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err(lineno, "bad edge endpoint"))?;
        if u == 0 || v == 0 || u > g.num_vertices() || v > g.num_vertices() {
            return Err(err(lineno, "edge endpoint out of range"));
        }
        g.add_edge(u - 1, v - 1);
    }
    graph.ok_or_else(|| err(0, "no problem line found"))
}

/// Serialises a graph in PACE `.gr` format.
pub fn write_pace_gr(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "p tw {} {}", g.num_vertices(), g.num_edges());
    for (u, v) in g.edges() {
        let _ = writeln!(out, "{} {}", u + 1, v + 1);
    }
    out
}

/// Parses the CSP hypergraph library format: a comma-separated sequence of
/// `edgename(v1,v2,...)` atoms, optionally terminated by `.`; `%` or `#`
/// start comments. Vertex names are arbitrary identifiers and are assigned
/// indices in order of first appearance.
pub fn parse_hypergraph(input: &str) -> Result<Hypergraph, ParseError> {
    // Strip comments line by line, then tokenize the rest as one stream.
    let mut text = String::new();
    for line in input.lines() {
        let line = match line.find(['%', '#']) {
            Some(p) => &line[..p],
            None => line,
        };
        text.push_str(line);
        text.push('\n');
    }

    let mut vertex_ids: HashMap<String, usize> = HashMap::new();
    let mut edges: Vec<(String, Vec<usize>)> = Vec::new();

    let mut chars = text.char_indices().peekable();
    let bytes = &text;
    while let Some(&(start, c)) = chars.peek() {
        if c.is_whitespace() || c == ',' || c == '.' {
            chars.next();
            continue;
        }
        // read edge name up to '(' (lazy lookahead: no per-atom collect,
        // so adversarial inputs cannot make this quadratic)
        let mut name_end = start;
        for (i, ch) in chars.clone() {
            if ch == '(' {
                name_end = i;
                break;
            }
            if ch == ')' || ch == ',' {
                return Err(err(0, "expected `(` after edge name"));
            }
            name_end = i + ch.len_utf8();
        }
        let name = bytes[start..name_end].trim().to_string();
        if name.is_empty() {
            return Err(err(0, "empty edge name"));
        }
        // advance past name and '('
        while let Some(&(_, ch)) = chars.peek() {
            chars.next();
            if ch == '(' {
                break;
            }
        }
        // read vertices up to ')'
        let mut vs = Vec::new();
        let mut cur = String::new();
        let mut closed = false;
        for (_, ch) in chars.by_ref() {
            match ch {
                ')' => {
                    closed = true;
                    break;
                }
                ',' => {
                    let v = cur.trim().to_string();
                    if v.is_empty() {
                        return Err(err(0, format!("empty vertex in edge `{name}`")));
                    }
                    vs.push(v);
                    cur.clear();
                }
                _ => cur.push(ch),
            }
        }
        if !closed {
            return Err(err(0, format!("unterminated edge `{name}`")));
        }
        let last = cur.trim().to_string();
        if !last.is_empty() {
            vs.push(last);
        }
        if vs.is_empty() {
            return Err(err(0, format!("edge `{name}` has no vertices")));
        }
        let mut ids = Vec::with_capacity(vs.len());
        for v in vs {
            let next = vertex_ids.len();
            ids.push(*vertex_ids.entry(v).or_insert(next));
        }
        edges.push((name, ids));
    }

    let mut h = Hypergraph::new(vertex_ids.len());
    let mut names: Vec<(String, usize)> = vertex_ids.into_iter().collect();
    names.sort_by_key(|&(_, id)| id);
    for (name, id) in names {
        h.set_vertex_name(id, name);
    }
    for (name, ids) in edges {
        // ids are dense by construction, but this is the untrusted path:
        // route through the checked builder so an internal inconsistency
        // surfaces as Err, never a panic
        h.try_add_named_edge(name, ids)
            .map_err(|e| err(0, e.to_string()))?;
    }
    Ok(h)
}

/// Serialises a hypergraph in the CSP hypergraph library format.
pub fn write_hypergraph(h: &Hypergraph) -> String {
    let mut out = String::new();
    for e in 0..h.num_edges() {
        if e > 0 {
            out.push_str(",\n");
        }
        let vars: Vec<&str> = h.edge(e).iter().map(|v| h.vertex_name(v)).collect();
        let _ = write!(out, "{}({})", h.edge_name(e), vars.join(","));
    }
    out.push_str(".\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimacs_roundtrip() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let text = write_dimacs(&g);
        let g2 = parse_dimacs(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn dimacs_tolerates_comments_and_duplicates() {
        let text = "c a comment\np edge 3 2\ne 1 2\ne 2 1\ne 2 3\n";
        let g = parse_dimacs(text).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn dimacs_rejects_garbage() {
        assert!(parse_dimacs("e 1 2\n").is_err()); // edge before p
        assert!(parse_dimacs("p edge 2 1\ne 1 5\n").is_err()); // out of range
        assert!(parse_dimacs("p edge x 1\n").is_err());
        assert!(parse_dimacs("").is_err());
    }

    #[test]
    fn pace_gr_roundtrip() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let text = write_pace_gr(&g);
        assert!(text.starts_with("p tw 5 3"));
        let g2 = parse_pace_gr(&text).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn pace_gr_rejects_malformed() {
        assert!(parse_pace_gr("p cep 3 1\n1 2\n").is_err());
        assert!(parse_pace_gr("1 2\n").is_err());
        assert!(parse_pace_gr("p tw 2 1\n1 9\n").is_err());
    }

    #[test]
    fn hypergraph_roundtrip() {
        let text = "C1(x1,x2,x3),\nC2(x1,x5,x6),\nC3(x3,x4,x5).\n";
        let h = parse_hypergraph(text).unwrap();
        assert_eq!(h.num_vertices(), 6);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.vertex_name(0), "x1");
        assert_eq!(h.edge_name(2), "C3");
        let text2 = write_hypergraph(&h);
        let h2 = parse_hypergraph(&text2).unwrap();
        assert_eq!(h2.num_vertices(), h.num_vertices());
        assert_eq!(h2.num_edges(), h.num_edges());
        for e in 0..h.num_edges() {
            assert_eq!(h2.edge(e), h.edge(e));
        }
    }

    #[test]
    fn hypergraph_comments_and_whitespace() {
        let text = "% header\nA( x , y ),\n# trailing\nB(y,z).";
        let h = parse_hypergraph(text).unwrap();
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.vertex_by_name("y"), Some(1));
    }

    #[test]
    fn hypergraph_rejects_malformed() {
        assert!(parse_hypergraph("A(x").is_err());
        assert!(parse_hypergraph("A()").is_err());
        assert!(parse_hypergraph("(x,y)").is_err());
    }

    #[test]
    fn implausible_headers_are_rejected_before_allocation() {
        // a 30-byte file claiming 10^15 vertices must be Err, not an OOM
        assert!(parse_dimacs("p edge 999999999999999 1\n").is_err());
        assert!(parse_pace_gr("p tw 999999999999999 1\n").is_err());
        // a large-but-plausible header still parses (cap scales with input)
        let mut big = String::from("p tw 2000 1999\n");
        for v in 1..2000 {
            big.push_str(&format!("{} {}\n", v, v + 1));
        }
        assert_eq!(parse_pace_gr(&big).unwrap().num_vertices(), 2000);
    }
}
