//! Benchmark-instance generators (see DESIGN.md for the mapping onto the
//! thesis' DIMACS and CSP-hypergraph-library suites).

pub mod graphs;
pub mod hypergraphs;
