//! Generators for the CSP-hypergraph-library families used in the thesis'
//! Tables 7.1–9.2 (DaimlerChrysler circuits, grids, cliques) and synthetic
//! substitutes for the ISCAS circuit instances (see DESIGN.md).

use crate::hypergraph::Hypergraph;
use ghd_prng::rngs::StdRng;
use ghd_prng::seq::index::sample;
use ghd_prng::RngExt;

/// An `n`-bit ripple-carry adder circuit hypergraph (`adder_{n}`).
///
/// Per full-adder cell `i` there are five variables `a_i, b_i, x_i, s_i, c_i`
/// and seven constraints (two primary inputs, one primary output, two XOR
/// gates, the carry majority and the carry link), chained through the carry
/// `c_{i-1} → c_i`; plus the global carry-in `c_0`. Sizes match the
/// DaimlerChrysler instances: |V| = 5n+1, |H| = 7n+1 (adder_75: 376/526,
/// adder_99: 496/694). Its generalized hypertree width is a small constant
/// (the thesis reports ghw upper bound 2).
pub fn adder(n: usize) -> Hypergraph {
    assert!(n >= 1);
    let mut h = Hypergraph::new(5 * n + 1);
    let c0 = 5 * n; // global carry-in, last index
    h.set_vertex_name(c0, "c0");
    h.add_named_edge("carry_in", [c0]);
    for i in 0..n {
        let (a, b, x, s, c) = (5 * i, 5 * i + 1, 5 * i + 2, 5 * i + 3, 5 * i + 4);
        let c_prev = if i == 0 { c0 } else { 5 * (i - 1) + 4 };
        for (v, tag) in [(a, "a"), (b, "b"), (x, "x"), (s, "s"), (c, "c")] {
            h.set_vertex_name(v, format!("{tag}{}", i + 1));
        }
        h.add_named_edge(format!("in_a{}", i + 1), [a]);
        h.add_named_edge(format!("in_b{}", i + 1), [b]);
        h.add_named_edge(format!("out_s{}", i + 1), [s]);
        h.add_named_edge(format!("xor1_{}", i + 1), [a, b, x]);
        h.add_named_edge(format!("xor2_{}", i + 1), [x, c_prev, s]);
        h.add_named_edge(format!("maj_{}", i + 1), [a, b, c_prev, c]);
        h.add_named_edge(format!("lnk_{}", i + 1), [x, c_prev, c]);
    }
    h
}

/// A chained "bridge" circuit hypergraph (`bridge_{n}`): `n` Wheatstone-
/// bridge-shaped cells of nine variables and nine constraints each, linked
/// through an output port, plus a global source and sink. Sizes match the
/// DaimlerChrysler instances: |V| = |H| = 9n+2 (bridge_50: 452/452).
pub fn bridge(n: usize) -> Hypergraph {
    assert!(n >= 1);
    let nv = 9 * n + 2;
    let mut h = Hypergraph::new(nv);
    let src = 9 * n;
    let sink = 9 * n + 1;
    h.set_vertex_name(src, "src");
    h.set_vertex_name(sink, "sink");
    h.add_named_edge("source", [src]);
    let mut port = src;
    for i in 0..n {
        let base = 9 * i;
        // a,b: upper branch; c,d: lower branch; e: crossbar midpoint;
        // f,g,h2: recombination chain; o: output port.
        let [a, b, c, d, e, f, g, h2, o] =
            [0, 1, 2, 3, 4, 5, 6, 7, 8].map(|k| base + k);
        for (v, tag) in [(a, "a"), (b, "b"), (c, "c"), (d, "d"), (e, "e"), (f, "f"), (g, "g"), (h2, "h"), (o, "o")] {
            h.set_vertex_name(v, format!("{tag}{}", i + 1));
        }
        h.add_named_edge(format!("up1_{}", i + 1), [port, a]);
        h.add_named_edge(format!("up2_{}", i + 1), [a, b]);
        h.add_named_edge(format!("lo1_{}", i + 1), [port, c]);
        h.add_named_edge(format!("lo2_{}", i + 1), [c, d]);
        h.add_named_edge(format!("xbar_{}", i + 1), [a, c, e]);
        h.add_named_edge(format!("re1_{}", i + 1), [b, e, f]);
        h.add_named_edge(format!("re2_{}", i + 1), [d, e, g]);
        h.add_named_edge(format!("re3_{}", i + 1), [f, g, h2]);
        h.add_named_edge(format!("out_{}", i + 1), [h2, o]);
        port = o;
    }
    h.add_named_edge("sink", [port, sink]);
    h
}

/// `clique_{n}`: the complete graph K_n viewed as a hypergraph (one binary
/// hyperedge per vertex pair). |V| = n, |H| = n(n−1)/2 (clique_20: 20/190).
/// Its generalized hypertree width is ⌈n/2⌉.
pub fn clique(n: usize) -> Hypergraph {
    Hypergraph::from_edges(
        n,
        (0..n).flat_map(|u| ((u + 1)..n).map(move |v| [u, v])),
    )
}

/// `grid2d_{n}`: the checkerboard hypergraph of an n×n board. Black squares
/// (even coordinate sum) are the variables; each white square is a hyperedge
/// over its (up to four) black orthogonal neighbours. For even n this yields
/// |V| = |H| = n²/2 (grid2d_20: 200/200).
pub fn grid2d(n: usize) -> Hypergraph {
    assert!(n >= 2);
    let mut black_ids = vec![usize::MAX; n * n];
    let mut count = 0;
    for r in 0..n {
        for c in 0..n {
            if (r + c) % 2 == 0 {
                black_ids[r * n + c] = count;
                count += 1;
            }
        }
    }
    let mut h = Hypergraph::new(count);
    for r in 0..n {
        for c in 0..n {
            if (r + c) % 2 == 0 {
                h.set_vertex_name(black_ids[r * n + c], format!("b{r}_{c}"));
            }
        }
    }
    for r in 0..n {
        for c in 0..n {
            if (r + c) % 2 == 1 {
                let mut vs = Vec::new();
                if r > 0 {
                    vs.push(black_ids[(r - 1) * n + c]);
                }
                if r + 1 < n {
                    vs.push(black_ids[(r + 1) * n + c]);
                }
                if c > 0 {
                    vs.push(black_ids[r * n + c - 1]);
                }
                if c + 1 < n {
                    vs.push(black_ids[r * n + c + 1]);
                }
                h.add_named_edge(format!("w{r}_{c}"), vs);
            }
        }
    }
    h
}

/// `grid3d_{n}`: the 3-dimensional checkerboard hypergraph of an n×n×n cube
/// (parity of the coordinate sum splits cells into variables and
/// hyperedges). For even n: |V| = |H| = n³/2 (grid3d_8: 256/256).
pub fn grid3d(n: usize) -> Hypergraph {
    assert!(n >= 2);
    let cell = |x: usize, y: usize, z: usize| (x * n + y) * n + z;
    let mut black_ids = vec![usize::MAX; n * n * n];
    let mut count = 0;
    for x in 0..n {
        for y in 0..n {
            for z in 0..n {
                if (x + y + z) % 2 == 0 {
                    black_ids[cell(x, y, z)] = count;
                    count += 1;
                }
            }
        }
    }
    let mut h = Hypergraph::new(count);
    for x in 0..n {
        for y in 0..n {
            for z in 0..n {
                if (x + y + z) % 2 == 1 {
                    let mut vs = Vec::new();
                    if x > 0 {
                        vs.push(black_ids[cell(x - 1, y, z)]);
                    }
                    if x + 1 < n {
                        vs.push(black_ids[cell(x + 1, y, z)]);
                    }
                    if y > 0 {
                        vs.push(black_ids[cell(x, y - 1, z)]);
                    }
                    if y + 1 < n {
                        vs.push(black_ids[cell(x, y + 1, z)]);
                    }
                    if z > 0 {
                        vs.push(black_ids[cell(x, y, z - 1)]);
                    }
                    if z + 1 < n {
                        vs.push(black_ids[cell(x, y, z + 1)]);
                    }
                    h.add_named_edge(format!("w{x}_{y}_{z}"), vs);
                }
            }
        }
    }
    h
}

/// A seeded synthetic gate-level circuit with exactly `n_vertices` signals
/// and `n_edges` constraints — the substitute for the ISCAS `b0x`/`c499`/
/// `c880` instances (DESIGN.md). A random DAG of gates is built over a set
/// of primary inputs; every gate contributes one hyperedge
/// `{output} ∪ inputs`, and the remaining edge budget becomes unary
/// input/output constraints, exactly the structure of gate-level CNF
/// hypergraphs.
///
/// # Panics
/// Panics unless `n_edges ≥ n_vertices / 4` (enough edges to cover signals)
/// and `n_vertices ≥ 8`.
pub fn random_circuit(n_vertices: usize, n_edges: usize, seed: u64) -> Hypergraph {
    assert!(n_vertices >= 8);
    assert!(n_edges * 4 >= n_vertices, "edge budget too small");
    let mut rng = StdRng::seed_from_u64(seed);
    // Number of unary "stitch" edges needed so gates + stitches = n_edges,
    // with gates = n_vertices - inputs. Choose inputs so stitches ≥ 1.
    let inputs = if n_edges >= n_vertices {
        (n_vertices / 6).max(2)
    } else {
        // fewer edges than vertices: need more primary inputs
        (n_vertices - n_edges + (n_vertices / 6).max(2)).min(n_vertices - 1)
    };
    let gates = n_vertices - inputs;
    let stitches = n_edges - gates;
    let mut h = Hypergraph::new(n_vertices);
    for v in 0..inputs {
        h.set_vertex_name(v, format!("pi{v}"));
    }
    for g in 0..gates {
        let out = inputs + g;
        h.set_vertex_name(out, format!("g{g}"));
        let fanin = rng.random_range(2..=4.min(out));
        let srcs = sample(&mut rng, out, fanin);
        let mut vs: Vec<usize> = srcs.into_iter().collect();
        vs.push(out);
        h.add_named_edge(format!("gate{g}"), vs);
    }
    // Unary stitches on primary inputs first (they would otherwise be
    // uncovered when their fan-out gates miss them), then random signals.
    let mut uncovered: Vec<usize> =
        (0..n_vertices).filter(|&v| h.edges_containing(v).is_empty()).collect();
    assert!(
        uncovered.len() <= stitches,
        "not enough stitch edges to cover all signals"
    );
    let mut s = 0;
    while let Some(v) = uncovered.pop() {
        h.add_named_edge(format!("io{s}"), [v]);
        s += 1;
    }
    while s < stitches {
        let v = rng.random_range(0..n_vertices);
        h.add_named_edge(format!("io{s}"), [v]);
        s += 1;
    }
    h
}

/// A uniformly random hypergraph: `m` hyperedges of cardinality in
/// `2..=max_arity`, with every vertex covered (vertices left uncovered by the
/// random draw are appended round-robin to existing edges).
pub fn random_hypergraph(n: usize, m: usize, max_arity: usize, seed: u64) -> Hypergraph {
    assert!(n >= 2 && m >= 1 && max_arity >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edge_sets: Vec<Vec<usize>> = (0..m)
        .map(|_| {
            let k = rng.random_range(2..=max_arity.min(n));
            sample(&mut rng, n, k).into_iter().collect()
        })
        .collect();
    let mut covered = vec![false; n];
    for e in &edge_sets {
        for &v in e {
            covered[v] = true;
        }
    }
    let mut next_edge = 0;
    for (v, &cov) in covered.iter().enumerate() {
        if !cov {
            edge_sets[next_edge % m].push(v);
            next_edge += 1;
        }
    }
    Hypergraph::from_edges(n, edge_sets)
}

/// An acyclic "caterpillar" hypergraph: a chain of `m` hyperedges of
/// cardinality `arity`, consecutive edges sharing `overlap` vertices. Its
/// generalized hypertree width is 1 (it has a join tree), making it the
/// canonical sanity instance.
pub fn acyclic_chain(m: usize, arity: usize, overlap: usize) -> Hypergraph {
    assert!(m >= 1 && arity >= 2 && overlap < arity);
    let step = arity - overlap;
    let n = arity + step * (m - 1);
    Hypergraph::from_edges(n, (0..m).map(|i| (i * step)..(i * step + arity)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_sizes_match_daimler_chrysler() {
        for (n, v, e) in [(75, 376, 526), (99, 496, 694)] {
            let h = adder(n);
            assert_eq!((h.num_vertices(), h.num_edges()), (v, e), "adder_{n}");
            assert!(h.covers_all_vertices());
        }
    }

    #[test]
    fn bridge_sizes_match_daimler_chrysler() {
        let h = bridge(50);
        assert_eq!((h.num_vertices(), h.num_edges()), (452, 452));
        assert!(h.covers_all_vertices());
    }

    #[test]
    fn clique_and_grids() {
        let h = clique(20);
        assert_eq!((h.num_vertices(), h.num_edges()), (20, 190));
        let g2 = grid2d(20);
        assert_eq!((g2.num_vertices(), g2.num_edges()), (200, 200));
        let g3 = grid3d(8);
        assert_eq!((g3.num_vertices(), g3.num_edges()), (256, 256));
        assert!(g2.covers_all_vertices() && g3.covers_all_vertices());
    }

    #[test]
    fn random_circuit_hits_requested_sizes() {
        for (v, e, seed) in [(48, 50, 1), (170, 179, 2), (168, 169, 3), (189, 200, 4), (202, 243, 5), (383, 443, 6)] {
            let h = random_circuit(v, e, seed);
            assert_eq!((h.num_vertices(), h.num_edges()), (v, e));
            assert!(h.covers_all_vertices());
        }
    }

    #[test]
    fn random_circuit_is_deterministic() {
        let a = random_circuit(100, 110, 9);
        let b = random_circuit(100, 110, 9);
        for e in 0..a.num_edges() {
            assert_eq!(a.edge(e), b.edge(e));
        }
    }

    #[test]
    fn random_hypergraph_covers_everything() {
        let h = random_hypergraph(40, 15, 5, 3);
        assert_eq!(h.num_edges(), 15);
        assert!(h.covers_all_vertices());
    }

    #[test]
    fn acyclic_chain_shape() {
        let h = acyclic_chain(5, 3, 1);
        assert_eq!(h.num_vertices(), 3 + 2 * 4);
        assert_eq!(h.num_edges(), 5);
        // consecutive edges intersect, non-consecutive don't
        assert_eq!(h.edge(0).intersection_len(h.edge(1)), 1);
        assert_eq!(h.edge(0).intersection_len(h.edge(2)), 0);
    }
}
