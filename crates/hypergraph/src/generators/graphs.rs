//! Deterministic and seeded-random graph families used in the thesis'
//! evaluation (Tables 5.1, 5.2, 6.x).
//!
//! `grid`, `queen` and `mycielski` are exact mathematical constructions and
//! regenerate the DIMACS instances of the same name bit-for-bit in size.
//! `gnm_random` and `random_geometric` are the *distributional* substitutes
//! documented in DESIGN.md for instances whose raw data is not shippable
//! (DSJC*, miles*, book graphs, …).

use crate::graph::Graph;
use ghd_prng::rngs::StdRng;
use ghd_prng::seq::SliceRandom;
use ghd_prng::RngExt;

/// The n×n grid graph (`grid{n}` in Table 5.2). Its treewidth is exactly `n`
/// for n ≥ 2 ("it is folklore that the treewidth of an n×n-grid is n").
pub fn grid(n: usize) -> Graph {
    let idx = |r: usize, c: usize| r * n + c;
    let mut g = Graph::new(n * n);
    for r in 0..n {
        for c in 0..n {
            if c + 1 < n {
                g.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < n {
                g.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    g
}

/// The n×n×n cubic grid graph.
pub fn grid3d(n: usize) -> Graph {
    let idx = |x: usize, y: usize, z: usize| (x * n + y) * n + z;
    let mut g = Graph::new(n * n * n);
    for x in 0..n {
        for y in 0..n {
            for z in 0..n {
                if x + 1 < n {
                    g.add_edge(idx(x, y, z), idx(x + 1, y, z));
                }
                if y + 1 < n {
                    g.add_edge(idx(x, y, z), idx(x, y + 1, z));
                }
                if z + 1 < n {
                    g.add_edge(idx(x, y, z), idx(x, y, z + 1));
                }
            }
        }
    }
    g
}

/// The n-queens graph (`queen{n}_{n}` in DIMACS): one vertex per square of an
/// n×n board, edges between squares sharing a row, column or diagonal.
pub fn queen(n: usize) -> Graph {
    let idx = |r: usize, c: usize| r * n + c;
    let mut g = Graph::new(n * n);
    for r1 in 0..n {
        for c1 in 0..n {
            for r2 in 0..n {
                for c2 in 0..n {
                    if (r1, c1) >= (r2, c2) {
                        continue;
                    }
                    let same_row = r1 == r2;
                    let same_col = c1 == c2;
                    let same_diag =
                        r1 as isize - r2 as isize == c1 as isize - c2 as isize
                            || r1 as isize - r2 as isize == c2 as isize - c1 as isize;
                    if same_row || same_col || same_diag {
                        g.add_edge(idx(r1, c1), idx(r2, c2));
                    }
                }
            }
        }
    }
    g
}

/// The Mycielski transformation M(G): for G with vertices `0..n` produce a
/// triangle-free-preserving graph on `2n+1` vertices with chromatic number
/// χ(G)+1.
pub fn mycielski_step(g: &Graph) -> Graph {
    let n = g.num_vertices();
    let mut out = Graph::new(2 * n + 1);
    let w = 2 * n; // the apex
    for (u, v) in g.edges() {
        out.add_edge(u, v);
        out.add_edge(u, n + v); // u — v'
        out.add_edge(v, n + u); // v — u'
    }
    for u in 0..n {
        out.add_edge(n + u, w);
    }
    out
}

/// The DIMACS `myciel{k}` family: `myciel2` is C₅… more precisely, DIMACS
/// defines `myciel3` as the Mycielskian of C₅ (the Grötzsch graph, 11
/// vertices / 20 edges) and `myciel{k+1} = M(myciel{k})`.
///
/// # Panics
/// Panics for `k < 3`.
pub fn mycielski(k: usize) -> Graph {
    assert!(k >= 3, "myciel_k defined for k >= 3");
    let mut g = cycle(5);
    for _ in 3..=k {
        g = mycielski_step(&g);
    }
    g
}

/// The complete graph K_n.
pub fn complete(n: usize) -> Graph {
    Graph::from_edges(n, (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v))))
}

/// The cycle C_n.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3);
    Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
}

/// The path P_n (n vertices, n−1 edges).
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|i| (i - 1, i)))
}

/// A uniformly random graph with exactly `m` distinct edges (Erdős–Rényi
/// G(n, m)), drawn reproducibly from `seed`. Substitutes the DSJC/le450/…
/// random DIMACS instances (see DESIGN.md).
///
/// # Panics
/// Panics if `m` exceeds the number of vertex pairs.
pub fn gnm_random(n: usize, m: usize, seed: u64) -> Graph {
    let max = n * (n - 1) / 2;
    assert!(m <= max, "too many edges requested");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    if m > max / 2 {
        // dense case: shuffle all pairs and take a prefix
        let mut pairs: Vec<(usize, usize)> =
            (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u, v))).collect();
        pairs.shuffle(&mut rng);
        for &(u, v) in pairs.iter().take(m) {
            g.add_edge(u, v);
        }
    } else {
        // sparse case: rejection sampling
        while g.num_edges() < m {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            if u != v {
                g.add_edge(u.min(v), u.max(v));
            }
        }
    }
    g
}

/// A random geometric graph: `n` points uniform in the unit square, edges
/// between pairs within distance `radius`. Substitutes the `miles*` DIMACS
/// instances (road-distance graphs), which are geometric in nature.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();
    let r2 = radius * radius;
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            if dx * dx + dy * dy <= r2 {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// A random geometric graph tuned by bisection on the radius to have
/// approximately `target_m` edges (within ~2 %).
pub fn random_geometric_with_edges(n: usize, target_m: usize, seed: u64) -> Graph {
    let (mut lo, mut hi) = (0.0f64, std::f64::consts::SQRT_2);
    let mut best = random_geometric(n, hi, seed);
    for _ in 0..40 {
        let mid = (lo + hi) / 2.0;
        let g = random_geometric(n, mid, seed);
        let m = g.num_edges();
        if m.abs_diff(target_m) * 50 <= target_m.max(1) {
            return g;
        }
        if m < target_m {
            lo = mid;
        } else {
            hi = mid;
        }
        if m.abs_diff(target_m) < best.num_edges().abs_diff(target_m) {
            best = g;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_sizes_match_table_5_2() {
        for (n, v, e) in [(2, 4, 4), (3, 9, 12), (4, 16, 24), (5, 25, 40), (6, 36, 60), (7, 49, 84), (8, 64, 112)] {
            let g = grid(n);
            assert_eq!((g.num_vertices(), g.num_edges()), (v, e), "grid{n}");
        }
    }

    #[test]
    fn queen_sizes_match_table_5_1() {
        // Table 5.1 reports the DIMACS *edge line* counts, which list every
        // edge in both directions; the simple graph has half as many.
        for (n, v, e2) in [(5, 25, 320), (6, 36, 580), (7, 49, 952), (8, 64, 1456)] {
            let g = queen(n);
            assert_eq!((g.num_vertices(), 2 * g.num_edges()), (v, e2), "queen{n}_{n}");
        }
    }

    #[test]
    fn mycielski_sizes_match_dimacs() {
        for (k, v, e) in [(3, 11, 20), (4, 23, 71), (5, 47, 236), (6, 95, 755), (7, 191, 2360)] {
            let g = mycielski(k);
            assert_eq!((g.num_vertices(), g.num_edges()), (v, e), "myciel{k}");
        }
    }

    #[test]
    fn basic_families() {
        assert_eq!(complete(6).num_edges(), 15);
        assert_eq!(cycle(7).num_edges(), 7);
        assert_eq!(path(7).num_edges(), 6);
        assert_eq!(grid3d(3).num_vertices(), 27);
        assert_eq!(grid3d(3).num_edges(), 54);
    }

    #[test]
    fn gnm_exact_edge_count_and_determinism() {
        let g1 = gnm_random(50, 300, 42);
        let g2 = gnm_random(50, 300, 42);
        assert_eq!(g1.num_edges(), 300);
        assert_eq!(g1, g2);
        let dense = gnm_random(20, 180, 1);
        assert_eq!(dense.num_edges(), 180);
        let g3 = gnm_random(50, 300, 43);
        assert_ne!(g1, g3); // different seed, almost surely different graph
    }

    #[test]
    fn geometric_edge_targeting() {
        let g = random_geometric_with_edges(128, 774, 9); // miles250 shape
        let m = g.num_edges();
        assert!(m.abs_diff(774) * 10 <= 774, "got {m} edges");
    }
}
