//! Safe-separator decompositions of the primal graph.
//!
//! Treewidth decomposes along three kinds of separator without losing
//! exactness: connected components (no separator at all), cut vertices
//! (Tarjan's biconnected components), and clique minimal separators
//! (Tarjan's clique-separator decomposition, here computed via the MCS-M
//! minimal triangulation of Berry–Blair–Heggernes–Peyton and the atom
//! extraction of Berry–Pogorelcnik–Simonet). For every kind,
//! `tw(G) = max` over the blocks, each block being an *induced* subgraph
//! of `G` that contains its separator as a clique — so per-block lower
//! bounds are sound for the whole instance and per-block decompositions
//! glue back together at a separator bag.
//!
//! All routines are deterministic: ties break toward the smallest vertex
//! index and every returned vertex list is sorted.

use crate::bitset::BitSet;
use crate::graph::Graph;
use crate::hypergraph::Hypergraph;

/// Connected components of a hypergraph (vertices connected iff they
/// co-occur in a hyperedge), each as a sorted vertex list, in order of
/// their smallest vertex. Runs in time linear in the incidence size —
/// the primal graph is never materialised.
pub fn hypergraph_components(h: &Hypergraph) -> Vec<Vec<usize>> {
    let n = h.num_vertices();
    let mut seen_v = BitSet::new(n);
    let mut seen_e = BitSet::new(h.num_edges());
    let mut comps = Vec::new();
    for s in 0..n {
        if seen_v.contains(s) {
            continue;
        }
        let mut stack = vec![s];
        let mut comp = Vec::new();
        seen_v.insert(s);
        while let Some(u) = stack.pop() {
            comp.push(u);
            for &e in h.edges_containing(u) {
                if !seen_e.insert(e) {
                    continue;
                }
                for v in h.edge(e).iter() {
                    if seen_v.insert(v) {
                        stack.push(v);
                    }
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

/// The block–cut structure of a graph: biconnected components (each a
/// sorted vertex list; cut vertices appear in every block they join) and
/// the sorted list of cut vertices. Isolated vertices form singleton
/// blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockCut {
    /// Biconnected blocks as sorted vertex lists.
    pub blocks: Vec<Vec<usize>>,
    /// Articulation points, sorted.
    pub cut_vertices: Vec<usize>,
}

/// Tarjan's biconnected-component decomposition, iterative (no recursion,
/// so deep paths cannot overflow the stack). Linear in `n + m`.
pub fn biconnected_components(g: &Graph) -> BlockCut {
    let n = g.num_vertices();
    let adj: Vec<Vec<usize>> = (0..n).map(|v| g.neighbors(v).to_vec()).collect();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut parent = vec![usize::MAX; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0usize;
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    let mut edge_stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if disc[root] != usize::MAX {
            continue;
        }
        if adj[root].is_empty() {
            disc[root] = timer;
            timer += 1;
            blocks.push(vec![root]);
            continue;
        }
        let mut root_children = 0usize;
        disc[root] = timer;
        low[root] = timer;
        timer += 1;
        // (vertex, index of the next neighbour to visit)
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(top) = stack.last_mut() {
            let u = top.0;
            if top.1 < adj[u].len() {
                let v = adj[u][top.1];
                top.1 += 1;
                if disc[v] == usize::MAX {
                    parent[v] = u;
                    if u == root {
                        root_children += 1;
                    }
                    disc[v] = timer;
                    low[v] = timer;
                    timer += 1;
                    edge_stack.push((u, v));
                    stack.push((v, 0));
                } else if v != parent[u] && disc[v] < disc[u] {
                    // back edge to a strict ancestor; the symmetric visit
                    // from the descendant side is skipped by the disc test
                    edge_stack.push((u, v));
                    low[u] = low[u].min(disc[v]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p] = low[p].min(low[u]);
                    if low[u] >= disc[p] {
                        // the tree edge (p, u) closes a block
                        if p != root {
                            is_cut[p] = true;
                        }
                        let mut verts = BitSet::new(n);
                        while let Some(&(a, b)) = edge_stack.last() {
                            edge_stack.pop();
                            verts.insert(a);
                            verts.insert(b);
                            if (a, b) == (p, u) {
                                break;
                            }
                        }
                        blocks.push(verts.to_vec());
                    }
                }
            }
        }
        if root_children >= 2 {
            is_cut[root] = true;
        }
    }
    let cut_vertices = (0..n).filter(|&v| is_cut[v]).collect();
    BlockCut { blocks, cut_vertices }
}

/// Result of the clique-minimal-separator decomposition: the atoms (each
/// an inclusion-maximal induced subgraph without a clique separator) and
/// the clique separators the decomposition split on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliqueAtoms {
    /// Atoms as sorted vertex lists. Every vertex of the input appears in
    /// at least one atom; each separator appears in the atoms it joins.
    pub atoms: Vec<Vec<usize>>,
    /// The clique separators split on, sorted vertex lists, in the order
    /// they were applied.
    pub separators: Vec<Vec<usize>>,
}

/// MCS-M (Berry, Blair, Heggernes, Peyton 2004): a minimal triangulation
/// of `g` together with the order in which vertices were numbered
/// (first-numbered first; the meo visits this in reverse).
///
/// The inner reachability question — "is there a path from the chosen
/// vertex to `u` through unnumbered vertices all of weight `< w(u)`?" —
/// is answered with a bottleneck (minimax) Dijkstra over the unnumbered
/// subgraph, which is exact and keeps the whole routine `O(n·m log n)`
/// in the worst case; the cores this runs on are small.
fn mcs_m(g: &Graph) -> (Vec<usize>, Graph) {
    let n = g.num_vertices();
    let mut fill = g.clone();
    let mut weight = vec![0usize; n];
    let mut numbered = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut dist = vec![usize::MAX; n];
    let mut done = vec![false; n];
    for _ in 0..n {
        let v = (0..n)
            .filter(|&u| !numbered[u])
            .max_by_key(|&u| (weight[u], std::cmp::Reverse(u)))
            .expect("an unnumbered vertex remains");
        // minimax internal weight of paths from v through unnumbered vertices
        for u in 0..n {
            dist[u] = usize::MAX;
            done[u] = false;
        }
        dist[v] = 0;
        loop {
            let mut best = usize::MAX;
            let mut bu = usize::MAX;
            for u in 0..n {
                if !numbered[u] && !done[u] && dist[u] < best {
                    best = dist[u];
                    bu = u;
                }
            }
            if bu == usize::MAX {
                break;
            }
            done[bu] = true;
            // extending a path past bu makes bu internal (unless bu == v)
            let through = if bu == v { 0 } else { dist[bu].max(weight[bu]) };
            for w in g.neighbors(bu).iter() {
                if !numbered[w] && !done[w] && through < dist[w] {
                    dist[w] = through;
                }
            }
        }
        for u in 0..n {
            if u == v || numbered[u] {
                continue;
            }
            // reachable with every internal weight strictly below w(u)
            // (a direct edge has no internal vertices: dist == 0 via v)
            if g.has_edge(u, v) || (dist[u] != usize::MAX && dist[u] < weight[u]) {
                weight[u] += 1;
                fill.add_edge(u, v);
            }
        }
        numbered[v] = true;
        order.push(v);
    }
    (order, fill)
}

/// Clique-minimal-separator decomposition (Berry–Pogorelcnik–Simonet,
/// Algorithms 2010): walks the MCS-M meo and splits off the component of
/// each vertex whose higher-numbered fill neighbourhood is a clique in
/// `g`. Splitting only on verified clique separators keeps the
/// decomposition sound even where the triangulation is conservative.
pub fn clique_separator_atoms(g: &Graph) -> CliqueAtoms {
    let n = g.num_vertices();
    let (order, fill) = mcs_m(g);
    // rank = position in the MCS-M numbering; vertices chosen earlier are
    // numbered higher, and madj(x) keeps only those (BPS Algorithm 3).
    let mut chosen_at = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        chosen_at[v] = i;
    }
    let mut alive = BitSet::full(n);
    let mut atoms = Vec::new();
    let mut separators = Vec::new();
    for &x in order.iter().rev() {
        if !alive.contains(x) {
            continue;
        }
        let mut sep = BitSet::new(n);
        for u in fill.neighbors(x).iter() {
            if chosen_at[u] < chosen_at[x] {
                sep.insert(u);
            }
        }
        sep.intersect_with(&alive);
        if !g.is_clique(&sep) {
            continue;
        }
        // component of G[alive \ sep] containing x
        let mut comp = BitSet::new(n);
        comp.insert(x);
        let mut stack = vec![x];
        while let Some(u) = stack.pop() {
            for w in g.neighbors(u).iter() {
                if alive.contains(w) && !sep.contains(w) && comp.insert(w) {
                    stack.push(w);
                }
            }
        }
        if comp.len() + sep.len() >= alive.len() {
            continue; // sep does not separate what is left
        }
        let mut atom = comp.clone();
        atom.union_with(&sep);
        atoms.push(atom);
        separators.push(sep.to_vec());
        alive.difference_with(&comp);
    }
    atoms.push(alive);
    // A conservative neighbourhood (not a *minimal* separator) can split
    // off an atom nested inside a later one; nested atoms are sound but
    // redundant, so drop any atom contained in another, along with the
    // separator that produced it (atom i was split off by separator i;
    // the final atom has none).
    let keep: Vec<bool> = atoms
        .iter()
        .enumerate()
        .map(|(i, a)| {
            !atoms
                .iter()
                .enumerate()
                .any(|(j, b)| j != i && a.is_subset(b) && (a.len() < b.len() || j < i))
        })
        .collect();
    let kept_separators = separators
        .into_iter()
        .enumerate()
        .filter(|(i, _)| keep[*i])
        .map(|(_, s)| s)
        .collect();
    let kept_atoms = atoms
        .iter()
        .enumerate()
        .filter(|(i, _)| keep[*i])
        .map(|(_, a)| a.to_vec())
        .collect();
    CliqueAtoms { atoms: kept_atoms, separators: kept_separators }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles_sharing_vertex() -> Graph {
        // 0-1-2 triangle and 2-3-4 triangle share cut vertex 2
        Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
    }

    #[test]
    fn hypergraph_components_follow_shared_edges() {
        let h = Hypergraph::from_edges(7, [vec![0, 1, 2], vec![2, 3], vec![4, 5]]);
        assert_eq!(
            hypergraph_components(&h),
            vec![vec![0, 1, 2, 3], vec![4, 5], vec![6]]
        );
    }

    #[test]
    fn bcc_of_two_triangles() {
        let bc = biconnected_components(&two_triangles_sharing_vertex());
        assert_eq!(bc.cut_vertices, vec![2]);
        assert_eq!(bc.blocks.len(), 2);
        let mut blocks = bc.blocks.clone();
        blocks.sort();
        assert_eq!(blocks, vec![vec![0, 1, 2], vec![2, 3, 4]]);
    }

    #[test]
    fn bcc_of_a_path_splits_every_edge() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let bc = biconnected_components(&g);
        assert_eq!(bc.cut_vertices, vec![1, 2]);
        let mut blocks = bc.blocks;
        blocks.sort();
        assert_eq!(blocks, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
    }

    #[test]
    fn bcc_of_a_cycle_is_one_block_no_cuts() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let bc = biconnected_components(&g);
        assert!(bc.cut_vertices.is_empty());
        assert_eq!(bc.blocks, vec![vec![0, 1, 2, 3, 4]]);
    }

    #[test]
    fn bcc_handles_isolated_vertices_and_components() {
        let g = Graph::from_edges(5, [(1, 2), (3, 4)]);
        let bc = biconnected_components(&g);
        assert!(bc.cut_vertices.is_empty());
        let mut blocks = bc.blocks;
        blocks.sort();
        assert_eq!(blocks, vec![vec![0], vec![1, 2], vec![3, 4]]);
    }

    #[test]
    fn every_edge_lands_in_exactly_one_block() {
        // two 4-cycles joined by a bridge, plus a pendant
        let g = Graph::from_edges(
            9,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
                (0, 8),
            ],
        );
        let bc = biconnected_components(&g);
        assert_eq!(bc.cut_vertices, vec![0, 3, 4]);
        let mut covered = 0usize;
        for block in &bc.blocks {
            let set = BitSet::from_iter(9, block.iter().copied());
            covered += g
                .edges()
                .filter(|&(u, v)| set.contains(u) && set.contains(v))
                .count();
        }
        assert_eq!(covered, g.num_edges(), "blocks partition the edge set");
    }

    #[test]
    fn clique_atoms_split_on_an_edge_separator() {
        // two 4-cliques sharing the edge {3, 4}: the shared edge is a
        // clique minimal separator, the atoms are the two cliques
        let mut g = Graph::new(6);
        g.make_clique(&BitSet::from_iter(6, [0, 1, 3, 4]));
        g.make_clique(&BitSet::from_iter(6, [2, 3, 4, 5]));
        let ca = clique_separator_atoms(&g);
        let mut atoms = ca.atoms.clone();
        atoms.sort();
        assert_eq!(atoms, vec![vec![0, 1, 3, 4], vec![2, 3, 4, 5]]);
        // the separator split on need not be the minimal {3,4}, but it
        // must be a clique containing it
        assert_eq!(ca.separators.len(), 1);
        let sep = BitSet::from_iter(6, ca.separators[0].iter().copied());
        assert!(g.is_clique(&sep));
        assert!(sep.contains(3) && sep.contains(4));
    }

    #[test]
    fn clique_atoms_leave_a_cycle_whole() {
        // C5 is chordless: no clique separator, a single atom
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let ca = clique_separator_atoms(&g);
        assert_eq!(ca.atoms, vec![vec![0, 1, 2, 3, 4]]);
        assert!(ca.separators.is_empty());
    }

    #[test]
    fn clique_atoms_cover_vertices_and_edges() {
        // a blocky graph: triangle - edge sep - square - cut vertex - triangle
        let g = Graph::from_edges(
            8,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 3),
                (6, 7),
                (7, 3),
            ],
        );
        let ca = clique_separator_atoms(&g);
        assert!(ca.atoms.len() >= 2, "blocky graph must split: {:?}", ca.atoms);
        // every vertex in some atom
        let mut seen = BitSet::new(8);
        for atom in &ca.atoms {
            for &v in atom {
                seen.insert(v);
            }
        }
        assert_eq!(seen.len(), 8);
        // every edge inside some atom
        for (u, v) in g.edges() {
            assert!(
                ca.atoms.iter().any(|a| a.contains(&u) && a.contains(&v)),
                "edge ({u},{v}) not covered by any atom"
            );
        }
        // every separator is a clique
        for sep in &ca.separators {
            assert!(g.is_clique(&BitSet::from_iter(8, sep.iter().copied())));
        }
    }

    #[test]
    fn clique_atoms_on_chordal_graph_are_maximal_cliques() {
        // a chordal graph: triangles 0-1-2, 1-2-3, 3-4-5 (cut vertex 3)
        let g = Graph::from_edges(
            6,
            [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4), (3, 5), (4, 5)],
        );
        let ca = clique_separator_atoms(&g);
        let mut atoms = ca.atoms.clone();
        atoms.sort();
        assert_eq!(atoms, vec![vec![0, 1, 2], vec![1, 2, 3], vec![3, 4, 5]]);
    }
}
