//! A compact, fixed-capacity bit set used for adjacency rows and vertex sets.
//!
//! Graph algorithms in this workspace spend most of their time testing and
//! merging vertex sets, so the representation is a plain `Vec<u64>` with
//! branch-free word operations (see the Rust Performance Book's advice on
//! keeping hot data dense).

/// A set of `usize` values in `0..capacity`, stored one bit per value.
///
/// All binary operations (`union_with`, `intersect_with`, …) require both
/// operands to have the same capacity; this is an invariant of the graph
/// code, enforced with debug assertions.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    blocks: Vec<u64>,
    capacity: usize,
}

const BITS: usize = 64;

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            blocks: vec![0; capacity.div_ceil(BITS)],
            capacity,
        }
    }

    /// Creates a set containing every value in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for i in 0..capacity {
            s.insert(i);
        }
        s
    }

    /// Builds a set from an iterator of elements.
    pub fn from_iter<I: IntoIterator<Item = usize>>(capacity: usize, iter: I) -> Self {
        let mut s = Self::new(capacity);
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// The exclusive upper bound on storable values.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `v`, returning `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, v: usize) -> bool {
        debug_assert!(v < self.capacity);
        let (b, m) = (v / BITS, 1u64 << (v % BITS));
        let fresh = self.blocks[b] & m == 0;
        self.blocks[b] |= m;
        fresh
    }

    /// Removes `v`, returning `true` if it was present.
    #[inline]
    pub fn remove(&mut self, v: usize) -> bool {
        debug_assert!(v < self.capacity);
        let (b, m) = (v / BITS, 1u64 << (v % BITS));
        let present = self.blocks[b] & m != 0;
        self.blocks[b] &= !m;
        present
    }

    /// Tests membership of `v`.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        debug_assert!(v < self.capacity);
        self.blocks[v / BITS] & (1u64 << (v % BITS)) != 0
    }

    /// Number of elements in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// `true` iff the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// Makes `self` an exact copy of `other`, reusing the existing block
    /// allocation whenever it is large enough (a `clone_from` that scratch
    /// buffers can rely on not to allocate in the steady state).
    pub fn copy_from(&mut self, other: &BitSet) {
        self.blocks.clear();
        self.blocks.extend_from_slice(&other.blocks);
        self.capacity = other.capacity;
    }

    /// Empties the set and re-dimensions it for values in `0..capacity`,
    /// reusing the existing block allocation whenever possible.
    pub fn reset(&mut self, capacity: usize) {
        self.blocks.clear();
        self.blocks.resize(capacity.div_ceil(BITS), 0);
        self.capacity = capacity;
    }

    /// In-place union: `self ∪= other`.
    pub fn union_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= *b;
        }
    }

    /// In-place intersection: `self ∩= other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= *b;
        }
    }

    /// In-place difference: `self −= other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !*b;
        }
    }

    /// `true` iff `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.blocks.iter().zip(&other.blocks).all(|(a, b)| a & !b == 0)
    }

    /// `true` iff the sets share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        self.blocks.iter().zip(&other.blocks).all(|(a, b)| a & b == 0)
    }

    /// Size of the intersection, without materialising it.
    pub fn intersection_len(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Count of elements in `self` that are *not* in `other`.
    pub fn difference_len(&self, other: &BitSet) -> usize {
        debug_assert_eq!(self.capacity, other.capacity);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Smallest element, if any.
    pub fn min(&self) -> Option<usize> {
        self.iter().next()
    }

    /// The raw 64-bit blocks (low to high) — used as a compact hash key.
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// Iterates over elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Collects the elements into a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set whose capacity is one past the maximum element.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().copied().max().map_or(0, |m| m + 1);
        BitSet::from_iter(cap, items)
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
pub struct Iter<'a> {
    set: &'a BitSet,
    block_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let tz = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                return Some(self.block_idx * BITS + tz);
            }
            self.block_idx += 1;
            if self.block_idx >= self.set.blocks.len() {
                return None;
            }
            self.current = self.set.blocks[self.block_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iteration_order_is_sorted() {
        let s = BitSet::from_iter(200, [150, 3, 64, 63, 65, 0]);
        assert_eq!(s.to_vec(), vec![0, 3, 63, 64, 65, 150]);
    }

    #[test]
    fn set_algebra() {
        let a = BitSet::from_iter(100, [1, 2, 3, 70]);
        let b = BitSet::from_iter(100, [2, 3, 4, 71]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![1, 2, 3, 4, 70, 71]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![2, 3]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1, 70]);
        assert!(i.is_subset(&a) && i.is_subset(&b));
        assert!(!a.is_subset(&b));
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(a.difference_len(&b), 2);
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(67);
        assert_eq!(s.len(), 67);
        assert!(s.contains(66));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
    }

    #[test]
    fn disjoint() {
        let a = BitSet::from_iter(10, [1, 3]);
        let b = BitSet::from_iter(10, [2, 4]);
        assert!(a.is_disjoint(&b));
        let c = BitSet::from_iter(10, [3]);
        assert!(!a.is_disjoint(&c));
    }

    #[test]
    fn empty_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }
}
