//! Hypergraphs (Definition 2) with primal/Gaifman (Definition 3) and dual
//! (Definition 4) graph construction.

use crate::bitset::BitSet;
use crate::graph::Graph;

/// Typed error for checked hypergraph construction ([`Hypergraph::try_add_edge`]
/// / [`Hypergraph::try_from_edges`]). The panicking builders ([`Hypergraph::add_edge`])
/// remain for internal generators, whose inputs are correct by construction;
/// everything that touches *untrusted* data (file parsers, network input)
/// must go through the checked path so a malformed edge list becomes an
/// `Err`, not a process abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HypergraphError {
    /// A hyperedge references vertex `vertex`, but only `n` vertices exist.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: usize,
        /// Number of vertices in the hypergraph.
        n: usize,
    },
}

impl std::fmt::Display for HypergraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HypergraphError::VertexOutOfRange { vertex, n } => {
                write!(f, "hyperedge vertex {vertex} out of range (n = {n})")
            }
        }
    }
}

impl std::error::Error for HypergraphError {}

/// A hypergraph `H = (V, H)`: vertices are dense indices `0..n`, hyperedges
/// are vertex sets. Vertices and hyperedges may carry names (for parsed
/// benchmark instances); generated instances get systematic names.
#[derive(Clone)]
pub struct Hypergraph {
    n: usize,
    vertex_names: Vec<String>,
    edges: Vec<BitSet>,
    edge_names: Vec<String>,
    /// `incidence[v]` = indices of hyperedges containing `v`.
    incidence: Vec<Vec<usize>>,
}

impl Hypergraph {
    /// Creates a hypergraph with `n` vertices named `v0..v{n-1}` and no
    /// hyperedges.
    pub fn new(n: usize) -> Self {
        Hypergraph {
            n,
            vertex_names: (0..n).map(|i| format!("v{i}")).collect(),
            edges: Vec::new(),
            edge_names: Vec::new(),
            incidence: vec![Vec::new(); n],
        }
    }

    /// Builds a hypergraph from hyperedges given as vertex lists.
    pub fn from_edges<I, E>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = E>,
        E: IntoIterator<Item = usize>,
    {
        let mut h = Hypergraph::new(n);
        for e in edges {
            h.add_edge(e);
        }
        h
    }

    /// Views a regular graph as a hypergraph whose hyperedges are the graph's
    /// edges (§2.1: "every graph may be regarded as hypergraph").
    pub fn from_graph(g: &Graph) -> Self {
        Hypergraph::from_edges(g.num_vertices(), g.edges().map(|(u, v)| [u, v]))
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of hyperedges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a hyperedge; duplicate vertices within the edge are collapsed.
    /// Returns its index.
    ///
    /// Panics when a vertex is out of range — for *internal* construction
    /// (generators, tests) where that is a programming error. Parsers of
    /// untrusted input must use [`Hypergraph::try_add_edge`] instead.
    pub fn add_edge<E: IntoIterator<Item = usize>>(&mut self, vertices: E) -> usize {
        self.try_add_edge(vertices)
            .expect("hyperedge vertex out of range")
    }

    /// Checked [`Hypergraph::add_edge`]: rejects out-of-range vertices with
    /// a typed error instead of panicking, leaving the hypergraph unchanged.
    /// This is the construction path for untrusted (parsed) edge lists.
    pub fn try_add_edge<E: IntoIterator<Item = usize>>(
        &mut self,
        vertices: E,
    ) -> Result<usize, HypergraphError> {
        let idx = self.edges.len();
        let mut set = BitSet::new(self.n);
        for v in vertices {
            if v >= self.n {
                return Err(HypergraphError::VertexOutOfRange { vertex: v, n: self.n });
            }
            set.insert(v);
        }
        for v in set.iter() {
            self.incidence[v].push(idx);
        }
        self.edges.push(set);
        self.edge_names.push(format!("e{idx}"));
        Ok(idx)
    }

    /// Checked [`Hypergraph::from_edges`] for untrusted edge lists.
    pub fn try_from_edges<I, E>(n: usize, edges: I) -> Result<Self, HypergraphError>
    where
        I: IntoIterator<Item = E>,
        E: IntoIterator<Item = usize>,
    {
        let mut h = Hypergraph::new(n);
        for e in edges {
            h.try_add_edge(e)?;
        }
        Ok(h)
    }

    /// Adds a named hyperedge.
    pub fn add_named_edge<E: IntoIterator<Item = usize>>(
        &mut self,
        name: impl Into<String>,
        vertices: E,
    ) -> usize {
        let idx = self.add_edge(vertices);
        self.edge_names[idx] = name.into();
        idx
    }

    /// Checked [`Hypergraph::add_named_edge`] for untrusted edge lists.
    pub fn try_add_named_edge<E: IntoIterator<Item = usize>>(
        &mut self,
        name: impl Into<String>,
        vertices: E,
    ) -> Result<usize, HypergraphError> {
        let idx = self.try_add_edge(vertices)?;
        self.edge_names[idx] = name.into();
        Ok(idx)
    }

    /// Renames vertex `v`.
    pub fn set_vertex_name(&mut self, v: usize, name: impl Into<String>) {
        self.vertex_names[v] = name.into();
    }

    /// Name of vertex `v`.
    pub fn vertex_name(&self, v: usize) -> &str {
        &self.vertex_names[v]
    }

    /// Name of hyperedge `e`.
    pub fn edge_name(&self, e: usize) -> &str {
        &self.edge_names[e]
    }

    /// Looks up a vertex index by name (linear scan; parsing uses its own map).
    pub fn vertex_by_name(&self, name: &str) -> Option<usize> {
        self.vertex_names.iter().position(|n| n == name)
    }

    /// The vertex set of hyperedge `e`.
    #[inline]
    pub fn edge(&self, e: usize) -> &BitSet {
        &self.edges[e]
    }

    /// All hyperedges.
    #[inline]
    pub fn edges(&self) -> &[BitSet] {
        &self.edges
    }

    /// Indices of the hyperedges containing vertex `v`.
    #[inline]
    pub fn edges_containing(&self, v: usize) -> &[usize] {
        &self.incidence[v]
    }

    /// Maximum hyperedge cardinality (the *rank* of the hypergraph).
    pub fn rank(&self) -> usize {
        self.edges.iter().map(BitSet::len).max().unwrap_or(0)
    }

    /// `true` iff every vertex occurs in at least one hyperedge.
    pub fn covers_all_vertices(&self) -> bool {
        self.incidence.iter().all(|inc| !inc.is_empty())
    }

    /// The vertices occurring in at least one hyperedge. Vertices outside
    /// this set are unconstrained: they never need λ-cover support.
    pub fn covered_vertices(&self) -> BitSet {
        BitSet::from_iter(
            self.n,
            (0..self.n).filter(|&v| !self.incidence[v].is_empty()),
        )
    }

    /// The primal (Gaifman) graph `G*(H)` (Definition 3): same vertices; two
    /// vertices adjacent iff they co-occur in some hyperedge.
    pub fn primal_graph(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for e in &self.edges {
            let vs = e.to_vec();
            for (i, &u) in vs.iter().enumerate() {
                for &v in &vs[i + 1..] {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// `true` iff the hypergraph is α-acyclic, decided by GYO reduction:
    /// repeatedly (1) drop vertices that occur in exactly one hyperedge and
    /// (2) drop hyperedges contained in another hyperedge; the hypergraph is
    /// α-acyclic iff everything reduces away. α-acyclicity is exactly the
    /// `ghw = 1` / join-tree-exists case (Definition 9).
    pub fn is_alpha_acyclic(&self) -> bool {
        let mut edges: Vec<BitSet> = self.edges.clone();
        let mut alive: Vec<bool> = vec![true; edges.len()];
        let mut occurrences = vec![0usize; self.n];
        for e in &edges {
            for v in e.iter() {
                occurrences[v] += 1;
            }
        }
        loop {
            let mut changed = false;
            // ear rule 1: remove vertices unique to one edge
            for (i, e) in edges.iter_mut().enumerate() {
                if !alive[i] {
                    continue;
                }
                let lonely: Vec<usize> = e.iter().filter(|&v| occurrences[v] == 1).collect();
                for v in lonely {
                    e.remove(v);
                    occurrences[v] = 0;
                    changed = true;
                }
            }
            // ear rule 2: remove edges contained in another (or emptied)
            for i in 0..edges.len() {
                if !alive[i] {
                    continue;
                }
                let contained = edges[i].is_empty()
                    || (0..edges.len()).any(|j| {
                        j != i && alive[j] && edges[i].is_subset(&edges[j])
                    });
                if contained {
                    alive[i] = false;
                    for v in edges[i].iter() {
                        occurrences[v] -= 1;
                    }
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        alive.iter().all(|&a| !a)
    }

    /// The dual graph (Definition 4): one vertex per hyperedge; two adjacent
    /// iff the hyperedges share a vertex.
    pub fn dual_graph(&self) -> Graph {
        let m = self.edges.len();
        let mut g = Graph::new(m);
        for v in 0..self.n {
            let inc = &self.incidence[v];
            for (i, &a) in inc.iter().enumerate() {
                for &b in &inc[i + 1..] {
                    g.add_edge(a, b);
                }
            }
        }
        g
    }
}

impl std::fmt::Debug for Hypergraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Hypergraph(n={}, m={})", self.n, self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The hypergraph of thesis Example 5 / Fig. 2.6(a):
    /// C1={x1,x2,x3}, C2={x1,x5,x6}, C3={x3,x4,x5} (0-indexed).
    pub(crate) fn example5() -> Hypergraph {
        Hypergraph::from_edges(6, [vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]])
    }

    #[test]
    fn primal_graph_of_example5() {
        let h = example5();
        let g = h.primal_graph();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 9);
        assert!(g.has_edge(0, 1) && g.has_edge(0, 2) && g.has_edge(1, 2));
        assert!(g.has_edge(0, 4) && g.has_edge(0, 5) && g.has_edge(4, 5));
        assert!(g.has_edge(2, 3) && g.has_edge(2, 4) && g.has_edge(3, 4));
        assert!(!g.has_edge(1, 3));
    }

    #[test]
    fn dual_graph_of_example5() {
        let h = example5();
        let d = h.dual_graph();
        assert_eq!(d.num_vertices(), 3);
        // C1∩C2={x1}, C1∩C3={x3}, C2∩C3={x5} → triangle
        assert_eq!(d.num_edges(), 3);
    }

    #[test]
    fn incidence_is_consistent() {
        let h = example5();
        assert_eq!(h.edges_containing(0), &[0, 1]);
        assert_eq!(h.edges_containing(3), &[2]);
        assert_eq!(h.rank(), 3);
        assert!(h.covers_all_vertices());
        let lonely = Hypergraph::from_edges(3, [vec![0, 1]]);
        assert!(!lonely.covers_all_vertices());
    }

    #[test]
    fn gyo_recognises_acyclicity() {
        // Example 5 is cyclic
        assert!(!example5().is_alpha_acyclic());
        // a chain of overlapping edges is acyclic
        let chain = Hypergraph::from_edges(5, [vec![0, 1, 2], vec![2, 3], vec![3, 4]]);
        assert!(chain.is_alpha_acyclic());
        // a single covering edge plus sub-edges is acyclic
        let star = Hypergraph::from_edges(4, [vec![0, 1, 2, 3], vec![1, 2], vec![0, 3]]);
        assert!(star.is_alpha_acyclic());
        // the triangle of binary edges is the smallest cyclic case
        let tri = Hypergraph::from_edges(3, [vec![0, 1], vec![1, 2], vec![0, 2]]);
        assert!(!tri.is_alpha_acyclic());
        // but adding the covering 3-edge makes it acyclic
        let tri_cov =
            Hypergraph::from_edges(3, [vec![0, 1], vec![1, 2], vec![0, 2], vec![0, 1, 2]]);
        assert!(tri_cov.is_alpha_acyclic());
    }

    #[test]
    fn from_graph_roundtrip_primal() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let h = Hypergraph::from_graph(&g);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.primal_graph(), g);
    }

    #[test]
    fn duplicate_vertices_in_edge_collapse() {
        let mut h = Hypergraph::new(3);
        let e = h.add_edge([1, 1, 2]);
        assert_eq!(h.edge(e).len(), 2);
    }

    #[test]
    fn try_add_edge_rejects_out_of_range_and_leaves_state_unchanged() {
        let mut h = Hypergraph::new(3);
        assert_eq!(
            h.try_add_edge([0, 7]),
            Err(HypergraphError::VertexOutOfRange { vertex: 7, n: 3 })
        );
        assert_eq!(h.num_edges(), 0);
        assert!(h.edges_containing(0).is_empty(), "no partial incidence");
        assert_eq!(h.try_add_edge([0, 2]), Ok(0));
        assert_eq!(h.num_edges(), 1);
        assert!(Hypergraph::try_from_edges(2, [vec![0usize, 1], vec![2]]).is_err());
        let err = HypergraphError::VertexOutOfRange { vertex: 7, n: 3 };
        assert!(err.to_string().contains("7"));
    }
}
