//! Graphs, hypergraphs, benchmark I/O and instance generators.
//!
//! This crate is the structural substrate of the workspace: everything the
//! decomposition, bound, search and GA crates operate on. The central types
//! are [`Graph`] (a regular graph with bit-matrix adjacency), [`Hypergraph`]
//! (Definition 2 of the thesis, with primal- and dual-graph construction)
//! and [`EliminationGraph`] (the eliminate/restore machinery of §5.2.1 that
//! the branch-and-bound and A\* searches are built on).

pub mod bitset;
pub mod elimination;
pub mod generators;
pub mod graph;
pub mod hypergraph;
pub mod io;
pub mod separators;

pub use bitset::BitSet;
pub use elimination::EliminationGraph;
pub use graph::Graph;
pub use hypergraph::Hypergraph;
