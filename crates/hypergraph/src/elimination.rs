//! Incremental vertex elimination with O(1)-undo, the workhorse of the
//! branch-and-bound and A\* searches.
//!
//! §5.2.1 of the thesis describes a graph object that can *eliminate* a
//! vertex (connect all its neighbours pairwise, then remove it) and *restore*
//! the most recently eliminated vertex, using an append-only adjacency log
//! (`A`, `E`) plus an adjacency matrix (`T`). This module implements the same
//! contract with an explicit undo stack over bit-set adjacency rows: each
//! elimination records the vertex, its neighbourhood at elimination time and
//! the list of fill edges added, which is exactly the information the
//! thesis reconstructs from `A`/`E`. Memory stays O(|V|² + fill).

use crate::bitset::BitSet;
use crate::graph::Graph;

/// One elimination step, retained so it can be undone.
///
/// The step does not own its fill edges: they live in the eliminator's shared
/// `fill_log`, of which this records the length before the elimination. The
/// eliminated vertex's neighbourhood needs no copy at all — `adj[vertex]` is
/// never touched while the vertex is dead, so it still holds the
/// elimination-time neighbourhood when `restore` runs.
#[derive(Clone, Copy, Debug)]
struct Step {
    vertex: usize,
    fill_start: usize,
}

/// A graph supporting `eliminate` / `restore` in LIFO order.
#[derive(Clone)]
pub struct EliminationGraph {
    adj: Vec<BitSet>,
    alive: BitSet,
    n_alive: usize,
    stack: Vec<Step>,
    /// Append-only log of fill edges; `restore` truncates back to the
    /// step's `fill_start` (the thesis' `E` log).
    fill_log: Vec<(u32, u32)>,
    /// Reusable neighbour buffer so `eliminate` allocates nothing in the
    /// steady state.
    scratch: Vec<usize>,
}

impl EliminationGraph {
    /// Wraps a static graph.
    pub fn new(g: &Graph) -> Self {
        let n = g.num_vertices();
        EliminationGraph {
            adj: (0..n).map(|v| g.neighbors(v).clone()).collect(),
            alive: BitSet::full(n),
            n_alive: n,
            stack: Vec::new(),
            fill_log: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Total number of vertices (eliminated or not).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of not-yet-eliminated vertices.
    #[inline]
    pub fn num_alive(&self) -> usize {
        self.n_alive
    }

    /// `true` iff `v` has not been eliminated.
    #[inline]
    pub fn is_alive(&self, v: usize) -> bool {
        self.alive.contains(v)
    }

    /// The alive vertices.
    #[inline]
    pub fn alive(&self) -> &BitSet {
        &self.alive
    }

    /// Current neighbourhood of an alive vertex.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &BitSet {
        debug_assert!(self.is_alive(v));
        &self.adj[v]
    }

    /// Current degree of an alive vertex.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        debug_assert!(self.is_alive(v));
        self.adj[v].len()
    }

    /// O(1) adjacency test between alive vertices.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(v)
    }

    /// Number of eliminations that can currently be undone.
    #[inline]
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Eliminates `v`: its neighbours become a clique and `v` is removed.
    /// Returns the degree of `v` at elimination time (the size of the bucket
    /// label minus one, i.e. the width contribution of this step).
    pub fn eliminate(&mut self, v: usize) -> usize {
        debug_assert!(self.is_alive(v), "eliminating a dead vertex");
        let mut neighbors = std::mem::take(&mut self.scratch);
        neighbors.clear();
        neighbors.extend(self.adj[v].iter());
        let deg = neighbors.len();
        let fill_start = self.fill_log.len();
        for (i, &u) in neighbors.iter().enumerate() {
            for &w in &neighbors[i + 1..] {
                if !self.adj[u].contains(w) {
                    self.adj[u].insert(w);
                    self.adj[w].insert(u);
                    self.fill_log.push((u as u32, w as u32));
                }
            }
        }
        for &u in &neighbors {
            self.adj[u].remove(v);
        }
        self.scratch = neighbors;
        self.alive.remove(v);
        self.n_alive -= 1;
        self.stack.push(Step { vertex: v, fill_start });
        deg
    }

    /// Undoes the most recent elimination; returns the restored vertex.
    ///
    /// # Panics
    /// Panics if nothing has been eliminated.
    pub fn restore(&mut self) -> usize {
        let step = self.stack.pop().expect("restore with empty stack");
        for &(u, w) in &self.fill_log[step.fill_start..] {
            self.adj[u as usize].remove(w as usize);
            self.adj[w as usize].remove(u as usize);
        }
        self.fill_log.truncate(step.fill_start);
        // `adj[step.vertex]` was never modified while dead, so it still holds
        // exactly the elimination-time neighbourhood.
        let nb = std::mem::take(&mut self.adj[step.vertex]);
        for u in nb.iter() {
            self.adj[u].insert(step.vertex);
        }
        self.adj[step.vertex] = nb;
        self.alive.insert(step.vertex);
        self.n_alive += 1;
        step.vertex
    }

    /// Number of fill edges the elimination of `v` would create right now.
    ///
    /// Counted without materialising the neighbourhood: each `u ∈ N(v)`
    /// misses `|N(v)| − 1 − |N(u) ∩ N(v)|` of its `|N(v)| − 1` potential
    /// partners, and every missing pair is counted from both ends.
    pub fn fill_in_count(&self, v: usize) -> usize {
        debug_assert!(self.is_alive(v));
        let nb = &self.adj[v];
        let deg = nb.len();
        if deg < 2 {
            return 0;
        }
        let mut present = 0usize;
        for u in nb.iter() {
            present += self.adj[u].intersection_len(nb);
        }
        deg * (deg - 1) / 2 - present / 2
    }

    /// `true` iff alive vertex `v` is *simplicial*: its neighbourhood is a
    /// clique (Definition 22).
    pub fn is_simplicial(&self, v: usize) -> bool {
        self.fill_in_count(v) == 0
    }

    /// `true` iff alive vertex `v` is *almost simplicial*: all but one of its
    /// neighbours induce a clique (Definition 23).
    pub fn is_almost_simplicial(&self, v: usize) -> bool {
        let nb = &self.adj[v];
        let deg = nb.len();
        if deg <= 1 {
            return true;
        }
        // v is almost simplicial iff there is a neighbour z such that
        // N(v) \ {z} is a clique — i.e. every u ≠ z has at most one
        // non-neighbour inside N(v), and if it has one, that one is z.
        'outer: for z in nb.iter() {
            for u in nb.iter() {
                if u == z {
                    continue;
                }
                let missing = (deg - 1) - self.adj[u].intersection_len(nb);
                let ok = missing == 0 || (missing == 1 && !self.adj[u].contains(z));
                if !ok {
                    continue 'outer;
                }
            }
            return true;
        }
        false
    }

    /// Materialises the current residual graph as a static [`Graph`] over the
    /// same vertex indices (dead vertices become isolated).
    pub fn to_graph(&self) -> Graph {
        let n = self.adj.len();
        let mut g = Graph::new(n);
        for u in self.alive.iter() {
            for v in self.adj[u].iter() {
                if v > u {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 6-vertex hypergraph primal graph of thesis Fig. 2.11:
    /// hyperedges {1,2,3}, {1,5,6}, {3,4,5} (0-indexed: {0,1,2},{0,4,5},{2,3,4}).
    fn fig_2_11_primal() -> Graph {
        Graph::from_edges(
            6,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (0, 4),
                (0, 5),
                (4, 5),
                (2, 3),
                (2, 4),
                (3, 4),
            ],
        )
    }

    #[test]
    fn eliminate_adds_fill_and_removes_vertex() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]); // star
        let mut eg = EliminationGraph::new(&g);
        let deg = eg.eliminate(0);
        assert_eq!(deg, 3);
        // neighbours 1,2,3 now form a triangle
        assert!(eg.has_edge(1, 2) && eg.has_edge(1, 3) && eg.has_edge(2, 3));
        assert!(!eg.is_alive(0));
        assert_eq!(eg.num_alive(), 3);
    }

    #[test]
    fn restore_is_exact_inverse() {
        let g = fig_2_11_primal();
        let mut eg = EliminationGraph::new(&g);
        let before = eg.to_graph();
        eg.eliminate(5);
        eg.eliminate(4);
        eg.eliminate(3);
        assert_eq!(eg.restore(), 3);
        assert_eq!(eg.restore(), 4);
        assert_eq!(eg.restore(), 5);
        assert_eq!(eg.to_graph(), before);
        assert_eq!(eg.num_alive(), 6);
    }

    #[test]
    fn thesis_fig_2_11_elimination_widths() {
        // σ = (x6..x1) eliminated in reverse listing order: x6 first is the
        // *last* position; Bucket Elimination processes buckets from the end.
        // Eliminating 5(=x6): N={0,4} → label {x6,x1,x5} (size 3).
        let g = fig_2_11_primal();
        let mut eg = EliminationGraph::new(&g);
        assert_eq!(eg.eliminate(5), 2);
        assert!(eg.has_edge(0, 4)); // already there
        assert_eq!(eg.eliminate(4), 3); // N = {0,2,3}
        assert!(eg.has_edge(0, 3) && eg.has_edge(0, 2) && eg.has_edge(2, 3));
        assert_eq!(eg.eliminate(3), 2); // N = {0,2}
        assert_eq!(eg.eliminate(2), 2); // N = {0,1}
        assert_eq!(eg.eliminate(1), 1);
        assert_eq!(eg.eliminate(0), 0);
    }

    #[test]
    fn simplicial_detection() {
        let g = fig_2_11_primal();
        let eg = EliminationGraph::new(&g);
        // vertex 1 (x2) has neighbours {0,2} which are adjacent → simplicial
        assert!(eg.is_simplicial(1));
        // vertex 0 (x1) has neighbours {1,2,4,5}; 1-4 not adjacent → not
        assert!(!eg.is_simplicial(0));
        // vertex 2 (x3): neighbours {0,1,3,4}; dropping 3 leaves {0,1,4}:
        // 1-4 not adjacent; dropping 1 leaves {0,3,4}: 0-3 not adjacent; not AS
        assert!(!eg.is_almost_simplicial(2));
        // vertex 5: neighbours {0,4} adjacent → simplicial (hence almost too)
        assert!(eg.is_almost_simplicial(5));
    }

    #[test]
    fn interleaved_eliminate_restore_random_walk() {
        use ghd_prng::rngs::StdRng;
        use ghd_prng::RngExt;
        let mut rng = StdRng::seed_from_u64(7);
        let mut edges = Vec::new();
        for u in 0..12usize {
            for v in (u + 1)..12 {
                if rng.random_range(0..3) == 0 {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(12, edges);
        let mut eg = EliminationGraph::new(&g);
        let snapshot = eg.to_graph();
        // random walk of eliminations/restores, returning to the root
        let mut depth = 0usize;
        for _ in 0..200 {
            if depth > 0 && (depth == 12 || rng.random_bool(0.5)) {
                eg.restore();
                depth -= 1;
            } else {
                let alive = eg.alive().to_vec();
                let v = alive[rng.random_range(0..alive.len())];
                eg.eliminate(v);
                depth += 1;
            }
        }
        while depth > 0 {
            eg.restore();
            depth -= 1;
        }
        assert_eq!(eg.to_graph(), snapshot);
    }
}
