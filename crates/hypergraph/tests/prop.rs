//! Property tests for the structural substrate: the elimination graph's
//! restore is an exact inverse under arbitrary interleavings, and primal
//! graph construction is stable under edge order.

use ghd_hypergraph::generators::graphs;
use ghd_hypergraph::{EliminationGraph, Graph, Hypergraph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=14).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..=n * 2)
            .prop_map(move |pairs| Graph::from_edges(n, pairs))
    })
}

proptest! {
    /// Any eliminate/restore walk that returns to depth 0 restores the
    /// original graph exactly.
    #[test]
    fn eliminate_restore_walk_is_identity(g in arb_graph(), script in proptest::collection::vec(any::<u32>(), 0..60)) {
        let mut eg = EliminationGraph::new(&g);
        let before = eg.to_graph();
        for step in script {
            if step % 3 == 0 && eg.depth() > 0 {
                eg.restore();
            } else if eg.num_alive() > 0 {
                let alive = eg.alive().to_vec();
                let v = alive[(step as usize) % alive.len()];
                eg.eliminate(v);
            }
        }
        while eg.depth() > 0 {
            eg.restore();
        }
        prop_assert_eq!(eg.to_graph(), before);
    }

    /// Eliminating a vertex makes its former neighbourhood a clique.
    #[test]
    fn elimination_clique_property(g in arb_graph(), pick in any::<u32>()) {
        let mut eg = EliminationGraph::new(&g);
        let alive = eg.alive().to_vec();
        let v = alive[(pick as usize) % alive.len()];
        let nb = eg.neighbors(v).clone();
        eg.eliminate(v);
        let nbs = nb.to_vec();
        for (i, &a) in nbs.iter().enumerate() {
            for &b in &nbs[i + 1..] {
                prop_assert!(eg.has_edge(a, b));
            }
        }
    }

    /// The primal graph of a hypergraph built from a graph's edges is the
    /// graph itself, for every generated family member.
    #[test]
    fn primal_of_graph_hypergraph_roundtrip(n in 2usize..10, seed in 0u64..50) {
        let m = (n * (n - 1) / 2).min(2 * n);
        let g = graphs::gnm_random(n, m, seed);
        let h = Hypergraph::from_graph(&g);
        prop_assert_eq!(h.primal_graph(), g);
    }
}
