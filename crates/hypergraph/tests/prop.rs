//! Property tests for the structural substrate: the elimination graph's
//! restore is an exact inverse under arbitrary interleavings, and primal
//! graph construction is stable under edge order.
//!
//! The offline build has no `proptest`, so cases are drawn by an in-tree
//! generator: each test walks a fixed set of seeds through `ghd-prng`
//! (failures print the offending seed, which reproduces the case exactly).

use ghd_hypergraph::generators::graphs;
use ghd_hypergraph::{EliminationGraph, Graph, Hypergraph};
use ghd_prng::rngs::StdRng;
use ghd_prng::RngExt;

/// An arbitrary graph on `n ∈ 2..=14` vertices (duplicate pairs and
/// self-loops included, exercising `from_edges` normalisation).
fn arb_graph(rng: &mut StdRng) -> Graph {
    let n = rng.random_range(2..=14usize);
    let m = rng.random_range(0..=2 * n);
    let pairs: Vec<(usize, usize)> = (0..m)
        .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
        .collect();
    Graph::from_edges(n, pairs)
}

/// Any eliminate/restore walk that returns to depth 0 restores the
/// original graph exactly.
#[test]
fn eliminate_restore_walk_is_identity() {
    for seed in 0..300u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = arb_graph(&mut rng);
        let steps = rng.random_range(0..60usize);
        let mut eg = EliminationGraph::new(&g);
        let before = eg.to_graph();
        for _ in 0..steps {
            let step = rng.random_range(0..u32::MAX);
            if step % 3 == 0 && eg.depth() > 0 {
                eg.restore();
            } else if eg.num_alive() > 0 {
                let alive = eg.alive().to_vec();
                let v = alive[(step as usize) % alive.len()];
                eg.eliminate(v);
            }
        }
        while eg.depth() > 0 {
            eg.restore();
        }
        assert_eq!(eg.to_graph(), before, "seed {seed}");
    }
}

/// Eliminating a vertex makes its former neighbourhood a clique.
#[test]
fn elimination_clique_property() {
    for seed in 0..300u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = arb_graph(&mut rng);
        let mut eg = EliminationGraph::new(&g);
        let alive = eg.alive().to_vec();
        let v = alive[rng.random_range(0..alive.len())];
        let nb = eg.neighbors(v).clone();
        eg.eliminate(v);
        let nbs = nb.to_vec();
        for (i, &a) in nbs.iter().enumerate() {
            for &b in &nbs[i + 1..] {
                assert!(eg.has_edge(a, b), "seed {seed}: {a}-{b} not a clique edge");
            }
        }
    }
}

/// The primal graph of a hypergraph built from a graph's edges is the
/// graph itself, for every generated family member.
#[test]
fn primal_of_graph_hypergraph_roundtrip() {
    for seed in 0..50u64 {
        for n in 2usize..10 {
            let m = (n * (n - 1) / 2).min(2 * n);
            let g = graphs::gnm_random(n, m, seed);
            let h = Hypergraph::from_graph(&g);
            assert_eq!(h.primal_graph(), g, "seed {seed} n {n}");
        }
    }
}
