//! Property tests for the decomposition core: exact set cover optimality
//! against subset brute force, and decomposition validity for arbitrary
//! orderings.
//!
//! The offline build has no `proptest`, so cases are drawn by an in-tree
//! generator: each test walks a fixed set of seeds through `ghd-prng`
//! (failures print the offending seed, which reproduces the case exactly).

use ghd_core::bucket::{bucket_elimination, vertex_elimination};
use ghd_core::setcover::{exact_cover, greedy_cover};
use ghd_core::EliminationOrdering;
use ghd_hypergraph::{BitSet, Hypergraph};
use ghd_prng::rngs::StdRng;
use ghd_prng::RngExt;
use std::collections::BTreeSet;

/// An arbitrary hypergraph on `n ∈ 3..=9` vertices whose edges cover all
/// vertices (constraint hypergraphs always do).
fn arb_hypergraph(rng: &mut StdRng) -> Hypergraph {
    let n = rng.random_range(3..=9usize);
    let k = rng.random_range(1..=7usize);
    let mut edges: Vec<Vec<usize>> = (0..k)
        .map(|_| {
            let size = rng.random_range(1..=4usize).min(n);
            let mut set = BTreeSet::new();
            while set.len() < size {
                set.insert(rng.random_range(0..n));
            }
            set.into_iter().collect()
        })
        .collect();
    let covered: BTreeSet<usize> = edges.iter().flatten().copied().collect();
    for v in 0..n {
        if !covered.contains(&v) {
            edges.push(vec![v]);
        }
    }
    Hypergraph::from_edges(n, edges)
}

/// The branch-and-bound set cover is truly optimal: no subset of edges
/// of smaller cardinality covers the target (brute force over all `2^m`
/// subsets, `m ≤ 16` always holds for these sizes).
#[test]
fn exact_cover_is_optimal() {
    for seed in 0..300u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = arb_hypergraph(&mut rng);
        let n = h.num_vertices();
        let m = h.num_edges();
        if m > 16 {
            continue;
        }
        let mask: u16 = rng.random_range(0..=u16::MAX as u32) as u16;
        let target = BitSet::from_iter(n, (0..n).filter(|v| mask >> v & 1 == 1));
        let chosen = exact_cover(&target, &h);
        let mut best = usize::MAX;
        for sub in 0u32..(1 << m) {
            let mut covered = BitSet::new(n);
            for e in 0..m {
                if sub >> e & 1 == 1 {
                    covered.union_with(h.edge(e));
                }
            }
            if target.is_subset(&covered) {
                best = best.min(sub.count_ones() as usize);
            }
        }
        assert_eq!(chosen.len(), best, "seed {seed}");
        assert!(
            greedy_cover::<StdRng>(&target, &h, None).len() >= best,
            "seed {seed}"
        );
    }
}

/// Both elimination algorithms produce valid decompositions with equal
/// widths for every ordering.
#[test]
fn eliminations_valid_and_equal() {
    for seed in 0..500u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = arb_hypergraph(&mut rng);
        let sigma = EliminationOrdering::random(h.num_vertices(), &mut rng);
        let a = bucket_elimination(&h, &sigma);
        let b = vertex_elimination(&h.primal_graph(), &sigma);
        assert!(a.verify(&h).is_ok(), "seed {seed}");
        assert!(b.verify(&h).is_ok(), "seed {seed}");
        assert_eq!(a.width(), b.width(), "seed {seed}");
    }
}
