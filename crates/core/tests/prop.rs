//! Property tests for the decomposition core: exact set cover optimality
//! against subset brute force, and decomposition validity for arbitrary
//! orderings.

use ghd_core::bucket::{bucket_elimination, vertex_elimination};
use ghd_core::setcover::{exact_cover, greedy_cover};
use ghd_core::EliminationOrdering;
use ghd_hypergraph::{BitSet, Hypergraph};
use proptest::prelude::*;

fn arb_hypergraph() -> impl Strategy<Value = Hypergraph> {
    (3usize..=9).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::btree_set(0..n, 1..=4), 1..=7).prop_map(
            move |edge_sets| {
                let mut edges: Vec<Vec<usize>> =
                    edge_sets.into_iter().map(|s| s.into_iter().collect()).collect();
                let covered: std::collections::BTreeSet<usize> =
                    edges.iter().flatten().copied().collect();
                for v in 0..n {
                    if !covered.contains(&v) {
                        edges.push(vec![v]);
                    }
                }
                Hypergraph::from_edges(n, edges)
            },
        )
    })
}

proptest! {
    /// The branch-and-bound set cover is truly optimal: no subset of edges
    /// of smaller cardinality covers the target.
    #[test]
    fn exact_cover_is_optimal(h in arb_hypergraph(), mask in any::<u16>()) {
        let n = h.num_vertices();
        let target = BitSet::from_iter(n, (0..n).filter(|v| mask >> v & 1 == 1));
        let chosen = exact_cover(&target, &h);
        // brute force over all 2^m subsets (m ≤ ~16)
        let m = h.num_edges();
        prop_assume!(m <= 16);
        let mut best = usize::MAX;
        for sub in 0u32..(1 << m) {
            let mut covered = BitSet::new(n);
            for e in 0..m {
                if sub >> e & 1 == 1 {
                    covered.union_with(h.edge(e));
                }
            }
            if target.is_subset(&covered) {
                best = best.min(sub.count_ones() as usize);
            }
        }
        prop_assert_eq!(chosen.len(), best);
        prop_assert!(greedy_cover::<rand::rngs::StdRng>(&target, &h, None).len() >= best);
    }

    /// Both elimination algorithms produce valid decompositions with equal
    /// widths for every ordering.
    #[test]
    fn eliminations_valid_and_equal(h in arb_hypergraph(), seed in 0u64..500) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sigma = EliminationOrdering::random(h.num_vertices(), &mut rng);
        let a = bucket_elimination(&h, &sigma);
        let b = vertex_elimination(&h.primal_graph(), &sigma);
        prop_assert!(a.verify(&h).is_ok());
        prop_assert!(b.verify(&h).is_ok());
        prop_assert_eq!(a.width(), b.width());
    }
}
