//! Tree decompositions of hypergraphs (Definition 11) as rooted labelled
//! trees, with structural validation.

use ghd_hypergraph::{BitSet, Graph, Hypergraph};

/// Why a proposed decomposition is not valid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompositionError {
    /// Hyperedge `edge` is not contained in any bag (condition 1).
    EdgeNotCovered { edge: usize },
    /// The nodes containing `vertex` do not induce a connected subtree
    /// (condition 2, the connectedness condition).
    Disconnected { vertex: usize },
    /// The node links do not form a single tree.
    NotATree,
    /// A GHD node's χ-set is not covered by its λ-set (condition 3).
    ChiNotCovered { node: usize },
    /// A bag refers to a vertex outside the hypergraph.
    VertexOutOfRange { node: usize },
    /// The decomposition was built for a different number of vertices than
    /// the (hyper)graph it is validated against.
    SizeMismatch,
}

impl std::fmt::Display for DecompositionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EdgeNotCovered { edge } => write!(f, "hyperedge {edge} not covered by any bag"),
            Self::Disconnected { vertex } => {
                write!(f, "nodes containing vertex {vertex} are not connected")
            }
            Self::NotATree => write!(f, "decomposition nodes do not form a tree"),
            Self::ChiNotCovered { node } => {
                write!(f, "χ({node}) not contained in var(λ({node}))")
            }
            Self::VertexOutOfRange { node } => write!(f, "bag {node} mentions unknown vertex"),
            Self::SizeMismatch => write!(f, "decomposition built for a different vertex count"),
        }
    }
}

impl std::error::Error for DecompositionError {}

/// A rooted tree decomposition `⟨T, χ⟩`.
#[derive(Clone, Debug)]
pub struct TreeDecomposition {
    bags: Vec<BitSet>,
    parent: Vec<Option<usize>>,
    children: Vec<Vec<usize>>,
    /// Capacity of every bag (number of hypergraph vertices).
    n_vertices: usize,
}

impl TreeDecomposition {
    /// Creates an empty decomposition over `n_vertices` hypergraph vertices.
    pub fn new(n_vertices: usize) -> Self {
        TreeDecomposition {
            bags: Vec::new(),
            parent: Vec::new(),
            children: Vec::new(),
            n_vertices,
        }
    }

    /// A single-bag decomposition containing all of `bag`.
    pub fn single_bag(n_vertices: usize, bag: BitSet) -> Self {
        let mut td = Self::new(n_vertices);
        td.add_root(bag);
        td
    }

    /// Number of hypergraph vertices the bags range over.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n_vertices
    }

    /// Number of tree nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.bags.len()
    }

    /// Adds a root node (a node without parent). The first root is the tree
    /// root; additional parentless nodes make the structure a forest, which
    /// `verify` rejects — callers connect them explicitly.
    pub fn add_root(&mut self, bag: BitSet) -> usize {
        debug_assert_eq!(bag.capacity(), self.n_vertices);
        let id = self.bags.len();
        self.bags.push(bag);
        self.parent.push(None);
        self.children.push(Vec::new());
        id
    }

    /// Adds a node as a child of `parent`.
    pub fn add_child(&mut self, parent: usize, bag: BitSet) -> usize {
        debug_assert_eq!(bag.capacity(), self.n_vertices);
        let id = self.bags.len();
        self.bags.push(bag);
        self.parent.push(Some(parent));
        self.children.push(Vec::new());
        self.children[parent].push(id);
        id
    }

    /// Re-attaches existing node `node` (currently a root) under `parent`.
    pub fn attach(&mut self, node: usize, parent: usize) {
        assert!(self.parent[node].is_none(), "node already has a parent");
        self.parent[node] = Some(parent);
        self.children[parent].push(node);
    }

    /// The bag (χ-set) of a node.
    #[inline]
    pub fn bag(&self, node: usize) -> &BitSet {
        &self.bags[node]
    }

    /// Mutable access to a bag — used by normal-form transformations.
    #[inline]
    pub fn bag_mut(&mut self, node: usize) -> &mut BitSet {
        &mut self.bags[node]
    }

    /// Parent of a node (`None` for the root).
    #[inline]
    pub fn parent(&self, node: usize) -> Option<usize> {
        self.parent[node]
    }

    /// Children of a node.
    #[inline]
    pub fn children(&self, node: usize) -> &[usize] {
        &self.children[node]
    }

    /// `true` iff `node` has no children (rooted-leaf semantics, as used by
    /// the leaf-normal-form algorithm).
    #[inline]
    pub fn is_leaf(&self, node: usize) -> bool {
        self.children[node].is_empty()
    }

    /// Iterates node ids.
    pub fn nodes(&self) -> std::ops::Range<usize> {
        0..self.bags.len()
    }

    /// The undirected tree edges `(parent, child)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.parent
            .iter()
            .enumerate()
            .filter_map(|(c, p)| p.map(|p| (p, c)))
    }

    /// The width: `max |χ(p)| − 1` (Definition 11). Returns 0 for an empty
    /// decomposition.
    pub fn width(&self) -> usize {
        self.bags.iter().map(BitSet::len).max().unwrap_or(1).saturating_sub(1)
    }

    /// Nodes in depth-first preorder from the root(s).
    pub fn preorder(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.bags.len());
        let mut stack: Vec<usize> = self
            .nodes()
            .rev()
            .filter(|&v| self.parent[v].is_none())
            .collect();
        while let Some(u) = stack.pop() {
            out.push(u);
            for &c in self.children[u].iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Checks the tree-shape and the connectedness condition (condition 2),
    /// shared by TD and GHD validation.
    fn verify_structure(&self) -> Result<(), DecompositionError> {
        let n_nodes = self.bags.len();
        if n_nodes == 0 {
            return Err(DecompositionError::NotATree);
        }
        if self.parent.iter().filter(|p| p.is_none()).count() != 1 {
            return Err(DecompositionError::NotATree);
        }
        if self.preorder().len() != n_nodes {
            return Err(DecompositionError::NotATree);
        }
        for (node, bag) in self.bags.iter().enumerate() {
            if bag.capacity() != self.n_vertices {
                return Err(DecompositionError::VertexOutOfRange { node });
            }
        }
        // Connectedness: for vertex Y let k = #nodes containing Y and
        // e = #tree edges whose both endpoints contain Y. The nodes with Y
        // induce a forest with k − e trees; connected ⟺ k − e == 1.
        let mut node_count = vec![0usize; self.n_vertices];
        let mut edge_count = vec![0usize; self.n_vertices];
        for bag in &self.bags {
            for v in bag.iter() {
                node_count[v] += 1;
            }
        }
        for (p, c) in self.edges() {
            let mut shared = self.bags[p].clone();
            shared.intersect_with(&self.bags[c]);
            for v in shared.iter() {
                edge_count[v] += 1;
            }
        }
        for v in 0..self.n_vertices {
            if node_count[v] > 0 && node_count[v] - edge_count[v] != 1 {
                return Err(DecompositionError::Disconnected { vertex: v });
            }
        }
        Ok(())
    }

    /// Validates this as a tree decomposition of `h` (Definition 11).
    pub fn verify(&self, h: &Hypergraph) -> Result<(), DecompositionError> {
        if self.n_vertices != h.num_vertices() {
            return Err(DecompositionError::SizeMismatch);
        }
        self.verify_structure()?;
        for (e, edge) in h.edges().iter().enumerate() {
            if !self.bags.iter().any(|bag| edge.is_subset(bag)) {
                return Err(DecompositionError::EdgeNotCovered { edge: e });
            }
        }
        Ok(())
    }

    /// Validates this as a tree decomposition of a regular graph (Lemma 1:
    /// equivalent to a decomposition of the graph viewed as hypergraph).
    pub fn verify_graph(&self, g: &Graph) -> Result<(), DecompositionError> {
        if self.n_vertices != g.num_vertices() {
            return Err(DecompositionError::SizeMismatch);
        }
        self.verify_structure()?;
        for (e, (u, v)) in g.edges().enumerate() {
            if !self
                .bags
                .iter()
                .any(|bag| bag.contains(u) && bag.contains(v))
            {
                return Err(DecompositionError::EdgeNotCovered { edge: e });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The width-2 tree decomposition of Example 5 / Fig. 2.6(b):
    /// bags {x1,x3,x5}, {x1,x2,x3}, {x1,x5,x6}, {x3,x4,x5} (0-indexed).
    fn example5_td() -> (Hypergraph, TreeDecomposition) {
        let h = Hypergraph::from_edges(6, [vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]]);
        let mut td = TreeDecomposition::new(6);
        let root = td.add_root(BitSet::from_iter(6, [0, 2, 4]));
        td.add_child(root, BitSet::from_iter(6, [0, 1, 2]));
        td.add_child(root, BitSet::from_iter(6, [0, 4, 5]));
        td.add_child(root, BitSet::from_iter(6, [2, 3, 4]));
        (h, td)
    }

    #[test]
    fn example5_is_valid_width_2() {
        let (h, td) = example5_td();
        assert_eq!(td.width(), 2);
        td.verify(&h).unwrap();
        td.verify_graph(&h.primal_graph()).unwrap();
    }

    #[test]
    fn detects_uncovered_edge() {
        let (mut h, td) = example5_td();
        h.add_edge([1, 5]);
        assert_eq!(
            td.verify(&h),
            Err(DecompositionError::EdgeNotCovered { edge: 3 })
        );
    }

    #[test]
    fn detects_connectedness_violation() {
        let h = Hypergraph::from_edges(3, [vec![0, 1], vec![1, 2]]);
        let mut td = TreeDecomposition::new(3);
        let r = td.add_root(BitSet::from_iter(3, [0, 1]));
        let mid = td.add_child(r, BitSet::from_iter(3, [1]));
        // vertex 0 reappears below without being in the middle bag
        td.add_child(mid, BitSet::from_iter(3, [0, 1, 2]));
        assert_eq!(
            td.verify(&h),
            Err(DecompositionError::Disconnected { vertex: 0 })
        );
    }

    #[test]
    fn detects_forest() {
        let h = Hypergraph::from_edges(2, [vec![0], vec![1]]);
        let mut td = TreeDecomposition::new(2);
        td.add_root(BitSet::from_iter(2, [0]));
        td.add_root(BitSet::from_iter(2, [1]));
        assert_eq!(td.verify(&h), Err(DecompositionError::NotATree));
    }

    #[test]
    fn attach_repairs_forest() {
        let h = Hypergraph::from_edges(2, [vec![0], vec![1]]);
        let mut td = TreeDecomposition::new(2);
        let a = td.add_root(BitSet::from_iter(2, [0]));
        let b = td.add_root(BitSet::from_iter(2, [1]));
        td.attach(b, a);
        td.verify(&h).unwrap();
    }

    #[test]
    fn preorder_visits_all_nodes_once() {
        let (_, td) = example5_td();
        let order = td.preorder();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], 0);
    }

    #[test]
    fn empty_is_invalid() {
        let td = TreeDecomposition::new(0);
        assert_eq!(td.verify_structure(), Err(DecompositionError::NotATree));
    }
}
