//! Generalized hypertree decompositions (Definition 13) and completion
//! (Definition 14 / Lemma 2).

use crate::setcover::{cover, CoverMethod};
use crate::tree_decomposition::{DecompositionError, TreeDecomposition};
use ghd_hypergraph::{BitSet, Hypergraph};

/// A generalized hypertree decomposition `⟨T, χ, λ⟩`: a tree decomposition
/// plus, per node, a set of hyperedges whose variables cover the node's bag.
#[derive(Clone, Debug)]
pub struct GeneralizedHypertreeDecomposition {
    td: TreeDecomposition,
    /// `lambda[p]` = hyperedge indices associated with node `p`.
    lambda: Vec<Vec<usize>>,
}

impl GeneralizedHypertreeDecomposition {
    /// Wraps a tree decomposition and λ-labels.
    ///
    /// # Panics
    /// Panics if `lambda` does not have one entry per tree node.
    pub fn new(td: TreeDecomposition, lambda: Vec<Vec<usize>>) -> Self {
        assert_eq!(td.num_nodes(), lambda.len(), "one λ-set per node");
        GeneralizedHypertreeDecomposition { td, lambda }
    }

    /// Builds a GHD from a tree decomposition by covering every bag with
    /// hyperedges of `h` (§2.5.2, McMahan's construction).
    pub fn from_tree_decomposition(
        td: TreeDecomposition,
        h: &Hypergraph,
        method: CoverMethod,
    ) -> Self {
        let lambda = td
            .nodes()
            .map(|p| cover(td.bag(p), h, method))
            .collect();
        GeneralizedHypertreeDecomposition { td, lambda }
    }

    /// The underlying tree decomposition.
    #[inline]
    pub fn tree(&self) -> &TreeDecomposition {
        &self.td
    }

    /// The λ-set of a node.
    #[inline]
    pub fn lambda(&self, node: usize) -> &[usize] {
        &self.lambda[node]
    }

    /// The width: `max |λ(p)|` (Definition 13).
    pub fn width(&self) -> usize {
        self.lambda.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Validates the three conditions of Definition 13 against `h`.
    pub fn verify(&self, h: &Hypergraph) -> Result<(), DecompositionError> {
        self.td.verify(h)?;
        for p in self.td.nodes() {
            let mut covered = BitSet::new(h.num_vertices());
            for &e in &self.lambda[p] {
                covered.union_with(h.edge(e));
            }
            if !self.td.bag(p).is_subset(&covered) {
                return Err(DecompositionError::ChiNotCovered { node: p });
            }
        }
        Ok(())
    }

    /// `true` iff this is a *complete* GHD (Definition 14): every hyperedge
    /// `h` has a node `p` with `h ⊆ χ(p)` **and** `h ∈ λ(p)`.
    pub fn is_complete(&self, h: &Hypergraph) -> bool {
        (0..h.num_edges()).all(|e| {
            self.td.nodes().any(|p| {
                h.edge(e).is_subset(self.td.bag(p)) && self.lambda[p].contains(&e)
            })
        })
    }

    /// Transforms into a complete GHD of the same width (Lemma 2): for every
    /// hyperedge lacking a witnessing node, a fresh child `⟨χ=h, λ={h}⟩` is
    /// attached below a node whose bag contains `h`.
    pub fn complete(mut self, h: &Hypergraph) -> Self {
        for e in 0..h.num_edges() {
            let witnessed = self.td.nodes().any(|p| {
                h.edge(e).is_subset(self.td.bag(p)) && self.lambda[p].contains(&e)
            });
            if witnessed {
                continue;
            }
            let host = self
                .td
                .nodes()
                .find(|&p| h.edge(e).is_subset(self.td.bag(p)))
                .expect("valid GHD covers every hyperedge (condition 1)");
            let child = self.td.add_child(host, h.edge(e).clone());
            debug_assert_eq!(child, self.lambda.len());
            self.lambda.push(vec![e]);
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 5 with the width-2 GHD of Fig. 2.7: root χ={x1,x3,x5},
    /// λ={C1,C3}; children are the three constraints themselves.
    fn example5() -> (Hypergraph, GeneralizedHypertreeDecomposition) {
        let h = Hypergraph::from_edges(6, [vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]]);
        let mut td = TreeDecomposition::new(6);
        let root = td.add_root(BitSet::from_iter(6, [0, 2, 4]));
        td.add_child(root, BitSet::from_iter(6, [0, 1, 2]));
        td.add_child(root, BitSet::from_iter(6, [0, 4, 5]));
        td.add_child(root, BitSet::from_iter(6, [2, 3, 4]));
        let ghd = GeneralizedHypertreeDecomposition::new(
            td,
            vec![vec![0, 2], vec![0], vec![1], vec![2]],
        );
        (h, ghd)
    }

    #[test]
    fn fig_2_7_is_valid_width_2_and_complete() {
        let (h, ghd) = example5();
        ghd.verify(&h).unwrap();
        assert_eq!(ghd.width(), 2);
        assert!(ghd.is_complete(&h));
    }

    #[test]
    fn detects_chi_not_covered() {
        let (h, ghd) = example5();
        let td = ghd.tree().clone();
        let bad = GeneralizedHypertreeDecomposition::new(
            td,
            vec![vec![0], vec![0], vec![1], vec![2]], // root loses C3 → x5 uncovered
        );
        assert_eq!(
            bad.verify(&h),
            Err(DecompositionError::ChiNotCovered { node: 0 })
        );
    }

    #[test]
    fn completion_adds_witness_nodes_without_width_growth() {
        let h = Hypergraph::from_edges(4, [vec![0, 1], vec![1, 2], vec![2, 3]]);
        // one fat bag covering everything, λ exactly covers it
        let td = TreeDecomposition::single_bag(4, BitSet::full(4));
        let ghd = GeneralizedHypertreeDecomposition::new(td, vec![vec![0, 2]]);
        ghd.verify(&h).unwrap();
        assert!(!ghd.is_complete(&h)); // edge 1 is not in any λ-set
        let complete = ghd.complete(&h);
        complete.verify(&h).unwrap();
        assert!(complete.is_complete(&h));
        assert_eq!(complete.width(), 2);
        assert_eq!(complete.tree().num_nodes(), 2); // one witness for edge 1
    }

    #[test]
    fn from_td_with_exact_cover_matches_fig_2_7_width() {
        let (h, reference) = example5();
        let ghd = GeneralizedHypertreeDecomposition::from_tree_decomposition(
            reference.tree().clone(),
            &h,
            CoverMethod::Exact,
        );
        ghd.verify(&h).unwrap();
        assert_eq!(ghd.width(), 2);
    }
}
