//! Hot-loop evaluation of elimination orderings: the fitness functions of
//! GA-tw (Fig 6.2) and GA-ghw (Fig 7.1).
//!
//! Both are adaptations of the perfect-elimination-ordering check of Golumbic
//! \[25\]: process vertices back to front, keep per-vertex adjacency *lists*
//! that only ever grow, and push each bucket's residue onto the next vertex
//! to be eliminated. Running time is O(|V| + |E′|) where E′ includes fill
//! edges. The evaluators own reusable buffers so that a genetic algorithm's
//! millions of evaluations do not allocate.

use crate::ordering::EliminationOrdering;
use crate::setcover::CoverCache;
use ghd_hypergraph::{BitSet, Graph, Hypergraph};
use ghd_prng::{Rng, RngExt};

/// Shared list-based elimination engine. `lists[v]` starts as the adjacency
/// list of `v` and grows by appended residues; `base_len` allows O(n) reset.
struct Engine {
    lists: Vec<Vec<u32>>,
    base_len: Vec<usize>,
    stamp: Vec<u32>,
    round: u32,
    bag: Vec<u32>,
}

impl Engine {
    fn new(g: &Graph) -> Self {
        let n = g.num_vertices();
        Engine {
            lists: (0..n)
                .map(|v| g.neighbors(v).iter().map(|u| u as u32).collect())
                .collect(),
            base_len: (0..n).map(|v| g.degree(v)).collect(),
            stamp: vec![0; n],
            round: 0,
            bag: Vec::with_capacity(n),
        }
    }

    fn reset(&mut self) {
        for (list, &len) in self.lists.iter_mut().zip(&self.base_len) {
            list.truncate(len);
        }
    }

    /// Computes `X = {x ∈ A[v] | x <_σ v}` (deduplicated) into `self.bag`.
    fn collect_bag(&mut self, v: usize, i: usize, sigma: &EliminationOrdering) {
        self.round += 1;
        let round = self.round;
        self.bag.clear();
        let list = std::mem::take(&mut self.lists[v]);
        for &x in &list {
            let x_us = x as usize;
            if sigma.position(x_us) < i && self.stamp[x_us] != round {
                self.stamp[x_us] = round;
                self.bag.push(x);
            }
        }
        self.lists[v] = list;
    }

    /// Pushes `bag − {u}` onto `A[u]` where `u` is the member of the bag
    /// eliminated next (maximum position). Returns `u` if the bag is
    /// nonempty.
    fn forward(&mut self, sigma: &EliminationOrdering) -> Option<usize> {
        let u = self
            .bag
            .iter()
            .copied()
            .max_by_key(|&x| sigma.position(x as usize))? as usize;
        // borrow juggling: move the list out while extending
        let mut list = std::mem::take(&mut self.lists[u]);
        list.extend(self.bag.iter().copied().filter(|&x| x as usize != u));
        self.lists[u] = list;
        Some(u)
    }
}

/// Evaluates the treewidth of orderings on a fixed graph (Fig 6.2).
pub struct TwEvaluator {
    engine: Engine,
}

impl TwEvaluator {
    /// Prepares an evaluator for `g`.
    pub fn new(g: &Graph) -> Self {
        TwEvaluator {
            engine: Engine::new(g),
        }
    }

    /// The width of the tree decomposition induced by `σ` — an upper bound
    /// on the treewidth, tight for at least one ordering (§2.5.1).
    pub fn width(&mut self, sigma: &EliminationOrdering) -> usize {
        let n = sigma.len();
        debug_assert_eq!(n, self.engine.lists.len());
        let mut width = 0;
        for i in (0..n).rev() {
            if width >= i {
                break; // remaining bags have ≤ i vertices (Fig 6.2 loop bound)
            }
            let v = sigma.at(i);
            self.engine.collect_bag(v, i, sigma);
            width = width.max(self.engine.bag.len());
            self.engine.forward(sigma);
        }
        self.engine.reset();
        width
    }
}

/// Evaluates the generalized-hypertree width of orderings on a fixed
/// hypergraph (Fig 7.1): each bucket's bag `{v} ∪ X` is covered greedily
/// (Fig 7.2) and the maximum cover size is the fitness.
pub struct GhwEvaluator {
    engine: Engine,
    h: Hypergraph,
    covered: BitSet,
    // reusable buffers of the allocation-free greedy cover
    bag_vertices: Vec<u32>,
    bag_set: BitSet,
    uncovered: BitSet,
    candidates: Vec<u32>,
    cand_stamp: Vec<u32>,
    round: u32,
    tied: Vec<u32>,
}

impl GhwEvaluator {
    /// Prepares an evaluator for `h` (the primal graph is derived once).
    pub fn new(h: &Hypergraph) -> Self {
        let primal = h.primal_graph();
        GhwEvaluator {
            engine: Engine::new(&primal),
            covered: h.covered_vertices(),
            bag_vertices: Vec::new(),
            bag_set: BitSet::new(h.num_vertices()),
            uncovered: BitSet::new(h.num_vertices()),
            candidates: Vec::new(),
            cand_stamp: vec![0; h.num_edges()],
            round: 0,
            tied: Vec::new(),
        h: h.clone(),
        }
    }

    /// Greedy cover size of the vertices currently in `bag_vertices`,
    /// without allocation (Fig 7.2 semantics: repeatedly take the edge
    /// covering the most uncovered vertices, ties broken randomly or by the
    /// first maximum).
    fn fast_greedy_size<R: Rng + ?Sized>(&mut self, rng: &mut Option<&mut R>) -> usize {
        self.round += 1;
        let round = self.round;
        // candidate edges: any edge touching the bag (deduplicated by stamp)
        self.candidates.clear();
        self.uncovered.clear();
        let mut remaining = 0usize;
        for &v in &self.bag_vertices {
            self.uncovered.insert(v as usize);
            remaining += 1;
            for &e in self.h.edges_containing(v as usize) {
                if self.cand_stamp[e] != round {
                    self.cand_stamp[e] = round;
                    self.candidates.push(e as u32);
                }
            }
        }
        let mut k = 0;
        while remaining > 0 {
            let mut best_gain = 0;
            self.tied.clear();
            for &e in &self.candidates {
                let gain = self.h.edge(e as usize).intersection_len(&self.uncovered);
                match gain.cmp(&best_gain) {
                    std::cmp::Ordering::Greater => {
                        best_gain = gain;
                        self.tied.clear();
                        self.tied.push(e);
                    }
                    std::cmp::Ordering::Equal if gain > 0 => self.tied.push(e),
                    _ => {}
                }
            }
            assert!(best_gain > 0, "bag not coverable by hypergraph edges");
            let pick = match rng.as_deref_mut() {
                Some(r) => self.tied[r.random_range(0..self.tied.len())],
                None => self.tied[0],
            };
            self.uncovered.difference_with(self.h.edge(pick as usize));
            remaining -= best_gain;
            k += 1;
        }
        k
    }

    /// The width (max greedy cover size over all buckets) of the GHD induced
    /// by `σ`. Ties in the greedy cover are broken randomly when `rng` is
    /// supplied, matching the thesis; otherwise first-maximum.
    pub fn width<R: Rng + ?Sized>(
        &mut self,
        sigma: &EliminationOrdering,
        rng: Option<&mut R>,
    ) -> usize {
        let n = sigma.len();
        debug_assert_eq!(n, self.engine.lists.len());
        let mut width = 0;
        let mut rng = rng;
        for i in (0..n).rev() {
            // The bag at position i is {v}∪X with X among positions 0..i, so
            // it has at most i+1 vertices and its cover at most i+1 edges:
            // skipping is safe only once width > i (Fig 7.1's bound, with
            // 0-indexed positions).
            if width > i {
                break;
            }
            let v = sigma.at(i);
            self.engine.collect_bag(v, i, sigma);
            self.bag_vertices.clear();
            if self.covered.contains(v) {
                self.bag_vertices.push(v as u32);
            }
            for idx in 0..self.engine.bag.len() {
                let x = self.engine.bag[idx];
                // unconstrained vertices need no cover
                if self.covered.contains(x as usize) {
                    self.bag_vertices.push(x);
                }
            }
            let k = self.fast_greedy_size(&mut rng);
            width = width.max(k);
            self.engine.forward(sigma);
        }
        self.engine.reset();
        width
    }

    /// Like [`GhwEvaluator::width`] with deterministic tie-breaking, but
    /// every bag cover is routed through `cache` (the first-maximum greedy
    /// of `setcover`), so repeated bags — across positions *and* across
    /// orderings, which share most buckets near the root — are solved once.
    ///
    /// The cache must belong to the same hypergraph as this evaluator.
    pub fn width_cached(&mut self, sigma: &EliminationOrdering, cache: &mut CoverCache) -> usize {
        let n = sigma.len();
        debug_assert_eq!(n, self.engine.lists.len());
        let mut width = 0;
        for i in (0..n).rev() {
            if width > i {
                break; // same Fig 7.1 bound as `width`
            }
            let v = sigma.at(i);
            self.engine.collect_bag(v, i, sigma);
            self.bag_set.clear();
            if self.covered.contains(v) {
                self.bag_set.insert(v);
            }
            for idx in 0..self.engine.bag.len() {
                let x = self.engine.bag[idx] as usize;
                if self.covered.contains(x) {
                    self.bag_set.insert(x);
                }
            }
            let k = cache.greedy_cover_size(&self.bag_set, &self.h);
            width = width.max(k);
            self.engine.forward(sigma);
        }
        self.engine.reset();
        width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::{bucket_elimination, ghd_from_ordering};
    use crate::setcover::CoverMethod;
    use ghd_hypergraph::generators::{graphs, hypergraphs};
    use ghd_prng::rngs::StdRng;

    #[test]
    fn tw_evaluator_matches_bucket_elimination_width() {
        let mut rng = StdRng::seed_from_u64(1);
        for seed in 0..10u64 {
            let g = graphs::gnm_random(25, 60, seed);
            let h = Hypergraph::from_graph(&g);
            let mut eval = TwEvaluator::new(&g);
            for _ in 0..5 {
                let sigma = EliminationOrdering::random(25, &mut rng);
                let fast = eval.width(&sigma);
                let td = bucket_elimination(&h, &sigma);
                assert_eq!(fast, td.width(), "seed {seed}");
            }
        }
    }

    #[test]
    fn tw_evaluator_is_reusable() {
        let g = graphs::grid(4);
        let mut eval = TwEvaluator::new(&g);
        let sigma = EliminationOrdering::identity(16);
        let w1 = eval.width(&sigma);
        let w2 = eval.width(&sigma);
        assert_eq!(w1, w2);
    }

    #[test]
    fn ghw_evaluator_upper_bounds_exact_cover_width() {
        let mut rng = StdRng::seed_from_u64(2);
        for seed in 0..6u64 {
            let h = hypergraphs::random_hypergraph(18, 12, 4, seed);
            let mut eval = GhwEvaluator::new(&h);
            for _ in 0..4 {
                let sigma = EliminationOrdering::random(18, &mut rng);
                let greedy_w = eval.width::<StdRng>(&sigma, None);
                let exact = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
                assert!(
                    greedy_w >= exact.width(),
                    "greedy {} < exact {} (seed {seed})",
                    greedy_w,
                    exact.width()
                );
                let greedy_ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Greedy);
                // Both run Fig 7.2's greedy rule, but they enumerate tied
                // maximum-gain edges in different candidate orders, so the
                // covers may differ slightly on tie-heavy bags. Each is a
                // sound upper bound on the exact cover width.
                assert!(greedy_ghd.width() >= exact.width(), "seed {seed}");
                assert!(
                    greedy_w.abs_diff(greedy_ghd.width()) <= 1,
                    "greedy evaluators diverged: {} vs {} (seed {seed})",
                    greedy_w,
                    greedy_ghd.width()
                );
            }
        }
    }

    #[test]
    fn cached_width_matches_bucket_greedy_and_reuses_covers() {
        use crate::setcover::CoverCache;
        let mut rng = StdRng::seed_from_u64(7);
        for seed in 0..6u64 {
            let h = hypergraphs::random_hypergraph(16, 11, 4, seed);
            let mut eval = GhwEvaluator::new(&h);
            let mut cache = CoverCache::new();
            for _ in 0..4 {
                let sigma = EliminationOrdering::random(16, &mut rng);
                let w = eval.width_cached(&sigma, &mut cache);
                // identical on replay (cache answers are proven facts)
                assert_eq!(w, eval.width_cached(&sigma, &mut cache), "seed {seed}");
                // same greedy rule as the bucket-elimination pipeline
                let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Greedy);
                assert_eq!(w, ghd.width(), "seed {seed}");
                let exact = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
                assert!(w >= exact.width(), "seed {seed}");
            }
            let stats = cache.stats();
            assert!(stats.hits > 0, "replays must hit the cache: {stats:?}");
        }
    }

    #[test]
    fn clique_hypergraph_ghw_is_half_n() {
        // K6 as binary hyperedges: every ordering gives a bag of all 6
        // vertices at some point; its exact/greedy cover is 3 = ⌈6/2⌉.
        let h = hypergraphs::clique(6);
        let mut eval = GhwEvaluator::new(&h);
        let sigma = EliminationOrdering::identity(6);
        assert_eq!(eval.width::<StdRng>(&sigma, None), 3);
    }

    #[test]
    fn grid_identity_ordering_width() {
        // Eliminating an n×n grid row-major gives width exactly n.
        let g = graphs::grid(5);
        let mut eval = TwEvaluator::new(&g);
        let sigma = EliminationOrdering::identity(25);
        assert_eq!(eval.width(&sigma), 5);
    }
}
