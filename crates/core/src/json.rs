//! A minimal, zero-dependency JSON reader.
//!
//! The workspace emits machine-readable telemetry (`ghd … --stats json`,
//! `BENCH_search.json`) but the offline build forbids serde; this module is
//! the in-tree consumer side: a small recursive-descent parser producing a
//! [`Json`] tree, used by the CLI tests ("the stats output is *parseable*
//! JSON") and by the `validate_bench` gate that audits `BENCH_search.json`
//! after `bench_smoke`.
//!
//! Scope: full JSON syntax (objects, arrays, strings with escapes, numbers,
//! booleans, null). Numbers are kept as `f64`, which is plenty for
//! validating telemetry records.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (integers included).
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; key order is not preserved (sorted map).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Object member lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse failure: message plus byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting accepted. A recursive-descent parser consumes
/// stack per nesting level, so an adversarial `[[[[…` document could
/// otherwise overflow the stack; 512 levels is far beyond any telemetry the
/// workspace emits.
const MAX_DEPTH: usize = 512;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.enter()?;
        let r = self.object_body();
        self.depth -= 1;
        r
    }

    fn object_body(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.enter()?;
        let r = self.array_body();
        self.depth -= 1;
        r
    }

    fn array_body(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // surrogate pairs are rejected (not needed for
                            // telemetry); lone BMP code points are accepted
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("unsupported \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) => {
                    // consume one UTF-8 code point
                    let start = self.pos;
                    let len = match c {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    self.pos += len;
                    let s = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // the scanned range is ASCII by construction, but stay total anyway
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|text| text.parse::<f64>().ok())
            .filter(|x| x.is_finite())
            .map(Json::Number)
            .ok_or_else(|| self.err("bad number"))
    }
}

/// Escapes a string for embedding in emitted JSON (the writer-side helper
/// the table binaries share).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(Json::parse("-3.25e2").unwrap(), Json::Number(-325.0));
        assert_eq!(
            Json::parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::String("a\n\"bA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(
            r#"{"bench": "x", "results": [{"lb": 1, "ub": 2, "trace": [[0.5, 3, 1]]}], "ok": true}"#,
        )
        .unwrap();
        assert_eq!(v.get("bench").and_then(Json::as_str), Some("x"));
        let results = v.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("lb").and_then(Json::as_f64), Some(1.0));
        let trace = results[0].get("trace").and_then(Json::as_array).unwrap();
        assert_eq!(trace[0].as_array().unwrap()[1], Json::Number(3.0));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn rejects_pathological_nesting_and_numbers() {
        // 100 levels is fine…
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
        // …but unbounded nesting is rejected, not a stack overflow
        let deep = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
        let e = Json::parse(&deep).unwrap_err();
        assert!(e.message.contains("nesting too deep"), "{e}");
        let deep_obj = "{\"k\":".repeat(100_000);
        assert!(Json::parse(&deep_obj).is_err());
        // sibling (non-nested) containers do not accumulate depth
        let wide = format!("[{}]", vec!["[1]"; 2000].join(","));
        assert!(Json::parse(&wide).is_ok());
        // degenerate numbers return Err rather than panicking or
        // smuggling non-finite values into telemetry consumers
        for bad in ["-", "1e999", "-1e999", "--1", "1e", "1e+"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated", "{'a': 1}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Array(Vec::new()));
        assert_eq!(Json::parse("{}").unwrap(), Json::Object(Default::default()));
        assert_eq!(Json::parse("[ ]").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let s = "line1\nline2\t\"quoted\" \\ end";
        let doc = format!("{{\"k\": \"{}\"}}", escape(s));
        let v = Json::parse(&doc).unwrap();
        assert_eq!(v.get("k").and_then(Json::as_str), Some(s));
    }

    #[test]
    fn unicode_passthrough() {
        let v = Json::parse("\"αβ✓\"").unwrap();
        assert_eq!(v.as_str(), Some("αβ✓"));
    }
}
