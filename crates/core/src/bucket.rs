//! Bucket elimination (Fig 2.10) and vertex elimination (Fig 2.12): building
//! tree decompositions — and, with set covering, generalized hypertree
//! decompositions (§2.5.2) — from elimination orderings.

use crate::ghd::GeneralizedHypertreeDecomposition;
use crate::ordering::EliminationOrdering;
use crate::setcover::CoverMethod;
use crate::tree_decomposition::TreeDecomposition;
use ghd_hypergraph::{BitSet, EliminationGraph, Graph, Hypergraph};

/// Connects any secondary roots (arising from disconnected instances)
/// beneath the primary root so that the result is a single tree; bags of
/// different components are disjoint, so connectedness is preserved.
fn unify_roots(td: &mut TreeDecomposition) {
    let roots: Vec<usize> = td.nodes().filter(|&p| td.parent(p).is_none()).collect();
    if let Some((&first, rest)) = roots.split_first() {
        for &r in rest {
            td.attach(r, first);
        }
    }
}

/// Algorithm *Bucket Elimination* (Fig 2.10): returns the tree decomposition
/// of `h` induced by `σ`. Node `i` of the result is the bucket of vertex
/// `σ.at(i)`; the bucket of `σ.at(0)` is the root.
///
/// # Panics
/// Panics if `σ.len() != h.num_vertices()`.
pub fn bucket_elimination(h: &Hypergraph, sigma: &EliminationOrdering) -> TreeDecomposition {
    let n = h.num_vertices();
    assert_eq!(sigma.len(), n, "ordering/hypergraph size mismatch");
    // χ(B_{v}) indexed by *position* of v.
    let mut chi: Vec<BitSet> = (0..n).map(|_| BitSet::new(n)).collect();
    // Step 2: each hyperedge goes into the bucket of its maximum vertex.
    for edge in h.edges() {
        let max_pos = edge
            .iter()
            .map(|v| sigma.position(v))
            .max()
            .expect("hyperedges are nonempty");
        chi[max_pos].union_with(edge);
    }
    // Step 3: process buckets back to front.
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for i in (0..n).rev() {
        let v = sigma.at(i);
        chi[i].insert(v); // buckets of isolated vertices still get {v}
        let mut a = chi[i].clone();
        a.remove(v);
        if let Some(j) = a.iter().map(|x| sigma.position(x)).max() {
            // every other vertex in the bucket precedes v in σ
            debug_assert!(j < i);
            chi[j].union_with(&a);
            parent[i] = Some(j);
        }
    }
    let mut td = TreeDecomposition::new(n);
    for bag in chi {
        td.add_root(bag);
    }
    for (i, p) in parent.into_iter().enumerate() {
        if let Some(p) = p {
            td.attach(i, p);
        }
    }
    unify_roots(&mut td);
    td
}

/// Algorithm *Vertex Elimination* (Fig 2.12): the same decomposition as
/// [`bucket_elimination`], constructed on the primal graph by eliminating
/// vertices back-to-front. Node `i` is the bucket of `σ.at(i)`.
pub fn vertex_elimination(g: &Graph, sigma: &EliminationOrdering) -> TreeDecomposition {
    let n = g.num_vertices();
    assert_eq!(sigma.len(), n, "ordering/graph size mismatch");
    let mut eg = EliminationGraph::new(g);
    let mut bags: Vec<BitSet> = Vec::with_capacity(n);
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for i in (0..n).rev() {
        let v = sigma.at(i);
        let mut bag = eg.neighbors(v).clone();
        let link = bag.iter().map(|x| sigma.position(x)).max();
        bag.insert(v);
        bags.push(bag);
        parent[i] = link;
        eg.eliminate(v);
    }
    bags.reverse(); // bags were produced back-to-front
    let mut td = TreeDecomposition::new(n);
    for bag in bags {
        td.add_root(bag);
    }
    for (i, p) in parent.into_iter().enumerate() {
        if let Some(p) = p {
            td.attach(i, p);
        }
    }
    unify_roots(&mut td);
    td
}

/// Builds a generalized hypertree decomposition from an elimination ordering
/// (§2.5.2): vertex elimination on the primal graph, then a set cover of
/// every bag. With [`CoverMethod::Exact`] this realises the construction of
/// Theorem 3 — at least one ordering yields a GHD of width `ghw(H)`.
pub fn ghd_from_ordering(
    h: &Hypergraph,
    sigma: &EliminationOrdering,
    method: CoverMethod,
) -> GeneralizedHypertreeDecomposition {
    let mut td = vertex_elimination(&h.primal_graph(), sigma);
    // Vertices in no hyperedge are unconstrained (isolated in the primal
    // graph); condition 3 could never cover them, so they are dropped from
    // the bags — harmless, since no hyperedge mentions them either.
    let covered = h.covered_vertices();
    if covered.len() < h.num_vertices() {
        for p in td.nodes() {
            td.bag_mut(p).intersect_with(&covered);
        }
    }
    GeneralizedHypertreeDecomposition::from_tree_decomposition(td, h, method)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghd_prng::rngs::StdRng;

    /// Fig 2.11's hypergraph: C1={x1,x2,x3}, C2={x1,x5,x6}, C3={x3,x4,x5}.
    fn fig_2_11() -> Hypergraph {
        Hypergraph::from_edges(6, [vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]])
    }

    /// σ = (x6, x5, x4, x3, x2, x1): x1 is eliminated first.
    fn fig_2_11_sigma() -> EliminationOrdering {
        EliminationOrdering::new(vec![5, 4, 3, 2, 1, 0]).unwrap()
    }

    #[test]
    fn bucket_elimination_reproduces_fig_2_11() {
        let h = fig_2_11();
        let sigma = fig_2_11_sigma();
        let td = bucket_elimination(&h, &sigma);
        td.verify(&h).unwrap();
        // Fig 2.11(b): eliminating x1 gives bag {x1,x2,x3,x5,x6}; then
        // {x2,x3,x5,x6} propagates. Width = 4 (bag of 5 vertices).
        assert_eq!(td.width(), 4);
        // bucket of x1 (position 5) holds {x1,x2,x3,x5,x6} = {0,1,2,4,5}
        assert_eq!(td.bag(5).to_vec(), vec![0, 1, 2, 4, 5]);
    }

    #[test]
    fn vertex_and_bucket_elimination_agree() {
        let mut rng = StdRng::seed_from_u64(99);
        for seed in 0..20u64 {
            let h = ghd_hypergraph::generators::hypergraphs::random_hypergraph(14, 10, 4, seed);
            let sigma = EliminationOrdering::random(14, &mut rng);
            let a = bucket_elimination(&h, &sigma);
            let b = vertex_elimination(&h.primal_graph(), &sigma);
            assert_eq!(a.num_nodes(), b.num_nodes());
            for p in a.nodes() {
                assert_eq!(a.bag(p), b.bag(p), "bag {p} differs (seed {seed})");
                assert_eq!(a.parent(p), b.parent(p), "parent {p} differs (seed {seed})");
            }
            a.verify(&h).unwrap();
            b.verify(&h).unwrap();
        }
    }

    #[test]
    fn decompositions_from_random_orderings_are_always_valid() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = ghd_hypergraph::generators::graphs::queen(4);
        let h = Hypergraph::from_graph(&g);
        for _ in 0..10 {
            let sigma = EliminationOrdering::random(16, &mut rng);
            let td = vertex_elimination(&g, &sigma);
            td.verify_graph(&g).unwrap();
            td.verify(&h).unwrap();
        }
    }

    #[test]
    fn ghd_from_ordering_is_valid_and_completable() {
        let h = fig_2_11();
        let sigma = fig_2_11_sigma();
        let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
        ghd.verify(&h).unwrap();
        // Fig 2.11(c): the bag {x1,x2,x3,x5,x6} is covered by C1 ∪ C2 → width 2.
        assert_eq!(ghd.width(), 2);
        let complete = ghd.complete(&h);
        complete.verify(&h).unwrap();
        assert!(complete.is_complete(&h));
    }

    #[test]
    fn disconnected_instances_yield_one_tree() {
        let h = Hypergraph::from_edges(4, [vec![0, 1], vec![2, 3]]);
        let sigma = EliminationOrdering::identity(4);
        let td = bucket_elimination(&h, &sigma);
        td.verify(&h).unwrap();
    }

    #[test]
    fn acyclic_chain_has_ghw_1_via_good_ordering() {
        let h = ghd_hypergraph::generators::hypergraphs::acyclic_chain(4, 3, 1);
        // eliminate strictly from one end: identity ordering works for the
        // chain layout (vertices numbered along the chain)
        let n = h.num_vertices();
        let sigma = EliminationOrdering::identity(n);
        let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
        ghd.verify(&h).unwrap();
        assert_eq!(ghd.width(), 1);
    }
}
