//! Elimination orderings (Definition 15): permutations of the vertices of a
//! graph or hypergraph.
//!
//! Throughout the workspace the thesis' convention is used: for an ordering
//! `σ = (v_1, …, v_n)`, vertices are *eliminated from the back* — `v_n`
//! first, `v_1` last (Definition 16, bucket elimination Fig 2.10). The
//! notation `x <_σ y` ("x precedes y") means `x` is eliminated *after* `y`.

use ghd_prng::seq::SliceRandom;
use ghd_prng::Rng;

/// A permutation of `0..n` acting as an elimination ordering.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EliminationOrdering {
    order: Vec<usize>,
    /// `position[v]` = index of `v` in `order`.
    position: Vec<usize>,
}

impl EliminationOrdering {
    /// Wraps a permutation. Returns `None` if `order` is not a permutation of
    /// `0..order.len()`.
    pub fn new(order: Vec<usize>) -> Option<Self> {
        let n = order.len();
        let mut position = vec![usize::MAX; n];
        for (i, &v) in order.iter().enumerate() {
            if v >= n || position[v] != usize::MAX {
                return None;
            }
            position[v] = i;
        }
        Some(EliminationOrdering { order, position })
    }

    /// The identity ordering `(0, 1, …, n−1)`.
    pub fn identity(n: usize) -> Self {
        EliminationOrdering {
            order: (0..n).collect(),
            position: (0..n).collect(),
        }
    }

    /// A uniformly random ordering.
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(rng);
        Self::new(order).expect("shuffle preserves permutation")
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` for the empty ordering.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The vertex at position `i` (`v_{i+1}` in thesis notation).
    #[inline]
    pub fn at(&self, i: usize) -> usize {
        self.order[i]
    }

    /// The position of vertex `v` within the ordering.
    #[inline]
    pub fn position(&self, v: usize) -> usize {
        self.position[v]
    }

    /// `true` iff `x <_σ y`, i.e. `x` precedes `y` (and is eliminated later).
    #[inline]
    pub fn precedes(&self, x: usize, y: usize) -> bool {
        self.position[x] < self.position[y]
    }

    /// The underlying permutation, front (eliminated last) to back
    /// (eliminated first).
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.order
    }

    /// Iterates vertices in *elimination order* (back to front).
    pub fn elimination_sequence(&self) -> impl Iterator<Item = usize> + '_ {
        self.order.iter().rev().copied()
    }

    /// Consumes the ordering, returning the permutation.
    pub fn into_vec(self) -> Vec<usize> {
        self.order
    }
}

impl From<EliminationOrdering> for Vec<usize> {
    fn from(o: EliminationOrdering) -> Vec<usize> {
        o.into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghd_prng::rngs::StdRng;

    #[test]
    fn rejects_non_permutations() {
        assert!(EliminationOrdering::new(vec![0, 1, 1]).is_none());
        assert!(EliminationOrdering::new(vec![0, 3]).is_none());
        assert!(EliminationOrdering::new(vec![]).is_some());
    }

    #[test]
    fn positions_and_precedence() {
        let o = EliminationOrdering::new(vec![2, 0, 1]).unwrap();
        assert_eq!(o.position(2), 0);
        assert_eq!(o.at(2), 1);
        assert!(o.precedes(2, 1)); // 2 comes first → eliminated last
        let seq: Vec<usize> = o.elimination_sequence().collect();
        assert_eq!(seq, vec![1, 0, 2]);
    }

    #[test]
    fn random_is_permutation_and_seed_stable() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = EliminationOrdering::random(30, &mut rng);
        assert_eq!(a.len(), 30);
        let mut sorted = a.as_slice().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..30).collect::<Vec<_>>());
        let mut rng2 = StdRng::seed_from_u64(5);
        let b = EliminationOrdering::random(30, &mut rng2);
        assert_eq!(a, b);
    }
}
