//! Serialisation of decompositions: the PACE-2017 `.td` format for tree
//! decompositions, and a readable text format for generalized hypertree
//! decompositions (bags plus λ-labels).

use crate::ghd::GeneralizedHypertreeDecomposition;
use crate::tree_decomposition::TreeDecomposition;
use ghd_hypergraph::io::{check_header_count, ParseError};
use ghd_hypergraph::{BitSet, Hypergraph};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Serialises a tree decomposition in PACE `.td` format:
/// `s td <#bags> <max-bag-size> <#vertices>`, one `b <id> v…` line per bag
/// (1-based ids) and one `i j` line per tree edge.
pub fn write_td(td: &TreeDecomposition) -> String {
    let mut out = String::new();
    let max_bag = td.nodes().map(|p| td.bag(p).len()).max().unwrap_or(0);
    let _ = writeln!(
        out,
        "s td {} {} {}",
        td.num_nodes(),
        max_bag,
        td.num_vertices()
    );
    for p in td.nodes() {
        let vs: Vec<String> = td.bag(p).iter().map(|v| (v + 1).to_string()).collect();
        let _ = writeln!(out, "b {} {}", p + 1, vs.join(" "));
    }
    for (a, b) in td.edges() {
        let _ = writeln!(out, "{} {}", a + 1, b + 1);
    }
    out
}

/// Parses a PACE `.td` file into a rooted [`TreeDecomposition`] (rooted at
/// bag 1; parents assigned by breadth-first traversal of the given edges).
pub fn parse_td(input: &str) -> Result<TreeDecomposition, ParseError> {
    let mut header: Option<(usize, usize)> = None; // (#bags, #vertices)
    let mut bags: Vec<Option<BitSet>> = Vec::new();
    let mut tree_edges: Vec<(usize, usize)> = Vec::new();
    let mut seen_edges: HashSet<(usize, usize)> = HashSet::new();
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("s ") {
            if header.is_some() {
                return Err(err(lineno, "duplicate solution line"));
            }
            let mut it = rest.split_whitespace();
            if it.next() != Some("td") {
                return Err(err(lineno, "expected `s td`"));
            }
            let nb: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(lineno, "bad bag count"))?;
            let _max: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(lineno, "bad max bag size"))?;
            let nv: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(lineno, "bad vertex count"))?;
            check_header_count(nb, input.len(), lineno, "bag")?;
            check_header_count(nv, input.len(), lineno, "vertex")?;
            header = Some((nb, nv));
            bags = vec![None; nb];
            continue;
        }
        let (nb, nv) = header.ok_or_else(|| err(lineno, "content before `s td` line"))?;
        if let Some(rest) = line.strip_prefix("b ") {
            let mut it = rest.split_whitespace();
            let id: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(lineno, "bad bag id"))?;
            if id == 0 || id > nb {
                return Err(err(lineno, "bag id out of range"));
            }
            let mut bag = BitSet::new(nv);
            for tok in it {
                let v: usize = tok.parse().map_err(|_| err(lineno, "bad bag vertex"))?;
                if v == 0 || v > nv {
                    return Err(err(lineno, "bag vertex out of range"));
                }
                bag.insert(v - 1);
            }
            if bags[id - 1].replace(bag).is_some() {
                return Err(err(lineno, "duplicate bag id"));
            }
        } else {
            let mut it = line.split_whitespace();
            let a: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(lineno, "bad tree edge"))?;
            let b: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(lineno, "bad tree edge"))?;
            if a == 0 || b == 0 || a > nb || b > nb {
                return Err(err(lineno, "tree edge out of range"));
            }
            if a == b {
                return Err(err(lineno, "tree edge is a self-loop"));
            }
            if it.next().is_some() {
                return Err(err(lineno, "trailing tokens after tree edge"));
            }
            let edge = (a.min(b) - 1, a.max(b) - 1);
            if !seen_edges.insert(edge) {
                return Err(err(lineno, "duplicate tree edge"));
            }
            tree_edges.push(edge);
        }
    }
    let (nb, nv) = header.ok_or_else(|| err(0, "no `s td` line"))?;
    let bags: Vec<BitSet> = bags
        .into_iter()
        .enumerate()
        .map(|(i, b)| b.ok_or_else(|| err(0, format!("bag {} missing", i + 1))))
        .collect::<Result<_, _>>()?;

    // A tree on `nb` nodes has exactly `nb - 1` edges; together with the
    // connectivity check below this rejects both cycles and forests.
    if tree_edges.len() != nb.saturating_sub(1) {
        return Err(err(
            0,
            format!(
                "expected {} tree edges for {nb} bags, found {}",
                nb.saturating_sub(1),
                tree_edges.len()
            ),
        ));
    }

    // root at bag 0 and BFS-orient the edges
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nb];
    for &(a, b) in &tree_edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut td = TreeDecomposition::new(nv);
    let mut id_map = vec![usize::MAX; nb];
    let mut queue = std::collections::VecDeque::new();
    let mut visited = vec![false; nb];
    if nb > 0 {
        visited[0] = true;
        id_map[0] = td.add_root(bags[0].clone());
        queue.push_back(0);
    }
    while let Some(u) = queue.pop_front() {
        for &w in &adj[u] {
            if !visited[w] {
                visited[w] = true;
                id_map[w] = td.add_child(id_map[u], bags[w].clone());
                queue.push_back(w);
            }
        }
    }
    if visited.iter().any(|&v| !v) {
        return Err(err(0, "tree edges do not connect all bags"));
    }
    Ok(td)
}

/// Serialises a generalized hypertree decomposition in a readable format:
/// one line per node, `<id>: chi {v…} lambda {edge-names…} parent <id|->`.
pub fn write_ghd(ghd: &GeneralizedHypertreeDecomposition, h: &Hypergraph) -> String {
    let td = ghd.tree();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ghd {} nodes, width {}",
        td.num_nodes(),
        ghd.width()
    );
    for p in td.nodes() {
        let chi: Vec<&str> = td.bag(p).iter().map(|v| h.vertex_name(v)).collect();
        let lambda: Vec<&str> = ghd.lambda(p).iter().map(|&e| h.edge_name(e)).collect();
        let parent = td
            .parent(p)
            .map_or("-".to_string(), |q| (q + 1).to_string());
        let _ = writeln!(
            out,
            "{}: chi {{{}}} lambda {{{}}} parent {}",
            p + 1,
            chi.join(","),
            lambda.join(","),
            parent
        );
    }
    out
}

/// Parses the [`write_ghd`] text format back into a
/// [`GeneralizedHypertreeDecomposition`] over `h`.
///
/// The parser is *total* on untrusted input: any truncation, unknown
/// vertex/edge name, out-of-range or duplicate node id, multiple roots,
/// parent-pointer cycle, or header/body mismatch yields a [`ParseError`]
/// instead of a panic, and the node count in the header is checked for
/// plausibility against the input size before any allocation.
pub fn parse_ghd(
    input: &str,
    h: &Hypergraph,
) -> Result<GeneralizedHypertreeDecomposition, ParseError> {
    let mut lines = input.lines().enumerate();
    // header: `ghd <n> nodes, width <w>`
    let (header_no, header) = loop {
        match lines.next() {
            Some((i, raw)) => {
                let t = raw.trim();
                if t.is_empty() || t.starts_with('#') {
                    continue;
                }
                break (i + 1, t);
            }
            None => return Err(err(0, "empty input")),
        }
    };
    let rest = header
        .strip_prefix("ghd ")
        .ok_or_else(|| err(header_no, "expected `ghd <n> nodes, width <w>` header"))?;
    let (n_str, w_str) = rest
        .split_once(" nodes, width ")
        .ok_or_else(|| err(header_no, "malformed ghd header"))?;
    let n: usize = n_str
        .trim()
        .parse()
        .map_err(|_| err(header_no, "bad node count"))?;
    let width: usize = w_str
        .trim()
        .parse()
        .map_err(|_| err(header_no, "bad width"))?;
    check_header_count(n, input.len(), header_no, "node")?;
    if n == 0 {
        return Err(err(header_no, "ghd must have at least one node"));
    }

    let vertex_ids: HashMap<&str, usize> = (0..h.num_vertices())
        .map(|v| (h.vertex_name(v), v))
        .collect();
    let edge_ids: HashMap<&str, usize> =
        (0..h.num_edges()).map(|e| (h.edge_name(e), e)).collect();

    // node id -> (chi, lambda, parent)
    type NodeRec = (BitSet, Vec<usize>, Option<usize>);
    let mut nodes: Vec<Option<NodeRec>> = vec![None; n];
    for (i, raw) in lines {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (id_str, rest) = line
            .split_once(':')
            .ok_or_else(|| err(lineno, "expected `<id>: chi {…} lambda {…} parent <id|->`"))?;
        let id: usize = id_str
            .trim()
            .parse()
            .map_err(|_| err(lineno, "bad node id"))?;
        if id == 0 || id > n {
            return Err(err(lineno, "node id out of range"));
        }
        let rest = rest
            .trim_start()
            .strip_prefix("chi {")
            .ok_or_else(|| err(lineno, "expected `chi {…}`"))?;
        let (chi_str, rest) = rest
            .split_once('}')
            .ok_or_else(|| err(lineno, "unterminated chi set"))?;
        let rest = rest
            .trim_start()
            .strip_prefix("lambda {")
            .ok_or_else(|| err(lineno, "expected `lambda {…}`"))?;
        let (lambda_str, rest) = rest
            .split_once('}')
            .ok_or_else(|| err(lineno, "unterminated lambda set"))?;
        let parent_str = rest
            .trim_start()
            .strip_prefix("parent ")
            .ok_or_else(|| err(lineno, "expected `parent <id|->`"))?
            .trim();
        let parent = if parent_str == "-" {
            None
        } else {
            let p: usize = parent_str
                .parse()
                .map_err(|_| err(lineno, "bad parent id"))?;
            if p == 0 || p > n {
                return Err(err(lineno, "parent id out of range"));
            }
            if p == id {
                return Err(err(lineno, "node is its own parent"));
            }
            Some(p - 1)
        };
        let mut chi = BitSet::new(h.num_vertices());
        for name in chi_str.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let &v = vertex_ids
                .get(name)
                .ok_or_else(|| err(lineno, format!("unknown vertex `{name}`")))?;
            chi.insert(v);
        }
        let mut lambda = Vec::new();
        for name in lambda_str
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
        {
            let &e = edge_ids
                .get(name)
                .ok_or_else(|| err(lineno, format!("unknown hyperedge `{name}`")))?;
            lambda.push(e);
        }
        if nodes[id - 1].replace((chi, lambda, parent)).is_some() {
            return Err(err(lineno, "duplicate node id"));
        }
    }
    let nodes: Vec<NodeRec> = nodes
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.ok_or_else(|| err(0, format!("node {} missing", i + 1))))
        .collect::<Result<_, _>>()?;

    // exactly one root; orient children from the parent pointers
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut root: Option<usize> = None;
    for (i, (_, _, parent)) in nodes.iter().enumerate() {
        match parent {
            None => {
                if root.replace(i).is_some() {
                    return Err(err(0, "multiple roots (more than one `parent -`)"));
                }
            }
            Some(p) => children[*p].push(i),
        }
    }
    let root = root.ok_or_else(|| err(0, "no root node (`parent -`)"))?;

    // BFS from the root; an unvisited node implies a parent-pointer cycle
    let mut td = TreeDecomposition::new(h.num_vertices());
    let mut id_map = vec![usize::MAX; n];
    id_map[root] = td.add_root(nodes[root].0.clone());
    let mut queue = std::collections::VecDeque::from([root]);
    while let Some(u) = queue.pop_front() {
        for &c in &children[u] {
            id_map[c] = td.add_child(id_map[u], nodes[c].0.clone());
            queue.push_back(c);
        }
    }
    if id_map.contains(&usize::MAX) {
        return Err(err(0, "parent pointers contain a cycle"));
    }
    let mut lambdas: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, (_, lambda, _)) in nodes.into_iter().enumerate() {
        lambdas[id_map[i]] = lambda;
    }
    let ghd = GeneralizedHypertreeDecomposition::new(td, lambdas);
    if ghd.width() != width {
        return Err(err(
            header_no,
            format!("header width {width} does not match body width {}", ghd.width()),
        ));
    }
    Ok(ghd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::{ghd_from_ordering, vertex_elimination};
    use crate::setcover::CoverMethod;
    use crate::EliminationOrdering;
    use ghd_hypergraph::generators::hypergraphs;

    #[test]
    fn td_round_trip_preserves_validity_and_width() {
        for seed in 0..8u64 {
            let h = hypergraphs::random_hypergraph(12, 8, 4, seed);
            let sigma = EliminationOrdering::identity(12);
            let td = vertex_elimination(&h.primal_graph(), &sigma);
            let text = write_td(&td);
            let parsed = parse_td(&text).unwrap();
            parsed.verify(&h).unwrap();
            assert_eq!(parsed.width(), td.width(), "seed {seed}");
            assert_eq!(parsed.num_nodes(), td.num_nodes());
        }
    }

    #[test]
    fn td_format_header_shape() {
        let h = hypergraphs::clique(4);
        let sigma = EliminationOrdering::identity(4);
        let td = vertex_elimination(&h.primal_graph(), &sigma);
        let text = write_td(&td);
        assert!(text.starts_with("s td 4 4 4"), "{text}");
    }

    #[test]
    fn td_parser_rejects_malformed() {
        assert!(parse_td("b 1 1 2\n").is_err()); // bag before header
        assert!(parse_td("s td 2 2 3\nb 1 1\n").is_err()); // missing bag 2
        assert!(parse_td("s td 1 1 2\nb 1 9\n").is_err()); // vertex range
        assert!(parse_td("s td 2 1 2\nb 1 1\nb 2 2\n").is_err()); // disconnected
        assert!(parse_td("s td 1 1 1\nb 1 1\nb 1 1\n").is_err()); // dup id
    }

    #[test]
    fn td_parser_rejects_adversarial_edge_cases() {
        // empty file / whitespace only
        assert!(parse_td("").is_err());
        assert!(parse_td("\n\n  \n").is_err());
        // duplicate `b` lines for the same bag id
        assert!(parse_td("s td 2 1 2\nb 1 1\nb 1 2\nb 2 2\n1 2\n").is_err());
        // bag id beyond the header count
        assert!(parse_td("s td 2 1 2\nb 1 1\nb 3 2\n1 2\n").is_err());
        // self-loop tree edge
        assert!(parse_td("s td 2 1 2\nb 1 1\nb 2 2\n1 1\n").is_err());
        // duplicate tree edge (both orientations)
        assert!(parse_td("s td 2 1 2\nb 1 1\nb 2 2\n1 2\n1 2\n").is_err());
        assert!(parse_td("s td 2 1 2\nb 1 1\nb 2 2\n1 2\n2 1\n").is_err());
        // cyclic edge list (3 bags, 3 edges)
        assert!(
            parse_td("s td 3 1 3\nb 1 1\nb 2 2\nb 3 3\n1 2\n2 3\n3 1\n").is_err(),
            "cycle must be rejected"
        );
        // disconnected + cycle (edge count matches a tree, but no tree)
        assert!(
            parse_td("s td 4 1 4\nb 1 1\nb 2 2\nb 3 3\nb 4 4\n2 3\n3 4\n4 2\n").is_err()
        );
        // trailing garbage after a tree edge
        assert!(parse_td("s td 2 1 2\nb 1 1\nb 2 2\n1 2 junk\n").is_err());
        // trailing garbage line (parsed as a malformed tree edge)
        assert!(parse_td("s td 2 1 2\nb 1 1\nb 2 2\n1 2\nwat\n").is_err());
        // implausible header must be rejected before allocating
        assert!(parse_td("s td 99999999999 1 2\n").is_err());
        assert!(parse_td("s td 2 1 99999999999\n").is_err());
        // duplicate header
        assert!(parse_td("s td 1 1 1\ns td 1 1 1\nb 1 1\n").is_err());
    }

    #[test]
    fn ghd_round_trip_preserves_width_and_validity() {
        for seed in 0..6u64 {
            let h = hypergraphs::random_hypergraph(12, 8, 4, seed);
            let sigma = EliminationOrdering::identity(12);
            let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Greedy);
            let text = write_ghd(&ghd, &h);
            let parsed = parse_ghd(&text, &h).unwrap();
            parsed.verify(&h).unwrap();
            assert_eq!(parsed.width(), ghd.width(), "seed {seed}");
            assert_eq!(parsed.tree().num_nodes(), ghd.tree().num_nodes());
        }
    }

    #[test]
    fn ghd_parser_rejects_malformed() {
        let h = hypergraphs::clique(3); // vertices v0..v2, edges e0..e2
        let v = h.vertex_name(0).to_string();
        let e = h.edge_name(0).to_string();
        let good = format!("ghd 1 nodes, width 1\n1: chi {{{v}}} lambda {{{e}}} parent -\n");
        assert!(parse_ghd(&good, &h).is_ok());
        // empty / truncated inputs
        assert!(parse_ghd("", &h).is_err());
        assert!(parse_ghd("ghd 1 nodes, width 1\n", &h).is_err());
        assert!(parse_ghd("ghd 1 nodes, wi", &h).is_err());
        assert!(parse_ghd(&format!("ghd 1 nodes, width 1\n1: chi {{{v}"), &h).is_err());
        // unknown names
        assert!(parse_ghd(
            &format!("ghd 1 nodes, width 1\n1: chi {{nope}} lambda {{{e}}} parent -\n"),
            &h
        )
        .is_err());
        assert!(parse_ghd(
            &format!("ghd 1 nodes, width 1\n1: chi {{{v}}} lambda {{nope}} parent -\n"),
            &h
        )
        .is_err());
        // node id out of range, duplicate ids, bad parents
        assert!(parse_ghd(
            &format!("ghd 1 nodes, width 1\n2: chi {{{v}}} lambda {{{e}}} parent -\n"),
            &h
        )
        .is_err());
        let dup = format!(
            "ghd 2 nodes, width 1\n1: chi {{{v}}} lambda {{{e}}} parent -\n1: chi {{{v}}} lambda {{{e}}} parent -\n"
        );
        assert!(parse_ghd(&dup, &h).is_err());
        let self_parent =
            format!("ghd 1 nodes, width 1\n1: chi {{{v}}} lambda {{{e}}} parent 1\n");
        assert!(parse_ghd(&self_parent, &h).is_err());
        // two roots
        let two_roots = format!(
            "ghd 2 nodes, width 1\n1: chi {{{v}}} lambda {{{e}}} parent -\n2: chi {{{v}}} lambda {{{e}}} parent -\n"
        );
        assert!(parse_ghd(&two_roots, &h).is_err());
        // parent-pointer cycle (2 <-> 3) next to a valid root
        let cyc = format!(
            "ghd 3 nodes, width 1\n1: chi {{{v}}} lambda {{{e}}} parent -\n2: chi {{{v}}} lambda {{{e}}} parent 3\n3: chi {{{v}}} lambda {{{e}}} parent 2\n"
        );
        assert!(parse_ghd(&cyc, &h).is_err());
        // header width mismatch
        let wrong_w = format!("ghd 1 nodes, width 7\n1: chi {{{v}}} lambda {{{e}}} parent -\n");
        assert!(parse_ghd(&wrong_w, &h).is_err());
        // implausible node count rejected before allocation
        assert!(parse_ghd("ghd 99999999999 nodes, width 1\n", &h).is_err());
    }

    #[test]
    fn ghd_text_output_mentions_edge_names() {
        let h = hypergraphs::adder(2);
        let sigma = EliminationOrdering::identity(h.num_vertices());
        let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
        let text = write_ghd(&ghd, &h);
        assert!(text.contains("lambda"));
        assert!(text.contains("xor1_1") || text.contains("maj_1") || text.contains("in_a1"));
    }
}
