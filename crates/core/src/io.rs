//! Serialisation of decompositions: the PACE-2017 `.td` format for tree
//! decompositions, and a readable text format for generalized hypertree
//! decompositions (bags plus λ-labels).

use crate::ghd::GeneralizedHypertreeDecomposition;
use crate::tree_decomposition::TreeDecomposition;
use ghd_hypergraph::io::ParseError;
use ghd_hypergraph::{BitSet, Hypergraph};
use std::fmt::Write as _;

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Serialises a tree decomposition in PACE `.td` format:
/// `s td <#bags> <max-bag-size> <#vertices>`, one `b <id> v…` line per bag
/// (1-based ids) and one `i j` line per tree edge.
pub fn write_td(td: &TreeDecomposition) -> String {
    let mut out = String::new();
    let max_bag = td.nodes().map(|p| td.bag(p).len()).max().unwrap_or(0);
    let _ = writeln!(
        out,
        "s td {} {} {}",
        td.num_nodes(),
        max_bag,
        td.num_vertices()
    );
    for p in td.nodes() {
        let vs: Vec<String> = td.bag(p).iter().map(|v| (v + 1).to_string()).collect();
        let _ = writeln!(out, "b {} {}", p + 1, vs.join(" "));
    }
    for (a, b) in td.edges() {
        let _ = writeln!(out, "{} {}", a + 1, b + 1);
    }
    out
}

/// Parses a PACE `.td` file into a rooted [`TreeDecomposition`] (rooted at
/// bag 1; parents assigned by breadth-first traversal of the given edges).
pub fn parse_td(input: &str) -> Result<TreeDecomposition, ParseError> {
    let mut header: Option<(usize, usize)> = None; // (#bags, #vertices)
    let mut bags: Vec<Option<BitSet>> = Vec::new();
    let mut tree_edges: Vec<(usize, usize)> = Vec::new();
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("s ") {
            if header.is_some() {
                return Err(err(lineno, "duplicate solution line"));
            }
            let mut it = rest.split_whitespace();
            if it.next() != Some("td") {
                return Err(err(lineno, "expected `s td`"));
            }
            let nb: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(lineno, "bad bag count"))?;
            let _max: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(lineno, "bad max bag size"))?;
            let nv: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(lineno, "bad vertex count"))?;
            header = Some((nb, nv));
            bags = vec![None; nb];
            continue;
        }
        let (nb, nv) = header.ok_or_else(|| err(lineno, "content before `s td` line"))?;
        if let Some(rest) = line.strip_prefix("b ") {
            let mut it = rest.split_whitespace();
            let id: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(lineno, "bad bag id"))?;
            if id == 0 || id > nb {
                return Err(err(lineno, "bag id out of range"));
            }
            let mut bag = BitSet::new(nv);
            for tok in it {
                let v: usize = tok.parse().map_err(|_| err(lineno, "bad bag vertex"))?;
                if v == 0 || v > nv {
                    return Err(err(lineno, "bag vertex out of range"));
                }
                bag.insert(v - 1);
            }
            if bags[id - 1].replace(bag).is_some() {
                return Err(err(lineno, "duplicate bag id"));
            }
        } else {
            let mut it = line.split_whitespace();
            let a: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(lineno, "bad tree edge"))?;
            let b: usize = it
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(lineno, "bad tree edge"))?;
            if a == 0 || b == 0 || a > nb || b > nb {
                return Err(err(lineno, "tree edge out of range"));
            }
            tree_edges.push((a - 1, b - 1));
        }
    }
    let (nb, nv) = header.ok_or_else(|| err(0, "no `s td` line"))?;
    let bags: Vec<BitSet> = bags
        .into_iter()
        .enumerate()
        .map(|(i, b)| b.ok_or_else(|| err(0, format!("bag {} missing", i + 1))))
        .collect::<Result<_, _>>()?;

    // root at bag 0 and BFS-orient the edges
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nb];
    for &(a, b) in &tree_edges {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut td = TreeDecomposition::new(nv);
    let mut id_map = vec![usize::MAX; nb];
    let mut queue = std::collections::VecDeque::new();
    let mut visited = vec![false; nb];
    if nb > 0 {
        visited[0] = true;
        id_map[0] = td.add_root(bags[0].clone());
        queue.push_back(0);
    }
    while let Some(u) = queue.pop_front() {
        for &w in &adj[u] {
            if !visited[w] {
                visited[w] = true;
                id_map[w] = td.add_child(id_map[u], bags[w].clone());
                queue.push_back(w);
            }
        }
    }
    if visited.iter().any(|&v| !v) {
        return Err(err(0, "tree edges do not connect all bags"));
    }
    Ok(td)
}

/// Serialises a generalized hypertree decomposition in a readable format:
/// one line per node, `<id>: chi {v…} lambda {edge-names…} parent <id|->`.
pub fn write_ghd(ghd: &GeneralizedHypertreeDecomposition, h: &Hypergraph) -> String {
    let td = ghd.tree();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "ghd {} nodes, width {}",
        td.num_nodes(),
        ghd.width()
    );
    for p in td.nodes() {
        let chi: Vec<&str> = td.bag(p).iter().map(|v| h.vertex_name(v)).collect();
        let lambda: Vec<&str> = ghd.lambda(p).iter().map(|&e| h.edge_name(e)).collect();
        let parent = td
            .parent(p)
            .map_or("-".to_string(), |q| (q + 1).to_string());
        let _ = writeln!(
            out,
            "{}: chi {{{}}} lambda {{{}}} parent {}",
            p + 1,
            chi.join(","),
            lambda.join(","),
            parent
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::{ghd_from_ordering, vertex_elimination};
    use crate::setcover::CoverMethod;
    use crate::EliminationOrdering;
    use ghd_hypergraph::generators::hypergraphs;

    #[test]
    fn td_round_trip_preserves_validity_and_width() {
        for seed in 0..8u64 {
            let h = hypergraphs::random_hypergraph(12, 8, 4, seed);
            let sigma = EliminationOrdering::identity(12);
            let td = vertex_elimination(&h.primal_graph(), &sigma);
            let text = write_td(&td);
            let parsed = parse_td(&text).unwrap();
            parsed.verify(&h).unwrap();
            assert_eq!(parsed.width(), td.width(), "seed {seed}");
            assert_eq!(parsed.num_nodes(), td.num_nodes());
        }
    }

    #[test]
    fn td_format_header_shape() {
        let h = hypergraphs::clique(4);
        let sigma = EliminationOrdering::identity(4);
        let td = vertex_elimination(&h.primal_graph(), &sigma);
        let text = write_td(&td);
        assert!(text.starts_with("s td 4 4 4"), "{text}");
    }

    #[test]
    fn td_parser_rejects_malformed() {
        assert!(parse_td("b 1 1 2\n").is_err()); // bag before header
        assert!(parse_td("s td 2 2 3\nb 1 1\n").is_err()); // missing bag 2
        assert!(parse_td("s td 1 1 2\nb 1 9\n").is_err()); // vertex range
        assert!(parse_td("s td 2 1 2\nb 1 1\nb 2 2\n").is_err()); // disconnected
        assert!(parse_td("s td 1 1 1\nb 1 1\nb 1 1\n").is_err()); // dup id
    }

    #[test]
    fn ghd_text_output_mentions_edge_names() {
        let h = hypergraphs::adder(2);
        let sigma = EliminationOrdering::identity(h.num_vertices());
        let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
        let text = write_ghd(&ghd, &h);
        assert!(text.contains("lambda"));
        assert!(text.contains("xor1_1") || text.contains("maj_1") || text.contains("in_a1"));
    }
}
