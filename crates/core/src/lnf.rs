//! The *leaf normal form* for tree decompositions (Chapter 3) and the
//! extraction of elimination orderings from it.
//!
//! This is the constructive side of the thesis' central theoretical result:
//! from any generalized hypertree decomposition of width k one can derive an
//! elimination ordering σ with `width(σ, H) ≤ k` (Theorem 2), hence the set
//! of all elimination orderings is a sound and complete search space for the
//! generalized hypertree width (Theorem 3).
//!
//! * [`leaf_normal_form`] — Algorithm *Transform Leaf Normal Form* (Fig 3.1).
//! * [`ordering_from_lnf`] — the depth-ordering of Lemma 13 (§3.3), built on
//!   deepest common ancestors of leaves.

use crate::ordering::EliminationOrdering;
use crate::tree_decomposition::TreeDecomposition;
use ghd_hypergraph::Hypergraph;

/// A tree decomposition in leaf normal form (Definition 18), together with
/// the one-to-one mapping from hyperedges to leaves.
#[derive(Clone, Debug)]
pub struct LeafNormalForm {
    /// The transformed decomposition.
    pub td: TreeDecomposition,
    /// `leaf_of_edge[e]` = the leaf node whose bag equals hyperedge `e`.
    pub leaf_of_edge: Vec<usize>,
}

/// Algorithm *Transform Leaf Normal Form* (Fig 3.1): transforms `td` into a
/// tree decomposition of `h` in leaf normal form whose every bag is a subset
/// of some bag of `td` (Theorem 1).
///
/// # Panics
/// Panics if `td` is not a valid tree decomposition of `h` (a hyperedge has
/// no hosting bag).
pub fn leaf_normal_form(h: &Hypergraph, td: &TreeDecomposition) -> LeafNormalForm {
    let n = h.num_vertices();
    let orig_nodes = td.num_nodes();
    // Step 1: working copy.
    let mut work = td.clone();
    // Step 2: one fresh leaf per hyperedge, attached to a *pre-existing*
    // node whose bag contains the hyperedge.
    let mut leaf_of_edge = Vec::with_capacity(h.num_edges());
    for e in 0..h.num_edges() {
        let host = (0..orig_nodes)
            .find(|&p| h.edge(e).is_subset(work.bag(p)))
            .expect("td must cover every hyperedge");
        leaf_of_edge.push(work.add_child(host, h.edge(e).clone()));
    }
    let is_mapped = |p: usize| p >= orig_nodes;

    // Step 3: iteratively delete childless nodes that are not mapped leaves.
    let total_nodes = work.num_nodes();
    let mut deleted = vec![false; total_nodes];
    let mut live_children: Vec<usize> = (0..total_nodes).map(|p| work.children(p).len()).collect();
    let mut queue: Vec<usize> = (0..total_nodes)
        .filter(|&p| live_children[p] == 0 && !is_mapped(p))
        .collect();
    while let Some(p) = queue.pop() {
        deleted[p] = true;
        if let Some(parent) = work.parent(p) {
            live_children[parent] -= 1;
            if live_children[parent] == 0 && !is_mapped(parent) && !deleted[parent] {
                queue.push(parent);
            }
        }
    }

    // Step 4: prune variables from inner bags. An inner node keeps Y iff it
    // lies on a path between two (mapped) leaves with Y in their labels:
    // at least two of {child-subtree counts, outside count} are positive.
    //
    // One bottom-up pass per variable would be O(V·N); instead count, per
    // node, mapped-leaf occurrences of each variable in its subtree with a
    // single post-order accumulation of per-variable totals via bitsets is
    // not possible (counts, not membership), so we run the per-variable pass
    // but restrict it to the nodes that contain the variable plus their
    // ancestors — cheap in practice.
    let post = {
        // postorder over live nodes
        let pre = work.preorder();
        let mut post: Vec<usize> = pre.into_iter().filter(|&p| !deleted[p]).collect();
        post.reverse();
        post
    };
    for y in 0..n {
        let leaves_with_y: Vec<usize> = (0..h.num_edges())
            .filter(|&e| h.edge(e).contains(y))
            .map(|e| leaf_of_edge[e])
            .collect();
        let total = leaves_with_y.len();
        if total == 0 {
            // variable in no hyperedge: remove everywhere
            for (p, &dead) in deleted.iter().enumerate() {
                if !dead {
                    work.bag_mut(p).remove(y);
                }
            }
            continue;
        }
        // subtree counts via postorder accumulation
        let mut cnt = vec![0usize; total_nodes];
        for &l in &leaves_with_y {
            cnt[l] += 1;
        }
        for &p in &post {
            if let Some(parent) = work.parent(p) {
                cnt[parent] += cnt[p];
            }
        }
        for p in 0..total_nodes {
            if deleted[p] || is_mapped(p) || !work.bag(p).contains(y) {
                continue;
            }
            let outside = total - cnt[p];
            let mut directions = usize::from(outside > 0);
            for &c in work.children(p) {
                if !deleted[c] && cnt[c] > 0 {
                    directions += 1;
                    if directions >= 2 {
                        break;
                    }
                }
            }
            if directions < 2 {
                work.bag_mut(p).remove(y);
            }
        }
    }

    // Compact: rebuild without deleted nodes.
    let mut new_id = vec![usize::MAX; total_nodes];
    let mut out = TreeDecomposition::new(n);
    for &p in &work.preorder() {
        if deleted[p] {
            continue;
        }
        let id = match work.parent(p).filter(|&q| !deleted[q]) {
            Some(parent) => out.add_child(new_id[parent], work.bag(p).clone()),
            None => out.add_root(work.bag(p).clone()),
        };
        new_id[p] = id;
    }
    let leaf_of_edge = leaf_of_edge.into_iter().map(|l| new_id[l]).collect();
    LeafNormalForm {
        td: out,
        leaf_of_edge,
    }
}

/// Checks Definition 18 on an [`LeafNormalForm`]: the leaf mapping is a
/// bijection with `χ(leaf(h)) = h`, and every internal node contains `Y` iff
/// it lies on a path between two leaves containing `Y`.
pub fn verify_lnf(h: &Hypergraph, lnf: &LeafNormalForm) -> bool {
    let td = &lnf.td;
    // bijection onto the set of leaves
    let mut seen = vec![false; td.num_nodes()];
    for (e, &l) in lnf.leaf_of_edge.iter().enumerate() {
        if !td.is_leaf(l) || seen[l] || td.bag(l) != h.edge(e) {
            return false;
        }
        seen[l] = true;
    }
    if td.nodes().filter(|&p| td.is_leaf(p)).count() != h.num_edges() {
        return false;
    }
    // path criterion per variable
    let post = {
        let mut p = td.preorder();
        p.reverse();
        p
    };
    for y in 0..h.num_vertices() {
        let total = (0..h.num_edges()).filter(|&e| h.edge(e).contains(y)).count();
        let mut cnt = vec![0usize; td.num_nodes()];
        for (e, &l) in lnf.leaf_of_edge.iter().enumerate() {
            if h.edge(e).contains(y) {
                cnt[l] += 1;
            }
        }
        for &p in &post {
            if let Some(parent) = td.parent(p) {
                cnt[parent] += cnt[p];
            }
        }
        for p in td.nodes() {
            if td.is_leaf(p) {
                continue;
            }
            let outside = total - cnt[p];
            let directions = usize::from(outside > 0)
                + td.children(p).iter().filter(|&&c| cnt[c] > 0).count();
            let on_path = directions >= 2;
            if on_path != td.bag(p).contains(y) {
                return false;
            }
        }
    }
    true
}

/// Derives an elimination ordering from a leaf normal form per §3.3: each
/// vertex is ranked by the depth of the deepest common ancestor of the
/// leaves containing it; shallower vertices precede deeper ones (so deeper
/// vertices are *eliminated earlier*). By Lemma 13 every elimination clique
/// of the resulting σ is contained in some bag of the LNF.
///
/// Vertices occurring in no hyperedge are placed at the very back
/// (eliminated first; they are isolated so this is harmless).
pub fn ordering_from_lnf(h: &Hypergraph, lnf: &LeafNormalForm) -> EliminationOrdering {
    let td = &lnf.td;
    let n = h.num_vertices();
    // node depths
    let mut depth = vec![0usize; td.num_nodes()];
    for &p in &td.preorder() {
        if let Some(parent) = td.parent(p) {
            depth[p] = depth[parent] + 1;
        }
    }
    let lca = |mut a: usize, mut b: usize| -> usize {
        while depth[a] > depth[b] {
            a = td.parent(a).expect("depth > 0 has parent");
        }
        while depth[b] > depth[a] {
            b = td.parent(b).expect("depth > 0 has parent");
        }
        while a != b {
            a = td.parent(a).expect("distinct nodes share an ancestor");
            b = td.parent(b).expect("distinct nodes share an ancestor");
        }
        a
    };
    let mut keyed: Vec<(usize, usize)> = (0..n)
        .map(|v| {
            let mut dca: Option<usize> = None;
            for &e in h.edges_containing(v) {
                let l = lnf.leaf_of_edge[e];
                dca = Some(match dca {
                    None => l,
                    Some(d) => lca(d, l),
                });
            }
            // uncovered vertices sink to the back (max depth + 1)
            (dca.map_or(td.num_nodes(), |d| depth[d]), v)
        })
        .collect();
    keyed.sort(); // stable by (depth, vertex id)
    EliminationOrdering::new(keyed.into_iter().map(|(_, v)| v).collect())
        .expect("permutation by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::{ghd_from_ordering, vertex_elimination};
    use crate::setcover::CoverMethod;
    use ghd_hypergraph::generators::hypergraphs;
    use ghd_hypergraph::BitSet;
    use ghd_prng::rngs::StdRng;

    fn example5() -> Hypergraph {
        Hypergraph::from_edges(6, [vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]])
    }

    fn example5_td() -> TreeDecomposition {
        let mut td = TreeDecomposition::new(6);
        let root = td.add_root(BitSet::from_iter(6, [0, 2, 4]));
        td.add_child(root, BitSet::from_iter(6, [0, 1, 2]));
        td.add_child(root, BitSet::from_iter(6, [0, 4, 5]));
        td.add_child(root, BitSet::from_iter(6, [2, 3, 4]));
        td
    }

    #[test]
    fn lnf_of_example5_is_valid_and_subset_bounded() {
        let h = example5();
        let td = example5_td();
        let lnf = leaf_normal_form(&h, &td);
        lnf.td.verify(&h).unwrap();
        assert!(verify_lnf(&h, &lnf));
        // Theorem 1: every LNF bag ⊆ some original bag
        for p in lnf.td.nodes() {
            assert!(
                td.nodes().any(|q| lnf.td.bag(p).is_subset(td.bag(q))),
                "bag {p} not dominated"
            );
        }
        assert!(lnf.td.width() <= td.width());
    }

    #[test]
    fn lnf_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(21);
        for seed in 0..15u64 {
            let h = hypergraphs::random_hypergraph(16, 10, 4, seed);
            let sigma = EliminationOrdering::random(16, &mut rng);
            let td = vertex_elimination(&h.primal_graph(), &sigma);
            let lnf = leaf_normal_form(&h, &td);
            lnf.td.verify(&h).unwrap();
            assert!(verify_lnf(&h, &lnf), "seed {seed}");
            for p in lnf.td.nodes() {
                assert!(td.nodes().any(|q| lnf.td.bag(p).is_subset(td.bag(q))));
            }
        }
    }

    /// Theorem 2 end-to-end: ordering extracted from the LNF of a
    /// decomposition never has larger (exact-cover) width than the GHD we
    /// started from.
    #[test]
    fn theorem_2_ordering_width_bounded_by_ghd_width() {
        let mut rng = StdRng::seed_from_u64(33);
        for seed in 0..12u64 {
            let h = hypergraphs::random_hypergraph(14, 9, 4, seed);
            let start_sigma = EliminationOrdering::random(14, &mut rng);
            let ghd = ghd_from_ordering(&h, &start_sigma, CoverMethod::Exact);
            let k = ghd.width();
            let lnf = leaf_normal_form(&h, ghd.tree());
            let sigma = ordering_from_lnf(&h, &lnf);
            let redone = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
            redone.verify(&h).unwrap();
            assert!(
                redone.width() <= k,
                "width grew: {} > {} (seed {seed})",
                redone.width(),
                k
            );
        }
    }

    #[test]
    fn lemma_13_cliques_contained_in_lnf_bags() {
        for seed in 0..10u64 {
            let h = hypergraphs::random_hypergraph(12, 8, 4, seed);
            let sigma0 = EliminationOrdering::identity(12);
            let td = vertex_elimination(&h.primal_graph(), &sigma0);
            let lnf = leaf_normal_form(&h, &td);
            let sigma = ordering_from_lnf(&h, &lnf);
            let derived = vertex_elimination(&h.primal_graph(), &sigma);
            for p in derived.nodes() {
                assert!(
                    lnf.td.nodes().any(|q| derived.bag(p).is_subset(lnf.td.bag(q))),
                    "clique {p} not inside any LNF bag (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn lnf_handles_vertex_in_single_edge() {
        // x3 appears in exactly one hyperedge: its dca is that leaf
        let h = Hypergraph::from_edges(4, [vec![0, 1], vec![1, 2], vec![2, 3]]);
        let sigma = EliminationOrdering::identity(4);
        let td = vertex_elimination(&h.primal_graph(), &sigma);
        let lnf = leaf_normal_form(&h, &td);
        assert!(verify_lnf(&h, &lnf));
        let o = ordering_from_lnf(&h, &lnf);
        assert_eq!(o.len(), 4);
    }
}
