//! Decomposition core: tree decompositions, generalized hypertree
//! decompositions, bucket/vertex elimination, set covering and the leaf
//! normal form — Chapters 2 and 3 of the thesis.
//!
//! The central workflow is:
//!
//! ```
//! use ghd_core::{bucket::ghd_from_ordering, ordering::EliminationOrdering,
//!                setcover::CoverMethod};
//! use ghd_hypergraph::Hypergraph;
//!
//! let h = Hypergraph::from_edges(6, [vec![0, 1, 2], vec![0, 4, 5], vec![2, 3, 4]]);
//! let sigma = EliminationOrdering::new(vec![5, 4, 3, 2, 1, 0]).unwrap();
//! let ghd = ghd_from_ordering(&h, &sigma, CoverMethod::Exact);
//! ghd.verify(&h).unwrap();
//! assert_eq!(ghd.width(), 2);
//! ```

pub mod bucket;
pub mod canon;
pub mod io;
pub mod eval;
pub mod json;
pub mod ghd;
pub mod lnf;
pub mod ordering;
pub mod setcover;
pub mod tree_decomposition;

pub use ghd::GeneralizedHypertreeDecomposition;
pub use ordering::EliminationOrdering;
pub use setcover::CoverMethod;
pub use tree_decomposition::{DecompositionError, TreeDecomposition};
