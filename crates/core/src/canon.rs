//! Canonical instance keys and the verified decomposition cache.
//!
//! `ghd-serve` answers repeated solve requests from a cache instead of
//! re-running the search. Two requests should share an entry exactly when
//! the solver would print byte-identical output for both, which is a
//! statement about the *parsed* instance, not the request bytes: comment
//! lines, blank lines, and whitespace never reach the search. The cache
//! key therefore has three parts:
//!
//! 1. a cheap structural **refinement hash** ([`graph_hash`] /
//!    [`hypergraph_hash`]) — a few rounds of Weisfeiler–Leman-style color
//!    refinement folded through the workspace's deterministic FxHash, used
//!    only to pick the bucket;
//! 2. the **canonical text** — the instance re-serialized by the
//!    workspace's own writers, compared for exact equality on every probe
//!    (like the interners in `ghd_prng::hash`-keyed maps, a hash match is
//!    never trusted on its own); and
//! 3. a **signature** string carrying the command and the normalized flag
//!    set, so `--method bb` and `--method astar` results never alias even
//!    though they describe the same instance.
//!
//! [`DecompCache`] stores admitted results under a byte cap with
//! least-recently-used eviction. Admission *policy* (only self-certified
//! exact results enter) lives in the caller; this module provides the
//! mechanism and the accounting.

pub mod log;

use crate::setcover::CacheStats;
use ghd_hypergraph::{Graph, Hypergraph};
use ghd_prng::hash::fx_hash_words;

/// Color-refinement rounds. Three rounds separate everything the cache
/// will ever see in practice; collisions are harmless anyway because every
/// probe verifies the canonical text.
const REFINEMENT_ROUNDS: usize = 3;

fn mix_sorted(seed: u64, mut words: Vec<u64>) -> u64 {
    words.sort_unstable();
    words.insert(0, seed);
    fx_hash_words(&words)
}

/// Structural hash of a graph: vertex colors start at degree, then each
/// round re-colors a vertex by the sorted multiset of its neighbors'
/// colors. Label- and edge-order-insensitive by construction.
pub fn graph_hash(g: &Graph) -> u64 {
    let n = g.num_vertices();
    let mut colors: Vec<u64> = (0..n).map(|v| g.degree(v) as u64).collect();
    for round in 0..REFINEMENT_ROUNDS {
        let mut next = vec![0u64; n];
        for v in 0..n {
            let neigh: Vec<u64> = g.neighbors(v).iter().map(|u| colors[u]).collect();
            next[v] = mix_sorted(colors[v].wrapping_add(round as u64), neigh);
        }
        colors = next;
    }
    let summary = mix_sorted(n as u64, colors);
    fx_hash_words(&[0x0067_7261_7068_u64, n as u64, g.num_edges() as u64, summary])
}

/// Structural hash of a hypergraph: vertex colors start at incidence
/// degree, edge colors at arity; rounds alternate vertex←edges and
/// edge←vertices re-coloring.
pub fn hypergraph_hash(h: &Hypergraph) -> u64 {
    let n = h.num_vertices();
    let m = h.num_edges();
    let mut vcol: Vec<u64> = (0..n).map(|v| h.edges_containing(v).len() as u64).collect();
    let mut ecol: Vec<u64> = (0..m).map(|e| h.edge(e).len() as u64).collect();
    for round in 0..REFINEMENT_ROUNDS {
        let next_v: Vec<u64> = (0..n)
            .map(|v| {
                let inc: Vec<u64> = h.edges_containing(v).iter().map(|&e| ecol[e]).collect();
                mix_sorted(vcol[v].wrapping_add(round as u64), inc)
            })
            .collect();
        let next_e: Vec<u64> = (0..m)
            .map(|e| {
                let mem: Vec<u64> = h.edge(e).iter().map(|v| next_v[v]).collect();
                mix_sorted(ecol[e], mem)
            })
            .collect();
        vcol = next_v;
        ecol = next_e;
    }
    let vs = mix_sorted(n as u64, vcol);
    let es = mix_sorted(m as u64, ecol);
    fx_hash_words(&[0x0068_7970_6572_u64, n as u64, m as u64, vs, es])
}

/// Full identity of a cached result: bucket hash, exact canonical text,
/// and the solve signature (command + normalized flags).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheKey {
    /// Structural refinement hash — selects the bucket, never trusted alone.
    pub hash: u64,
    /// The instance re-serialized by the workspace writers; exact-equality
    /// verified on every probe.
    pub canon: String,
    /// Command plus normalized flag set; distinguishes solve variants over
    /// the same instance.
    pub signature: String,
}

/// A cached, self-certified solve result. `body` is the solver's complete
/// stdout (summary line, ordering, decomposition), so a hit reproduces the
/// one-shot answer byte for byte.
#[derive(Clone, Debug)]
pub struct CachedDecomp {
    /// Full response body exactly as the solver printed it.
    pub body: String,
    /// The certified width the body reports.
    pub width: usize,
}

struct Entry {
    key: CacheKey,
    value: CachedDecomp,
    bytes: usize,
    last_used: u64,
}

impl Entry {
    fn cost(key: &CacheKey, value: &CachedDecomp) -> usize {
        // Dominant heap costs; the fixed per-entry overhead is charged flat.
        key.canon.len() + key.signature.len() + value.body.len() + 96
    }
}

/// Byte-capped LRU cache of verified decompositions, keyed by
/// [`CacheKey`]. Probes verify canonical text and signature exactly; the
/// hash only narrows the candidate set.
pub struct DecompCache {
    cap_bytes: usize,
    entries: Vec<Entry>,
    bytes: usize,
    tick: u64,
    stats: CacheStats,
}

impl DecompCache {
    /// An empty cache holding at most `cap_bytes` of entry payload.
    pub fn new(cap_bytes: usize) -> Self {
        DecompCache { cap_bytes, entries: Vec::new(), bytes: 0, tick: 0, stats: CacheStats::default() }
    }

    /// Looks `key` up; a hit refreshes the entry's LRU stamp.
    pub fn probe(&mut self, key: &CacheKey) -> Option<CachedDecomp> {
        self.tick += 1;
        let tick = self.tick;
        for entry in &mut self.entries {
            if entry.key.hash == key.hash && entry.key == *key {
                entry.last_used = tick;
                self.stats.hits += 1;
                return Some(entry.value.clone());
            }
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts (or refreshes) an entry, evicting least-recently-used
    /// entries until it fits. Returns `false` when the entry alone exceeds
    /// the byte cap and was refused.
    pub fn admit(&mut self, key: CacheKey, value: CachedDecomp) -> bool {
        let cost = Entry::cost(&key, &value);
        if cost > self.cap_bytes {
            return false;
        }
        self.tick += 1;
        if let Some(entry) = self.entries.iter_mut().find(|e| e.key == key) {
            self.bytes = self.bytes - entry.bytes + cost;
            entry.value = value;
            entry.bytes = cost;
            entry.last_used = self.tick;
        } else {
            self.entries.push(Entry { key, value, bytes: cost, last_used: self.tick });
            self.bytes += cost;
            self.stats.entries = self.entries.len();
        }
        while self.bytes > self.cap_bytes {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("bytes > 0 implies an entry exists");
            let evicted = self.entries.swap_remove(victim);
            self.bytes -= evicted.bytes;
            self.stats.evictions += 1;
            self.stats.entries = self.entries.len();
        }
        true
    }

    /// Hit/miss/eviction counters plus the current entry count.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Bytes currently charged against the cap.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghd_hypergraph::io;

    fn key(tag: &str) -> CacheKey {
        CacheKey { hash: fx_hash_words(&[tag.len() as u64]), canon: tag.to_string(), signature: "tw".into() }
    }

    fn val(body: &str) -> CachedDecomp {
        CachedDecomp { body: body.to_string(), width: 2 }
    }

    #[test]
    fn probe_verifies_exact_text_not_just_hash() {
        let mut cache = DecompCache::new(1 << 16);
        let mut a = key("p edge 3 2");
        let mut b = key("p edge 3 3"); // same length → same bucket hash here
        b.hash = a.hash;
        assert!(cache.admit(a.clone(), val("width = 1")));
        assert!(cache.probe(&a).is_some());
        assert!(cache.probe(&b).is_none(), "hash collision must not alias entries");
        // same text, different signature: distinct results
        a.signature = "ghw".into();
        assert!(cache.probe(&a).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn lru_eviction_respects_byte_cap() {
        let base = Entry::cost(&key("aaaa"), &val("bbbb"));
        let mut cache = DecompCache::new(2 * base);
        assert!(cache.admit(key("aaaa"), val("bbbb")));
        assert!(cache.admit(key("cccc"), val("dddd")));
        assert_eq!(cache.len(), 2);
        // touch the first entry so the second is the LRU victim
        assert!(cache.probe(&key("aaaa")).is_some());
        assert!(cache.admit(key("eeee"), val("ffff")));
        assert_eq!(cache.len(), 2);
        assert!(cache.probe(&key("aaaa")).is_some(), "recently-used entry survives");
        assert!(cache.probe(&key("cccc")).is_none(), "LRU entry evicted");
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.bytes() <= 2 * base);
        // an entry larger than the whole cap is refused outright
        assert!(!cache.admit(key("zzzz"), val(&"x".repeat(4 * base))));
    }

    #[test]
    fn refinement_hash_is_parse_invariant_but_structure_sensitive() {
        let a = io::parse_hypergraph("e1(a,b,c)\ne2(c,d)\n").unwrap();
        let b = io::parse_hypergraph("% comment\n e1 ( a , b , c )\n\ne2(c,d)\n").unwrap();
        let c = io::parse_hypergraph("e1(a,b,c)\ne2(c,d)\ne3(d,a)\n").unwrap();
        assert_eq!(hypergraph_hash(&a), hypergraph_hash(&b));
        assert_ne!(hypergraph_hash(&a), hypergraph_hash(&c));
        assert_eq!(io::write_hypergraph(&a), io::write_hypergraph(&b));

        let g1 = io::parse_dimacs("p edge 4 3\ne 1 2\ne 2 3\ne 3 4\n").unwrap();
        let g2 = io::parse_dimacs("c path\np edge 4 3\ne 3 4\ne 1 2\ne 2 3\n").unwrap();
        let g3 = io::parse_dimacs("p edge 4 4\ne 1 2\ne 2 3\ne 3 4\ne 4 1\n").unwrap();
        assert_eq!(graph_hash(&g1), graph_hash(&g2));
        assert_ne!(graph_hash(&g1), graph_hash(&g3));
        assert_eq!(io::write_dimacs(&g1), io::write_dimacs(&g2));
    }
}
