//! Set cover over the hyperedges of a hypergraph (§2.5.2).
//!
//! Turning a tree decomposition into a generalized hypertree decomposition
//! requires, per bag χ(p), a minimum set of hyperedges covering χ(p). The
//! thesis uses the greedy heuristic (Fig 7.2) inside the genetic algorithms
//! and an external IP solver for exact covers inside BB-ghw / A\*-ghw; here
//! the exact solver is a self-contained branch-and-bound (same optima, no
//! external dependency — see DESIGN.md, substitution 3).

use ghd_hypergraph::{BitSet, Hypergraph};
use ghd_prng::hash::{fx_hash_words, FxBuildHasher};
use ghd_prng::{Rng, RngExt};
use std::collections::HashMap;
use std::sync::Mutex;

/// Strategy for solving the per-bag set cover problems.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoverMethod {
    /// Greedy heuristic (Fig 7.2): upper bound, very fast.
    Greedy,
    /// Exact branch and bound: optimal cover, exponential worst case.
    Exact,
}

/// Candidate hyperedges for covering `target`: those intersecting it,
/// deduplicated by their restriction to `target` and pruned to maximal
/// restrictions. Returns `(edge_index, restriction)` pairs.
fn candidates(target: &BitSet, h: &Hypergraph) -> Vec<(usize, BitSet)> {
    let mut seen = Vec::<(usize, BitSet)>::new();
    let mut edge_ids = BitSet::new(h.num_edges());
    for v in target.iter() {
        for &e in h.edges_containing(v) {
            edge_ids.insert(e);
        }
    }
    'next: for e in edge_ids.iter() {
        let mut restriction = h.edge(e).clone();
        restriction.intersect_with(target);
        // drop restrictions dominated by an existing candidate
        let mut i = 0;
        while i < seen.len() {
            if restriction.is_subset(&seen[i].1) {
                continue 'next;
            }
            if seen[i].1.is_subset(&restriction) {
                seen.swap_remove(i);
            } else {
                i += 1;
            }
        }
        seen.push((e, restriction));
    }
    seen
}

/// Greedy set cover (Fig 7.2): repeatedly takes a hyperedge covering the
/// maximum number of still-uncovered vertices; ties broken by the supplied
/// `tie_break` (the thesis breaks ties randomly; pass `None` for the
/// deterministic first-maximum rule). Returns the chosen hyperedge indices.
///
/// # Panics
/// Panics if `target` cannot be covered by the hyperedges of `h` (every
/// vertex of a constraint hypergraph lies in some hyperedge, so this cannot
/// happen for bags produced by elimination).
pub fn greedy_cover<R: Rng + ?Sized>(
    target: &BitSet,
    h: &Hypergraph,
    mut rng: Option<&mut R>,
) -> Vec<usize> {
    let cands = candidates(target, h);
    let mut uncovered = target.clone();
    let mut chosen = Vec::new();
    while !uncovered.is_empty() {
        let gains: Vec<usize> = cands
            .iter()
            .map(|(_, r)| r.intersection_len(&uncovered))
            .collect();
        let best = *gains.iter().max().expect("target not coverable");
        assert!(best > 0, "target not coverable by hypergraph edges");
        let tied: Vec<usize> = (0..cands.len()).filter(|&i| gains[i] == best).collect();
        let pick = match rng.as_deref_mut() {
            Some(r) => tied[r.random_range(0..tied.len())],
            None => tied[0],
        };
        uncovered.difference_with(&cands[pick].1);
        chosen.push(cands[pick].0);
    }
    chosen
}

/// Size-only variant of [`greedy_cover`] for hot loops.
pub fn greedy_cover_size<R: Rng + ?Sized>(
    target: &BitSet,
    h: &Hypergraph,
    rng: Option<&mut R>,
) -> usize {
    greedy_cover(target, h, rng).len()
}

/// Exact minimum set cover by branch and bound.
///
/// Branches on the first uncovered vertex (trying each candidate covering
/// it), seeded with the greedy solution as upper bound and pruned by the
/// bound `chosen + ⌈uncovered / max_gain⌉ ≥ best`.
pub fn exact_cover(target: &BitSet, h: &Hypergraph) -> Vec<usize> {
    let cands = candidates(target, h);
    let best: Vec<usize> = greedy_cover::<ghd_prng::rngs::StdRng>(target, h, None);
    let mut state = ExactState {
        cands: &cands,
        best,
        chosen: Vec::new(),
        limit: usize::MAX,
        budget: u64::MAX,
    };
    let uncovered = target.clone();
    state.search(uncovered);
    let mut out = state.best;
    out.sort_unstable();
    out
}

/// Size-only variant of [`exact_cover`].
pub fn exact_cover_size(target: &BitSet, h: &Hypergraph) -> usize {
    exact_cover(target, h).len()
}

/// Capped exact cover size: returns `min(optimal cover size, cap)`.
///
/// Callers that only need to know whether the cover stays below `cap` (the
/// branch-and-bound searches prune any bag whose cover reaches their
/// incumbent anyway) get an enormous extra pruning lever: every set-cover
/// branch that cannot beat `cap` is cut immediately. The second component
/// is `false` iff the internal node budget was exhausted, in which case the
/// returned size is a (still sound for pruning) upper estimate.
pub fn exact_cover_size_capped(target: &BitSet, h: &Hypergraph, cap: usize) -> (usize, bool) {
    if cap == 0 {
        return (0, true);
    }
    let cands = candidates(target, h);
    let greedy: Vec<usize> = greedy_cover::<ghd_prng::rngs::StdRng>(target, h, None);
    let greedy_len = greedy.len();
    let mut state = ExactState {
        cands: &cands,
        best: greedy,
        chosen: Vec::new(),
        limit: greedy_len.min(cap),
        budget: 100_000,
    };
    state.search(target.clone());
    let exact = state.budget > 0;
    (state.best.len().min(state.limit).min(cap), exact)
}

/// Dispatches on [`CoverMethod`].
pub fn cover(target: &BitSet, h: &Hypergraph, method: CoverMethod) -> Vec<usize> {
    match method {
        CoverMethod::Greedy => greedy_cover::<ghd_prng::rngs::StdRng>(target, h, None),
        CoverMethod::Exact => exact_cover(target, h),
    }
}

/// Counters describing a [`CoverCache`]'s life so far.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that had to run a cover computation.
    pub misses: u64,
    /// Entries dropped by capacity resets.
    pub evictions: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all queries (0 when the cache is unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Merges another (concurrent) cache's stats into `self` with explicit
    /// counter-vs-gauge semantics: `hits`, `misses` and `evictions` are true
    /// counters and are **summed**; `entries` is a point-in-time gauge of
    /// per-cache occupancy — summing gauges across independent caches is
    /// meaningless, so the merge keeps the **maximum**. (Per-worker values
    /// can be reported alongside when the individual gauges matter.)
    pub fn absorb_parallel(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.entries = self.entries.max(other.entries);
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct CacheEntry {
    /// Proven optimal cover size, when known.
    exact: Option<u32>,
    /// Proven lower bound on the optimal cover size (0 = trivial).
    lower: u32,
    /// Memoized deterministic greedy cover size.
    greedy: Option<u32>,
}

/// Transposition cache for per-bag set covers, keyed on the target
/// [`BitSet`]'s backing blocks.
///
/// Branch-and-bound over elimination orderings revisits the same bag many
/// times — permutations of a prefix that eliminate the same vertex next
/// produce the identical `{v} ∪ Nᵍ(v)` bag, and capped queries repeat with
/// different caps as the incumbent tightens. The cache stores only *proven*
/// facts, so cached answers are identical to recomputation and results are
/// bit-for-bit the same with the cache on or off:
///
/// * an exact size `s < cap` proven by a completed (budget-unexhausted)
///   capped search is stored as `exact`;
/// * a completed capped search that found nothing below `cap` proves
///   `optimal ≥ cap`, stored as a monotone `lower` bound;
/// * budget-exhausted results are *never* cached (they are only estimates);
/// * deterministic greedy sizes (first-maximum tie rule) are cached as-is.
///
/// Capacity overflow triggers a deterministic full reset (simple, and the
/// search relocality means a warm prefix is rebuilt within a few hundred
/// nodes); resets are reported via [`CacheStats::evictions`].
///
/// A cache is valid for **one hypergraph**: keys are target bitsets only,
/// so reusing it across hypergraphs replays covers from the wrong edge set.
pub struct CoverCache {
    /// Boxed-key path (FxHash — the keys are whole `u64` words, exactly the
    /// input FxHash mixes best, and SipHash's DoS resistance buys nothing
    /// against self-generated bags).
    map: HashMap<Box<[u64]>, CacheEntry, FxBuildHasher>,
    /// Dense path: entries indexed by a caller-supplied interned key (see
    /// `ghd_search::StateInterner`), so the closed set and the cover cache
    /// share one canonical key storage and probing here is a vector index.
    dense: Vec<CacheEntry>,
    /// Occupied (fact-holding) entries of `dense`.
    dense_live: usize,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Default for CoverCache {
    fn default() -> Self {
        CoverCache::new()
    }
}

impl CoverCache {
    /// Default capacity: roomy enough for every bag of mid-size searches.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// A cache with [`CoverCache::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        CoverCache::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A cache holding at most `capacity` entries (min 1) before resetting.
    pub fn with_capacity(capacity: usize) -> Self {
        CoverCache {
            map: HashMap::default(),
            dense: Vec::new(),
            dense_live: 0,
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len() + self.dense_live,
        }
    }

    /// Drops all entries (counts them as evictions) but keeps the counters.
    pub fn clear(&mut self) {
        self.evictions += (self.map.len() + self.dense_live) as u64;
        self.map.clear();
        self.dense.clear();
        self.dense_live = 0;
    }

    /// Bytes reserved by the cache's own storage (keys interned elsewhere
    /// are not counted; the boxed-key path estimates per-entry overhead).
    pub fn bytes(&self) -> usize {
        self.dense.capacity() * std::mem::size_of::<CacheEntry>()
            + self.map.capacity()
                * (std::mem::size_of::<CacheEntry>() + std::mem::size_of::<Box<[u64]>>())
    }

    fn entry_mut(&mut self, target: &BitSet) -> &mut CacheEntry {
        if self.map.len() >= self.capacity && !self.map.contains_key(target.blocks()) {
            self.evictions += self.map.len() as u64;
            self.map.clear();
        }
        self.map
            .entry(target.blocks().into())
            .or_default()
    }

    fn occupied(e: &CacheEntry) -> bool {
        // a stored fact always sets one of these: `exact`, a `lower ≥ 1`
        // (caps are ≥ 1 past the zero-cap short circuit) or a greedy size
        e.exact.is_some() || e.lower > 0 || e.greedy.is_some()
    }

    /// Dense-path counterpart of [`CoverCache::entry_mut`]; the caller is
    /// about to record a fact, which is what makes the slot occupied.
    fn dense_entry_mut(&mut self, key: u32) -> &mut CacheEntry {
        let k = key as usize;
        if self.dense.len() <= k {
            self.dense.resize(k + 1, CacheEntry::default());
        }
        if !Self::occupied(&self.dense[k]) {
            if self.dense_live >= self.capacity {
                self.evictions += self.dense_live as u64;
                self.dense.iter_mut().for_each(|e| *e = CacheEntry::default());
                self.dense_live = 0;
            }
            self.dense_live += 1;
        }
        &mut self.dense[k]
    }

    /// Memoizing counterpart of [`exact_cover_size_capped`]: same contract,
    /// same values — hits replay proven facts, misses delegate and record.
    pub fn exact_cover_size_capped(
        &mut self,
        target: &BitSet,
        h: &Hypergraph,
        cap: usize,
    ) -> (usize, bool) {
        if cap == 0 {
            return (0, true);
        }
        if let Some(e) = self.map.get(target.blocks()) {
            if let Some(exact) = e.exact {
                self.hits += 1;
                return ((exact as usize).min(cap), true);
            }
            if e.lower as usize >= cap {
                self.hits += 1;
                return (cap, true);
            }
        }
        self.misses += 1;
        let (s, ok) = exact_cover_size_capped(target, h, cap);
        if ok {
            let e = self.entry_mut(target);
            if s < cap {
                e.exact = Some(s as u32);
                e.lower = e.lower.max(s as u32);
            } else {
                // completed search found nothing below cap ⇒ optimal ≥ cap
                e.lower = e.lower.max(cap as u32);
            }
        }
        (s, ok)
    }

    /// [`CoverCache::exact_cover_size_capped`] on the dense path: `key` must
    /// be the dense id of `target`'s blocks in the caller's interner (each
    /// distinct target set ↔ one id). Same contract, same values; probing is
    /// a vector index and the key bits are stored once, in the interner.
    pub fn exact_cover_size_capped_interned(
        &mut self,
        key: u32,
        target: &BitSet,
        h: &Hypergraph,
        cap: usize,
    ) -> (usize, bool) {
        if cap == 0 {
            return (0, true);
        }
        if let Some(e) = self.dense.get(key as usize) {
            if let Some(exact) = e.exact {
                self.hits += 1;
                return ((exact as usize).min(cap), true);
            }
            if e.lower as usize >= cap {
                self.hits += 1;
                return (cap, true);
            }
        }
        self.misses += 1;
        let (s, ok) = exact_cover_size_capped(target, h, cap);
        if ok {
            let e = self.dense_entry_mut(key);
            if s < cap {
                e.exact = Some(s as u32);
                e.lower = e.lower.max(s as u32);
            } else {
                // completed search found nothing below cap ⇒ optimal ≥ cap
                e.lower = e.lower.max(cap as u32);
            }
        }
        (s, ok)
    }

    /// [`CoverCache::greedy_cover_size`] on the dense path (see
    /// [`CoverCache::exact_cover_size_capped_interned`] for the key
    /// contract).
    pub fn greedy_cover_size_interned(&mut self, key: u32, target: &BitSet, h: &Hypergraph) -> usize {
        if let Some(e) = self.dense.get(key as usize) {
            if let Some(g) = e.greedy {
                self.hits += 1;
                return g as usize;
            }
        }
        self.misses += 1;
        let g = greedy_cover_size::<ghd_prng::rngs::StdRng>(target, h, None);
        self.dense_entry_mut(key).greedy = Some(g as u32);
        g
    }

    /// Memoizing counterpart of the deterministic
    /// `greedy_cover_size::<_>(target, h, None)` (first-maximum tie rule):
    /// identical values, cached.
    pub fn greedy_cover_size(&mut self, target: &BitSet, h: &Hypergraph) -> usize {
        if let Some(e) = self.map.get(target.blocks()) {
            if let Some(g) = e.greedy {
                self.hits += 1;
                return g as usize;
            }
        }
        self.misses += 1;
        let g = greedy_cover_size::<ghd_prng::rngs::StdRng>(target, h, None);
        self.entry_mut(target).greedy = Some(g as u32);
        g
    }
}

/// A lock-striped concurrent [`CoverCache`] shared by all workers of a
/// parallel search.
///
/// The store is split into a power-of-two number of stripes, each an
/// independent [`CoverCache`] (boxed-key path) behind its own [`Mutex`];
/// a query locks only the stripe its target hashes to. Cover computations
/// run *outside* the lock, so a slow exact cover on one bag never blocks
/// other workers probing the same stripe: the worst case is two workers
/// computing the same bag concurrently, which is benign because only proven
/// facts are stored and facts for a given bag are identical (`exact`) or
/// monotone (`lower`). The proven-facts-only discipline is inherited from
/// [`CoverCache`] unchanged, so cached and uncached parallel runs return
/// identical widths.
///
/// Like [`CoverCache`], one instance is valid for **one hypergraph**.
pub struct StripedCoverCache {
    stripes: Vec<Mutex<CoverCache>>,
    mask: usize,
}

impl StripedCoverCache {
    /// A cache with `stripes` stripes (rounded up to a power of two, min 1)
    /// and [`CoverCache::DEFAULT_CAPACITY`] entries in total.
    pub fn new(stripes: usize) -> Self {
        Self::with_capacity(stripes, CoverCache::DEFAULT_CAPACITY)
    }

    /// A cache with `capacity` total entries split evenly across the
    /// stripes.
    pub fn with_capacity(stripes: usize, capacity: usize) -> Self {
        let n = stripes.max(1).next_power_of_two();
        let per = (capacity / n).max(1);
        StripedCoverCache {
            stripes: (0..n).map(|_| Mutex::new(CoverCache::with_capacity(per))).collect(),
            mask: n - 1,
        }
    }

    /// Number of stripes (a power of two).
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    fn stripe(&self, key: &[u64]) -> &Mutex<CoverCache> {
        // Mix the high hash bits into the stripe index so it stays
        // decorrelated from the bucket index the stripe's own FxHash map
        // derives from the low bits.
        let h = fx_hash_words(key);
        &self.stripes[((h >> 48) as usize ^ h as usize) & self.mask]
    }

    /// A panicked worker can only have held a stripe lock across pure
    /// probe/record sections (never across a cover computation), so the
    /// protected state is never torn: recover the guard instead of
    /// propagating poison.
    fn lock(stripe: &Mutex<CoverCache>) -> std::sync::MutexGuard<'_, CoverCache> {
        stripe.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Concurrent counterpart of [`CoverCache::exact_cover_size_capped`]:
    /// same contract, same values. The third component reports whether the
    /// query was answered from the cache, so callers can attribute the
    /// hit/miss to the executing worker.
    pub fn exact_cover_size_capped(
        &self,
        target: &BitSet,
        h: &Hypergraph,
        cap: usize,
    ) -> (usize, bool, bool) {
        if cap == 0 {
            return (0, true, false);
        }
        let stripe = self.stripe(target.blocks());
        {
            let mut c = Self::lock(stripe);
            if let Some(e) = c.map.get(target.blocks()) {
                if let Some(exact) = e.exact {
                    c.hits += 1;
                    return ((exact as usize).min(cap), true, true);
                }
                if e.lower as usize >= cap {
                    c.hits += 1;
                    return (cap, true, true);
                }
            }
            c.misses += 1;
        }
        // Compute with the stripe unlocked; duplicated concurrent work on
        // the same bag is benign (identical facts, monotone bounds).
        let (s, ok) = exact_cover_size_capped(target, h, cap);
        if ok {
            let mut c = Self::lock(stripe);
            let e = c.entry_mut(target);
            if s < cap {
                e.exact = Some(s as u32);
                e.lower = e.lower.max(s as u32);
            } else {
                // completed search found nothing below cap ⇒ optimal ≥ cap
                e.lower = e.lower.max(cap as u32);
            }
        }
        (s, ok, false)
    }

    /// Concurrent counterpart of [`CoverCache::greedy_cover_size`]:
    /// identical values; the second component reports a cache hit.
    pub fn greedy_cover_size(&self, target: &BitSet, h: &Hypergraph) -> (usize, bool) {
        let stripe = self.stripe(target.blocks());
        {
            let mut c = Self::lock(stripe);
            if let Some(e) = c.map.get(target.blocks()) {
                if let Some(g) = e.greedy {
                    c.hits += 1;
                    return (g as usize, true);
                }
            }
            c.misses += 1;
        }
        let g = greedy_cover_size::<ghd_prng::rngs::StdRng>(target, h, None);
        Self::lock(stripe).entry_mut(target).greedy = Some(g as u32);
        (g, false)
    }

    /// Aggregated counters. Unlike [`CacheStats::absorb_parallel`] (which
    /// maxes the `entries` gauge across *independent* caches), the stripes
    /// are disjoint shards of one logical store, so `entries` is summed.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.stripes {
            let st = Self::lock(s).stats();
            total.hits += st.hits;
            total.misses += st.misses;
            total.evictions += st.evictions;
            total.entries += st.entries;
        }
        total
    }

    /// Bytes reserved across all stripes.
    pub fn bytes(&self) -> usize {
        self.stripes.iter().map(|s| Self::lock(s).bytes()).sum()
    }
}

struct ExactState<'a> {
    cands: &'a [(usize, BitSet)],
    best: Vec<usize>,
    chosen: Vec<usize>,
    /// Prune any branch that cannot produce a cover strictly below this.
    limit: usize,
    /// Remaining branch-node budget; 0 = exhausted.
    budget: u64,
}

impl ExactState<'_> {
    fn search(&mut self, uncovered: BitSet) {
        if self.budget == 0 {
            return;
        }
        self.budget -= 1;
        if uncovered.is_empty() {
            if self.chosen.len() < self.best.len() {
                self.best = self.chosen.clone();
                self.limit = self.limit.min(self.best.len());
            }
            return;
        }
        if self.chosen.len() + 1 >= self.limit.min(self.best.len()) {
            return; // even one more edge cannot beat the incumbent/cap
        }
        // lower bound: every edge covers at most `max_gain` uncovered vertices
        let max_gain = self
            .cands
            .iter()
            .map(|(_, r)| r.intersection_len(&uncovered))
            .max()
            .unwrap_or(0);
        if max_gain == 0 {
            return; // uncoverable residue (cannot happen for bag covers)
        }
        let need = uncovered.len().div_ceil(max_gain);
        if self.chosen.len() + need >= self.limit.min(self.best.len()) {
            return;
        }
        // branch on the uncovered vertex with the fewest candidates
        let branch_v = uncovered
            .iter()
            .min_by_key(|&v| {
                self.cands
                    .iter()
                    .filter(|(_, r)| r.contains(v))
                    .count()
            })
            .expect("nonempty");
        let mut options: Vec<usize> = (0..self.cands.len())
            .filter(|&i| self.cands[i].1.contains(branch_v))
            .collect();
        // try the most-covering options first
        options.sort_by_key(|&i| usize::MAX - self.cands[i].1.intersection_len(&uncovered));
        for i in options {
            let mut rest = uncovered.clone();
            rest.difference_with(&self.cands[i].1);
            self.chosen.push(self.cands[i].0);
            self.search(rest);
            self.chosen.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghd_prng::rngs::StdRng;

    fn hg(n: usize, edges: &[&[usize]]) -> Hypergraph {
        Hypergraph::from_edges(n, edges.iter().map(|e| e.iter().copied()))
    }

    #[test]
    fn greedy_covers_target() {
        let h = hg(6, &[&[0, 1, 2], &[2, 3], &[3, 4, 5], &[0, 5]]);
        let target = BitSet::from_iter(6, [0, 2, 3, 5]);
        let chosen = greedy_cover::<StdRng>(&target, &h, None);
        let mut covered = BitSet::new(6);
        for e in chosen {
            covered.union_with(h.edge(e));
        }
        assert!(target.is_subset(&covered));
    }

    /// Classic greedy-trap: greedy picks the big middle set and needs 3,
    /// exact needs only 2.
    #[test]
    fn exact_beats_greedy_on_adversarial_instance() {
        // universe {0..5}; sets: {0,1,2}, {3,4,5}, {1,2,3,4}
        let h = hg(6, &[&[0, 1, 2], &[3, 4, 5], &[1, 2, 3, 4]]);
        let target = BitSet::full(6);
        let g = greedy_cover::<StdRng>(&target, &h, None);
        let x = exact_cover(&target, &h);
        assert_eq!(x.len(), 2);
        assert!(g.len() >= x.len());
        assert_eq!(x, vec![0, 1]);
    }

    #[test]
    fn exact_is_minimal_on_random_instances() {
        // brute-force cross-check on small instances
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..30 {
            let h = ghd_hypergraph::generators::hypergraphs::random_hypergraph(
                10,
                8,
                4,
                trial as u64,
            );
            let target = BitSet::from_iter(10, (0..10).filter(|_| rng.random_range(0..2) == 0));
            if target.is_empty() {
                continue;
            }
            let exact = exact_cover(&target, &h);
            // brute force over all subsets of edges
            let m = h.num_edges();
            let mut brute = usize::MAX;
            for mask in 0u32..(1 << m) {
                let mut covered = BitSet::new(10);
                for e in 0..m {
                    if mask & (1 << e) != 0 {
                        covered.union_with(h.edge(e));
                    }
                }
                if target.is_subset(&covered) {
                    brute = brute.min(mask.count_ones() as usize);
                }
            }
            assert_eq!(exact.len(), brute, "trial {trial}");
        }
    }

    #[test]
    fn empty_target_needs_no_edges() {
        let h = hg(3, &[&[0, 1, 2]]);
        let target = BitSet::new(3);
        assert!(greedy_cover::<StdRng>(&target, &h, None).is_empty());
        assert!(exact_cover(&target, &h).is_empty());
    }

    #[test]
    #[should_panic(expected = "not coverable")]
    fn uncoverable_target_panics() {
        let h = hg(3, &[&[0]]);
        let target = BitSet::from_iter(3, [1, 2]);
        greedy_cover::<StdRng>(&target, &h, None);
    }

    #[test]
    fn cache_hits_replay_identical_values() {
        let mut total = CacheStats::default();
        for trial in 0..20u64 {
            // one cache per hypergraph: keys are target bitsets only
            let mut cache = CoverCache::new();
            let h = ghd_hypergraph::generators::hypergraphs::random_hypergraph(12, 9, 4, trial);
            let mut rng = StdRng::seed_from_u64(trial);
            for _ in 0..6 {
                let target =
                    BitSet::from_iter(12, (0..12).filter(|_| rng.random_range(0..3) == 0));
                for cap in [1, 2, 3, usize::MAX] {
                    let plain = exact_cover_size_capped(&target, &h, cap);
                    let cached = cache.exact_cover_size_capped(&target, &h, cap);
                    assert_eq!(plain, cached, "trial {trial} cap {cap}");
                }
                let plain = greedy_cover_size::<StdRng>(&target, &h, None);
                assert_eq!(plain, cache.greedy_cover_size(&target, &h), "trial {trial}");
            }
            let stats = cache.stats();
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.entries += stats.entries;
        }
        assert!(total.hits > 0, "repeated caps should hit: {total:?}");
        assert!(total.misses > 0);
        assert!(total.entries > 0);
    }

    #[test]
    fn dense_path_matches_boxed_key_path() {
        // one interned id per distinct target, as a search-side interner
        // would assign them; both paths must produce identical values and
        // identical hit/miss streams
        for trial in 0..10u64 {
            let h = ghd_hypergraph::generators::hypergraphs::random_hypergraph(12, 9, 4, trial);
            let mut boxed = CoverCache::new();
            let mut dense = CoverCache::new();
            let mut ids: Vec<BitSet> = Vec::new();
            let mut rng = StdRng::seed_from_u64(trial ^ 0xD5);
            for _ in 0..8 {
                let target =
                    BitSet::from_iter(12, (0..12).filter(|_| rng.random_range(0..3) == 0));
                let key = match ids.iter().position(|t| *t == target) {
                    Some(i) => i as u32,
                    None => {
                        ids.push(target.clone());
                        (ids.len() - 1) as u32
                    }
                };
                for cap in [1, 2, 3, usize::MAX] {
                    assert_eq!(
                        boxed.exact_cover_size_capped(&target, &h, cap),
                        dense.exact_cover_size_capped_interned(key, &target, &h, cap),
                        "trial {trial} cap {cap}"
                    );
                }
                assert_eq!(
                    boxed.greedy_cover_size(&target, &h),
                    dense.greedy_cover_size_interned(key, &target, &h),
                    "trial {trial}"
                );
                assert_eq!(boxed.stats(), dense.stats(), "trial {trial}");
            }
        }
    }

    #[test]
    fn dense_capacity_overflow_resets_and_counts_evictions() {
        let h = hg(4, &[&[0, 1], &[2, 3], &[0, 2], &[1, 3]]);
        let mut cache = CoverCache::with_capacity(2);
        for v in 0..4u32 {
            let target = BitSet::from_iter(4, [v as usize]);
            cache.greedy_cover_size_interned(v, &target, &h);
        }
        let stats = cache.stats();
        assert!(stats.evictions >= 2, "expected a capacity reset: {stats:?}");
        assert!(stats.entries <= 2);
        assert_eq!(stats.misses, 4);
        assert!(cache.bytes() > 0);
    }

    #[test]
    fn absorb_parallel_sums_counters_and_maxes_the_entries_gauge() {
        let mut a = CacheStats {
            hits: 10,
            misses: 4,
            evictions: 1,
            entries: 7,
        };
        let b = CacheStats {
            hits: 5,
            misses: 6,
            evictions: 0,
            entries: 12,
        };
        a.absorb_parallel(&b);
        assert_eq!(a.hits, 15);
        assert_eq!(a.misses, 10);
        assert_eq!(a.evictions, 1);
        assert_eq!(a.entries, 12, "entries is a gauge: merged as max, not sum");
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let h = hg(6, &[&[0, 1, 2], &[3, 4, 5], &[1, 2, 3, 4]]);
        let target = BitSet::full(6);
        let mut cache = CoverCache::new();
        assert_eq!(cache.exact_cover_size_capped(&target, &h, 10), (2, true));
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hits, 0);
        // same bag again: exact answer replayed, including under tighter caps
        assert_eq!(cache.exact_cover_size_capped(&target, &h, 10), (2, true));
        assert_eq!(cache.exact_cover_size_capped(&target, &h, 2), (2, true));
        assert_eq!(cache.exact_cover_size_capped(&target, &h, 1), (1, true));
        assert_eq!(cache.stats().hits, 3);
        // greedy is a separate fact on the same key
        let g = greedy_cover_size::<StdRng>(&target, &h, None);
        assert_eq!(cache.greedy_cover_size(&target, &h), g);
        assert_eq!(cache.greedy_cover_size(&target, &h), g);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (4, 2, 1));
        assert!(stats.hit_rate() > 0.5);
    }

    #[test]
    fn cap_only_queries_store_lower_bounds() {
        // optimal cover of the full clique universe is 2; a cap-1 query
        // proves "≥ 1" without revealing the optimum
        let h = hg(6, &[&[0, 1, 2], &[3, 4, 5], &[1, 2, 3, 4]]);
        let target = BitSet::full(6);
        let mut cache = CoverCache::new();
        assert_eq!(cache.exact_cover_size_capped(&target, &h, 1), (1, true));
        // cap 1 answered again from the stored lower bound
        assert_eq!(cache.exact_cover_size_capped(&target, &h, 1), (1, true));
        assert_eq!(cache.stats().hits, 1);
        // a looser cap cannot be answered by `lower = 1`: recomputes
        assert_eq!(cache.exact_cover_size_capped(&target, &h, 5), (2, true));
        assert_eq!(cache.stats().misses, 2);
        // now exact is known and every cap hits
        assert_eq!(cache.exact_cover_size_capped(&target, &h, 1), (1, true));
        assert_eq!(cache.exact_cover_size_capped(&target, &h, 100), (2, true));
        assert_eq!(cache.stats().hits, 3);
    }

    #[test]
    fn capacity_overflow_resets_and_counts_evictions() {
        let h = hg(4, &[&[0, 1], &[2, 3], &[0, 2], &[1, 3]]);
        let mut cache = CoverCache::with_capacity(2);
        for v in 0..4 {
            let target = BitSet::from_iter(4, [v]);
            cache.greedy_cover_size(&target, &h);
        }
        let stats = cache.stats();
        assert!(stats.evictions >= 2, "expected a capacity reset: {stats:?}");
        assert!(stats.entries <= 2);
        assert_eq!(stats.misses, 4);
        // clear() counts remaining entries as evicted
        let before = cache.stats();
        cache.clear();
        let after = cache.stats();
        assert_eq!(after.entries, 0);
        assert_eq!(after.evictions, before.evictions + before.entries as u64);
    }

    #[test]
    fn cache_zero_cap_short_circuits() {
        let h = hg(3, &[&[0, 1, 2]]);
        let target = BitSet::full(3);
        let mut cache = CoverCache::new();
        assert_eq!(cache.exact_cover_size_capped(&target, &h, 0), (0, true));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
    }

    #[test]
    fn randomized_tie_breaking_is_seed_stable() {
        let h = hg(4, &[&[0, 1], &[2, 3], &[0, 2], &[1, 3]]);
        let target = BitSet::full(4);
        let mut r1 = StdRng::seed_from_u64(3);
        let mut r2 = StdRng::seed_from_u64(3);
        assert_eq!(
            greedy_cover(&target, &h, Some(&mut r1)),
            greedy_cover(&target, &h, Some(&mut r2))
        );
    }

    #[test]
    fn striped_cache_matches_the_plain_cache() {
        let mut rng = StdRng::seed_from_u64(77);
        let h = ghd_hypergraph::generators::hypergraphs::random_hypergraph(18, 14, 5, 9);
        let striped = StripedCoverCache::new(4);
        let mut plain = CoverCache::new();
        for _ in 0..400 {
            let mut target = BitSet::new(18);
            for v in 0..18 {
                if rng.random_range(0..3) == 0 {
                    target.insert(v);
                }
            }
            let cap = rng.random_range(1..6) as usize;
            let (s, ok, _) = striped.exact_cover_size_capped(&target, &h, cap);
            assert_eq!((s, ok), plain.exact_cover_size_capped(&target, &h, cap));
            let (g, _) = striped.greedy_cover_size(&target, &h);
            assert_eq!(g, plain.greedy_cover_size(&target, &h));
        }
        let st = striped.stats();
        let pt = plain.stats();
        assert_eq!(st.hits, pt.hits, "hit pattern identical to the plain cache");
        assert_eq!(st.misses, pt.misses);
        assert_eq!(st.entries, pt.entries, "stripe entries sum to the plain count");
        assert!(st.hits > 0 && st.entries > 0);
    }

    #[test]
    fn striped_cache_is_consistent_under_concurrent_hammering() {
        let h = ghd_hypergraph::generators::hypergraphs::random_hypergraph(16, 12, 4, 3);
        let striped = StripedCoverCache::new(8);
        let workers = 4;
        std::thread::scope(|s| {
            for w in 0..workers {
                let striped = &striped;
                let h = &h;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(w as u64);
                    for _ in 0..300 {
                        let mut target = BitSet::new(16);
                        for v in 0..16 {
                            if rng.random_range(0..3) == 0 {
                                target.insert(v);
                            }
                        }
                        let cap = rng.random_range(1..6) as usize;
                        let (s, ok, _) = striped.exact_cover_size_capped(&target, h, cap);
                        // the striped answer must equal fresh recomputation
                        assert_eq!((s, ok), exact_cover_size_capped(&target, h, cap));
                        let (g, _) = striped.greedy_cover_size(&target, h);
                        assert_eq!(g, greedy_cover_size::<StdRng>(&target, h, None));
                    }
                });
            }
        });
        let st = striped.stats();
        // Every query is accounted exactly once as a hit or a miss.
        assert_eq!(st.hits + st.misses, (workers * 300 * 2) as u64);
        assert!(striped.bytes() > 0);
        assert_eq!(striped.stripe_count(), 8);
    }
}
