//! Crash-safe append-only persistence for the canonical decomposition
//! cache.
//!
//! The in-memory [`DecompCache`](super::DecompCache) dies with the daemon;
//! everything it learned — exact, self-certified widths that may have cost
//! minutes of search — dies with it. This module spills admitted entries
//! to a length-prefixed, checksummed record log and replays them on boot,
//! so a restart (graceful or `kill -9`) starts warm.
//!
//! # Record format (version 1)
//!
//! ```text
//! ┌─────────┬───────────────┬───────────────┬─────────────────────────┐
//! │ version │ payload_len   │ crc32(payload)│ payload (payload_len B) │
//! │ 1 byte  │ u32 LE        │ u32 LE        │                         │
//! └─────────┴───────────────┴───────────────┴─────────────────────────┘
//! payload:
//!   hash      u64 LE   — the key's structural refinement hash
//!   width     u64 LE   — the certified width the body reports
//!   canon_len u32 LE ┐
//!   sig_len   u32 LE ├ byte lengths of the three strings
//!   body_len  u32 LE ┘
//!   canon bytes, signature bytes, body bytes (UTF-8, in that order)
//! ```
//!
//! The CRC is the vendored CRC-32/IEEE below (zero dependencies, like the
//! rest of the workspace). Each append is a single `write_all` of the
//! fully assembled record, so the only failure mode a process kill can
//! leave behind is a *torn tail* — a record whose header or payload is
//! incomplete.
//!
//! # Recovery rule: truncate at the first corrupt record
//!
//! Replay scans records front to back and stops at the first record that
//! is torn (header or payload extends past EOF), checksum-mismatched,
//! version-unknown, or internally inconsistent (declared lengths that do
//! not add up, non-UTF-8 strings). The file is then truncated to the valid
//! prefix, so subsequent appends continue after the last good record —
//! the log never grows an unreadable middle. Because records are framed
//! only by their length prefix there is no resynchronisation after
//! corruption; dropping the tail is the *safe* choice, never the lossy
//! one, since every dropped entry is merely a cache miss later.
//!
//! # Verification: replay admits nothing it cannot re-verify
//!
//! A checksum proves the bytes survived the disk, not that they are a
//! valid cache entry for *this* solver. [`CacheLog::open`] therefore runs
//! every structurally sound record through a caller-supplied `verify`
//! callback — the daemon re-derives the canonical text and refinement
//! hash from the record's own `canon` field, the same
//! hash-bucket-then-exact-equality discipline the in-memory probe uses —
//! and counts rejects instead of admitting them. A rejected record is
//! *not* treated as corruption: it stays in the file (it may belong to a
//! different build) and replay continues past it.

use super::{CacheKey, CachedDecomp};
use std::fs::OpenOptions;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// The only record version this build writes and replays.
pub const FORMAT_VERSION: u8 = 1;

/// Bytes before the payload: version (1) + payload_len (4) + crc (4).
const HEADER_LEN: usize = 9;

/// Fixed payload prefix: hash (8) + width (8) + three lengths (12).
const FIXED_PAYLOAD: usize = 28;

/// Upper bound on a single record's payload. Nothing the cache admits
/// comes close; a declared length beyond this is corruption, not data,
/// and must not drive an allocation.
const MAX_PAYLOAD: usize = 1 << 30;

/// CRC-32/IEEE lookup table, built at compile time (polynomial
/// `0xEDB88320`, the reflected form used by zip/png/ethernet).
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32/IEEE of `bytes` (check value: `crc32(b"123456789") ==
/// 0xCBF4_3926`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// One replayable cache entry: the full probe identity plus the value.
#[derive(Clone, Debug)]
pub struct LogRecord {
    /// Probe identity (hash bucket, canonical text, signature).
    pub key: CacheKey,
    /// The cached result (complete body + certified width).
    pub value: CachedDecomp,
}

/// What a boot replay found, for telemetry and operator logs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Structurally sound records that passed verification.
    pub replayed: usize,
    /// Structurally sound records the `verify` callback refused.
    pub verify_rejects: usize,
    /// Bytes dropped from the tail at the first corrupt record (0 for a
    /// clean log).
    pub corrupt_tail_bytes: u64,
    /// Length of the valid prefix the file was truncated to.
    pub valid_prefix_bytes: u64,
}

impl ReplayReport {
    /// `true` iff a corrupt tail was found (and truncated).
    pub fn truncated(&self) -> bool {
        self.corrupt_tail_bytes > 0
    }
}

/// An open, replayed cache log, positioned for appends.
pub struct CacheLog {
    file: std::fs::File,
    path: PathBuf,
    /// Appends since open (monotonic, for telemetry).
    appends: u64,
}

impl CacheLog {
    /// Opens (creating if absent) and replays `path`. Structurally sound
    /// records are handed to `verify`; survivors are returned in append
    /// order — replaying them through `DecompCache::admit` makes the
    /// *last* write of a duplicated key win, exactly like the live cache.
    /// The file is truncated to its valid prefix before the log accepts
    /// appends.
    pub fn open(
        path: &Path,
        mut verify: impl FnMut(&LogRecord) -> bool,
    ) -> io::Result<(CacheLog, Vec<LogRecord>, ReplayReport)> {
        // truncate(false): an existing log is replayed, never clobbered
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;

        let mut records = Vec::new();
        let mut report = ReplayReport::default();
        let mut off = 0usize;
        while off < data.len() {
            let Some((record, len)) = decode_record(&data[off..]) else {
                break; // torn or corrupt: truncate here
            };
            if verify(&record) {
                records.push(record);
                report.replayed += 1;
            } else {
                report.verify_rejects += 1;
            }
            off += len;
        }
        report.valid_prefix_bytes = off as u64;
        report.corrupt_tail_bytes = (data.len() - off) as u64;
        if report.truncated() {
            file.set_len(off as u64)?;
        }
        file.seek(SeekFrom::Start(off as u64))?;
        Ok((CacheLog { file, path: path.to_path_buf(), appends: 0 }, records, report))
    }

    /// Appends one entry as a single checksummed record. The write reaches
    /// the OS before this returns (surviving a process kill); call
    /// [`sync`](CacheLog::sync) to force it to the device.
    pub fn append(&mut self, key: &CacheKey, value: &CachedDecomp) -> io::Result<()> {
        let record = encode_record(key, value);
        self.file.write_all(&record)?;
        self.appends += 1;
        Ok(())
    }

    /// `fsync`s the log (graceful-drain path: nothing admitted is lost
    /// even to a machine crash after this returns).
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Appends performed since the log was opened.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Assembles the on-disk bytes of one record (header + payload).
fn encode_record(key: &CacheKey, value: &CachedDecomp) -> Vec<u8> {
    let payload_len =
        FIXED_PAYLOAD + key.canon.len() + key.signature.len() + value.body.len();
    let mut out = Vec::with_capacity(HEADER_LEN + payload_len);
    out.push(FORMAT_VERSION);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    out.extend_from_slice(&[0; 4]); // crc back-patched below
    let payload_at = out.len();
    out.extend_from_slice(&key.hash.to_le_bytes());
    out.extend_from_slice(&(value.width as u64).to_le_bytes());
    out.extend_from_slice(&(key.canon.len() as u32).to_le_bytes());
    out.extend_from_slice(&(key.signature.len() as u32).to_le_bytes());
    out.extend_from_slice(&(value.body.len() as u32).to_le_bytes());
    out.extend_from_slice(key.canon.as_bytes());
    out.extend_from_slice(key.signature.as_bytes());
    out.extend_from_slice(value.body.as_bytes());
    let crc = crc32(&out[payload_at..]);
    out[5..9].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes the record at the front of `data`. `None` means torn or
/// corrupt (wrong version, bad checksum, inconsistent lengths, non-UTF-8
/// strings) — the caller truncates there.
fn decode_record(data: &[u8]) -> Option<(LogRecord, usize)> {
    if data.len() < HEADER_LEN || data[0] != FORMAT_VERSION {
        return None;
    }
    let payload_len = u32::from_le_bytes(data[1..5].try_into().ok()?) as usize;
    if !(FIXED_PAYLOAD..=MAX_PAYLOAD).contains(&payload_len)
        || data.len() - HEADER_LEN < payload_len
    {
        return None;
    }
    let crc = u32::from_le_bytes(data[5..9].try_into().ok()?);
    let payload = &data[HEADER_LEN..HEADER_LEN + payload_len];
    if crc32(payload) != crc {
        return None;
    }
    let hash = u64::from_le_bytes(payload[0..8].try_into().ok()?);
    let width = u64::from_le_bytes(payload[8..16].try_into().ok()?);
    let canon_len = u32::from_le_bytes(payload[16..20].try_into().ok()?) as usize;
    let sig_len = u32::from_le_bytes(payload[20..24].try_into().ok()?) as usize;
    let body_len = u32::from_le_bytes(payload[24..28].try_into().ok()?) as usize;
    if FIXED_PAYLOAD
        .checked_add(canon_len)
        .and_then(|n| n.checked_add(sig_len))
        .and_then(|n| n.checked_add(body_len))
        != Some(payload_len)
    {
        return None;
    }
    let canon = std::str::from_utf8(&payload[FIXED_PAYLOAD..FIXED_PAYLOAD + canon_len]).ok()?;
    let sig_at = FIXED_PAYLOAD + canon_len;
    let signature = std::str::from_utf8(&payload[sig_at..sig_at + sig_len]).ok()?;
    let body_at = sig_at + sig_len;
    let body = std::str::from_utf8(&payload[body_at..body_at + body_len]).ok()?;
    Some((
        LogRecord {
            key: CacheKey {
                hash,
                canon: canon.to_string(),
                signature: signature.to_string(),
            },
            value: CachedDecomp { body: body.to_string(), width: width as usize },
        },
        HEADER_LEN + payload_len,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::DecompCache;
    use ghd_prng::hash::fx_hash_words;

    fn tmp(name: &str) -> PathBuf {
        let path = std::env::temp_dir()
            .join(format!("ghd-canon-log-{}-{name}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn rec(tag: &str, body: &str) -> (CacheKey, CachedDecomp) {
        (
            CacheKey {
                hash: fx_hash_words(&[tag.len() as u64, 7]),
                canon: tag.to_string(),
                signature: format!("tw --method=bb ({tag})"),
            },
            CachedDecomp { body: body.to_string(), width: 3 },
        )
    }

    fn accept_all(_: &LogRecord) -> bool {
        true
    }

    #[test]
    fn crc32_known_answer() {
        // the standard CRC-32/IEEE check value
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trips_appends_across_reopen() {
        let path = tmp("roundtrip");
        let (mut log, records, report) = CacheLog::open(&path, accept_all).unwrap();
        assert!(records.is_empty());
        assert_eq!(report, ReplayReport::default());
        for i in 0..3 {
            let (k, v) = rec(&format!("entry-{i}"), &format!("width = {i}\n"));
            log.append(&k, &v).unwrap();
        }
        log.sync().unwrap();
        drop(log);

        let (_, records, report) = CacheLog::open(&path, accept_all).unwrap();
        assert_eq!(report.replayed, 3);
        assert!(!report.truncated());
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.key.canon, format!("entry-{i}"));
            assert_eq!(r.value.body, format!("width = {i}\n"));
            assert_eq!(r.value.width, 3);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let path = tmp("torn");
        let (mut log, _, _) = CacheLog::open(&path, accept_all).unwrap();
        let (k0, v0) = rec("good-0", "body-0");
        let (k1, v1) = rec("good-1", "body-1");
        log.append(&k0, &v0).unwrap();
        log.append(&k1, &v1).unwrap();
        drop(log);

        // simulate a kill -9 mid-append: cut the second record short
        let full = std::fs::read(&path).unwrap();
        let first_len = HEADER_LEN + u32::from_le_bytes(full[1..5].try_into().unwrap()) as usize;
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();

        let (mut log, records, report) = CacheLog::open(&path, accept_all).unwrap();
        assert_eq!(report.replayed, 1, "the torn record is dropped");
        assert_eq!(records[0].key.canon, "good-0");
        assert!(report.truncated());
        assert_eq!(report.valid_prefix_bytes, first_len as u64);
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            first_len as u64,
            "the file itself is truncated to the valid prefix"
        );
        // the log is healthy again: appends land after the good record
        log.append(&k1, &v1).unwrap();
        drop(log);
        let (_, records, report) = CacheLog::open(&path, accept_all).unwrap();
        assert_eq!(report.replayed, 2);
        assert_eq!(records[1].key.canon, "good-1");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flip_in_payload_drops_the_tail_not_the_prefix() {
        let path = tmp("bitflip");
        let (mut log, _, _) = CacheLog::open(&path, accept_all).unwrap();
        let entries: Vec<_> = (0..3).map(|i| rec(&format!("e{i}"), "b")).collect();
        for (k, v) in &entries {
            log.append(k, v).unwrap();
        }
        drop(log);

        let mut bytes = std::fs::read(&path).unwrap();
        let first_len = HEADER_LEN + u32::from_le_bytes(bytes[1..5].try_into().unwrap()) as usize;
        // flip one payload byte inside the *second* record
        bytes[first_len + HEADER_LEN + 3] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let (_, records, report) = CacheLog::open(&path, accept_all).unwrap();
        assert_eq!(report.replayed, 1, "checksum failure truncates at record 2");
        assert_eq!(records[0].key.canon, "e0");
        assert!(report.truncated());
        assert!(report.corrupt_tail_bytes > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_format_version_truncates_immediately() {
        let path = tmp("version");
        let (mut log, _, _) = CacheLog::open(&path, accept_all).unwrap();
        let (k, v) = rec("versioned", "b");
        log.append(&k, &v).unwrap();
        drop(log);

        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = FORMAT_VERSION + 1; // a future (or garbage) version byte
        std::fs::write(&path, &bytes).unwrap();
        let (_, records, report) = CacheLog::open(&path, accept_all).unwrap();
        assert!(records.is_empty(), "unknown versions are never decoded");
        assert_eq!(report.replayed, 0);
        assert_eq!(report.corrupt_tail_bytes, bytes.len() as u64);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn inflated_length_prefix_never_allocates_or_replays() {
        let path = tmp("inflate");
        // a header declaring a 1 GiB payload over a 10-byte file
        let mut bytes = vec![FORMAT_VERSION];
        bytes.extend_from_slice(&(MAX_PAYLOAD as u32 + 1).to_le_bytes());
        bytes.extend_from_slice(&[0; 4]);
        bytes.extend_from_slice(b"short");
        std::fs::write(&path, &bytes).unwrap();
        let (_, records, report) = CacheLog::open(&path, accept_all).unwrap();
        assert!(records.is_empty());
        assert!(report.truncated());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_records_replay_in_order_and_last_admit_wins() {
        let path = tmp("dup");
        let (mut log, _, _) = CacheLog::open(&path, accept_all).unwrap();
        let (k, v1) = rec("dup-key", "stale body");
        let v2 = CachedDecomp { body: "fresh body".into(), width: 3 };
        log.append(&k, &v1).unwrap();
        log.append(&k, &v2).unwrap();
        drop(log);

        let (_, records, report) = CacheLog::open(&path, accept_all).unwrap();
        assert_eq!(report.replayed, 2, "duplicates are preserved on disk");
        // replaying through the cache dedups: the later record wins
        let mut cache = DecompCache::new(1 << 16);
        for r in records {
            cache.admit(r.key, r.value);
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.probe(&k).unwrap().body, "fresh body");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn verify_rejects_are_skipped_not_truncated() {
        let path = tmp("verify");
        let (mut log, _, _) = CacheLog::open(&path, accept_all).unwrap();
        for tag in ["keep-0", "reject-me", "keep-1"] {
            let (k, v) = rec(tag, "b");
            log.append(&k, &v).unwrap();
        }
        drop(log);

        let (_, records, report) =
            CacheLog::open(&path, |r| !r.key.canon.starts_with("reject")).unwrap();
        assert_eq!(report.replayed, 2, "replay continues past a rejected record");
        assert_eq!(report.verify_rejects, 1);
        assert!(!report.truncated(), "a semantic reject is not corruption");
        assert_eq!(records[1].key.canon, "keep-1");
        // the rejected record still exists on disk (it may belong to a
        // different build); nothing was truncated
        let (_, all, _) = CacheLog::open(&path, accept_all).unwrap();
        assert_eq!(all.len(), 3);
        let _ = std::fs::remove_file(&path);
    }
}
